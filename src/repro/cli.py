"""Command-line interface: query graphs from the shell.

Four subcommands::

    repro query  --dataset wiki --k 10 --gamma 10
    repro query  --edges g.txt --algorithm forward --k 5
    repro stats  --dataset arabic
    repro stream --dataset wiki --gamma 10 --min-influence 1e-3
    repro serve  --cache-size 256
    repro serve  --tcp 8642 --shards 4 --warmstart cache.json

(also reachable as ``python -m repro`` / ``python -m repro.cli``.)

``query`` runs a top-k search with a chosen algorithm (localsearch,
localsearch-p, forward, onlineall, backward, truss, noncontainment) on a
registered stand-in dataset or a SNAP-style edge-list file (weights file
optional; PageRank otherwise).  ``stats`` prints the Table-1 statistics.
``stream`` runs the progressive search and prints communities until an
influence floor or count cap is hit — the "no k needed" workflow of
Section 4.  ``serve`` starts the long-lived serving loop of
:mod:`repro.service`: graphs are built once and pinned, answers are
cached and reused across queries, and progressive sessions stream
results on demand (type ``help`` at its prompt for the protocol).  With
``--tcp``/``--socket`` it becomes the concurrent asyncio server of
:mod:`repro.server` — many clients, batch-coalesced progressive
execution, sharded workers, and warm-start cache persistence.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api.facade import Repro
from .api.facade import open as api_open
from .api.spec import QuerySpec
from .graph.io import load_snap_graph
from .graph.metrics import GraphStatistics, graph_statistics
from .workloads.datasets import dataset_names, load_dataset

__all__ = ["main", "build_parser"]

ALGORITHMS = (
    "localsearch",
    "localsearch-p",
    "forward",
    "onlineall",
    "backward",
    "truss",
    "noncontainment",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k influential community search (Bi et al., VLDB'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(p: argparse.ArgumentParser) -> None:
        src = p.add_mutually_exclusive_group(required=True)
        src.add_argument(
            "--dataset", choices=dataset_names(),
            help="a registered synthetic stand-in dataset",
        )
        src.add_argument(
            "--edges", metavar="FILE",
            help="SNAP-style edge list file ('u v' per line)",
        )
        p.add_argument(
            "--weights", metavar="FILE", default=None,
            help="optional 'vertex weight' file (default: PageRank)",
        )

    query = sub.add_parser("query", help="run one top-k query")
    add_graph_source(query)
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--gamma", type=int, default=10)
    query.add_argument(
        "--algorithm", choices=ALGORITHMS, default="localsearch-p"
    )
    query.add_argument("--delta", type=float, default=2.0)
    query.add_argument(
        "--members", action="store_true",
        help="print full member lists (default: sizes only)",
    )
    query.add_argument(
        "--kernel", choices=("auto", "python", "array", "numpy"),
        default=None,
        help="peel kernel (default: $REPRO_KERNEL, then auto — numpy "
             "when available, the stdlib array kernel otherwise)",
    )

    stats = sub.add_parser("stats", help="print Table-1 statistics")
    add_graph_source(stats)

    mutate = sub.add_parser(
        "mutate",
        help="apply live edge mutations, then (optionally) query",
    )
    add_graph_source(mutate)
    mutate.add_argument(
        "ops", nargs="+", metavar="OP",
        help="mutation ops: insert=U:V, delete=U:V, reweight=V:W "
             "(applied in order, one versioned batch)",
    )
    mutate.add_argument(
        "--k", type=int, default=None,
        help="also run a top-k query on the mutated graph",
    )
    mutate.add_argument("--gamma", type=int, default=10)
    mutate.add_argument("--delta", type=float, default=2.0)

    stream = sub.add_parser(
        "stream", help="progressive search: no k, stop on conditions"
    )
    add_graph_source(stream)
    stream.add_argument("--gamma", type=int, default=10)
    stream.add_argument(
        "--kernel", choices=("auto", "python", "array", "numpy"),
        default=None,
        help="peel kernel (default: $REPRO_KERNEL, then auto)",
    )
    stream.add_argument(
        "--min-influence", type=float, default=None,
        help="stop once influence drops below this value",
    )
    stream.add_argument(
        "--limit", type=int, default=20,
        help="maximum number of communities to print (default 20)",
    )

    serve = sub.add_parser(
        "serve", help="long-lived serving loop (registry + cache + sessions)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity in entries (default 256)",
    )
    serve.add_argument(
        "--max-cached-k", type=int, default=None,
        help="retain at most this many communities per cache entry "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=300.0,
        help="idle seconds before a progressive session expires (default 300)",
    )
    serve.add_argument(
        "--script", metavar="FILE", default=None,
        help="read protocol commands from FILE instead of stdin",
    )
    serve.add_argument(
        "--no-datasets", action="store_true",
        help="start with an empty registry (use 'load' to add graphs)",
    )
    serve.add_argument(
        "--tcp", metavar="[HOST:]PORT", default=None,
        help="serve the line protocol over TCP (asyncio, concurrent "
             "clients); default host 127.0.0.1",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve the line protocol over a unix domain socket",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="worker threads routing CPU-bound cursor work by graph "
             "(network mode only; default 4)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="promote the pool to this many worker PROCESSES over "
             "shared-memory CSR segments — true multi-core execution "
             "(network mode only; default: threads; falls back to "
             "threads when multiprocessing is unavailable)",
    )
    serve.add_argument(
        "--replicate", metavar="GRAPH=COPIES", action="append", default=None,
        help="replicate a hot graph across COPIES shards "
             "(network mode only; repeatable; with --adaptive this is "
             "only the INITIAL replication — the controller retunes it)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=None,
        help="maximum queries coalesced onto one engine pass "
             "(network mode only; default 64)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=None,
        help="collection pause before flushing a query batch (network "
             "mode only; default 0: coalesce only under load; with "
             "--adaptive this is only the INITIAL window — the "
             "controller retunes it)",
    )
    serve.add_argument(
        "--adaptive", action="store_true",
        help="run the adaptive control plane: a periodic controller "
             "retunes the batch window, replication, and family "
             "placement from windowed metrics, and saturation "
             "backpressure rejects work (429) when the queue floods "
             "(network mode only; --batch-window-ms/--replicate become "
             "initial values)",
    )
    serve.add_argument(
        "--warmstart", metavar="FILE", default=None,
        help="restore the result cache from FILE on boot and snapshot "
             "it back on shutdown (network mode only)",
    )
    serve.add_argument(
        "--warmstart-interval", metavar="SECONDS", type=float, default=None,
        help="also snapshot the cache every SECONDS in the background, "
             "so a crash (not just a clean shutdown) keeps it warm "
             "(requires --warmstart; network mode only)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus-text /metrics, /metrics.json, /traces, "
             "/dashboard, /history.json, /readyz and /profile over HTTP "
             "on this port (0 = ephemeral; stdlib only, works in both "
             "stdio and network modes)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="trace roughly this fraction of queries end to end "
             "(0 disables; the first query is always traced; default "
             "0.02 once any observability flag is set)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="traces slower than this are retained as slow-query "
             "exemplars ('trace slow' / /traces/slow; default 250)",
    )
    serve.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="serving objectives, e.g. 'p95_ms=50,err_rate=0.01"
             "[,window_s=60]' — evaluated continuously; breaches flip "
             "/readyz to 503 and export repro_slo_* series",
    )
    serve.add_argument(
        "--history-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between metrics-history samples feeding "
             "/dashboard and /history.json (default 1.0)",
    )

    trace = sub.add_parser(
        "trace",
        help="fetch traces from a serving repro's metrics endpoint",
    )
    trace.add_argument(
        "--port", type=int, required=True,
        help="the server's --metrics-port",
    )
    trace.add_argument(
        "--host", default="127.0.0.1", help="metrics host (default local)"
    )
    trace.add_argument(
        "--slow", action="store_true",
        help="list retained slow-query exemplars instead of recent traces",
    )
    trace.add_argument(
        "--id", default=None, metavar="TRACE_ID",
        help="print one trace as a full span tree",
    )
    trace.add_argument(
        "--json", action="store_true", help="raw JSON instead of rendering"
    )
    trace.add_argument(
        "--limit", type=int, default=20,
        help="maximum traces to list (default 20)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="fetch metrics from a serving repro's metrics endpoint",
    )
    metrics.add_argument(
        "--port", type=int, required=True,
        help="the server's --metrics-port",
    )
    metrics.add_argument(
        "--host", default="127.0.0.1", help="metrics host (default local)"
    )
    metrics.add_argument(
        "--json", action="store_true", help="raw JSON instead of rendering"
    )
    metrics.add_argument(
        "--history", action="store_true",
        help="fetch the derived time-series (/history.json) instead of "
             "the instantaneous snapshot",
    )
    metrics.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="history window to fetch (with --history; default 300)",
    )
    return parser


def _apply_kernel_choice(args: argparse.Namespace) -> Optional[str]:
    """Honour ``--kernel`` for the whole process.

    The choice rides in the :class:`QuerySpec` (so provenance and cache
    identity are exact) *and* is exported via ``REPRO_KERNEL`` so
    algorithms that reach the peel only through their own internal
    ``construct_cvs`` calls (forward, the index baselines) respect it
    too.
    """
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        import os

        from .core.fastpeel import KERNEL_ENV_VAR

        os.environ[KERNEL_ENV_VAR] = kernel
    return kernel


def _open_facade(args: argparse.Namespace) -> "tuple[Repro, str]":
    """An in-process facade + the graph name the command targets.

    This is the CLI's whole graph-loading story now: a dataset name maps
    to the preloaded registry, an edge-list file is registered as the
    facade's default graph.  Either way the query subcommands build one
    :class:`QuerySpec` and hand it to the same ``topk`` surface every
    other frontend uses.
    """
    if args.dataset:
        return api_open(), args.dataset
    rp = api_open(args.edges, weights=args.weights, datasets=False)
    return rp, rp.graph().name


def _build_spec(args: argparse.Namespace, graph: str, **overrides) -> QuerySpec:
    params = dict(
        graph=graph,
        gamma=args.gamma,
        k=getattr(args, "k", 10),
        algorithm=getattr(args, "algorithm", "localsearch-p"),
        delta=getattr(args, "delta", 2.0),
        kernel=_apply_kernel_choice(args),
    )
    params.update(overrides)
    return QuerySpec(**params)


def _print_view(i: int, view, show_members: bool, out) -> None:
    line = (
        f"top-{i}: influence={view.influence:.8g} "
        f"keynode={view.keynode} "
        f"size={view.size}"
    )
    print(line, file=out)
    if show_members:
        members = ", ".join(str(v) for v in view.members)
        print(f"       members: {members}", file=out)


def _parse_tcp(value: str):
    """``[HOST:]PORT`` -> ``(host, port)`` (default host 127.0.0.1)."""
    host, _, port_text = value.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"error: bad --tcp value {value!r} (want [HOST:]PORT)")
    return (host or "127.0.0.1", port)


def _parse_replication(values):
    """``["wiki=2", ...]`` -> ``{"wiki": 2, ...}``."""
    replication = {}
    for item in values or ():
        name, sep, copies_text = item.partition("=")
        try:
            copies = int(copies_text)
        except ValueError:
            copies = 0
        if not sep or not name or copies < 1:
            raise SystemExit(
                f"error: bad --replicate value {item!r} (want GRAPH=COPIES)"
            )
        replication[name] = copies
    return replication


def _run_server_async(args: argparse.Namespace, out) -> int:
    """The asyncio network server behind ``repro serve --tcp/--socket``."""
    import asyncio
    import signal

    from .server import ReproServer

    if args.script is not None:
        print(
            "error: --script drives the stdio loop and is not supported "
            "with --tcp/--socket (use repro.server.ReproClient instead)",
            file=out,
        )
        return 2
    try:
        server = ReproServer(
            cache_size=args.cache_size,
            max_cached_k=args.max_cached_k,
            session_ttl=args.session_ttl,
            shards=args.shards if args.shards is not None else 4,
            workers=args.workers,
            replication=_parse_replication(args.replicate),
            max_batch=args.max_batch if args.max_batch is not None else 64,
            batch_window_ms=(
                args.batch_window_ms
                if args.batch_window_ms is not None
                else 0.0
            ),
            adaptive=args.adaptive,
            warmstart_path=args.warmstart,
            warmstart_interval=args.warmstart_interval,
            preload_datasets=not args.no_datasets,
            metrics_port=args.metrics_port,
            trace_sample=args.trace_sample,
            slow_ms=args.slow_ms,
            slo=args.slo,
            history_interval=(
                args.history_interval
                if args.history_interval is not None
                else 1.0
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                # Unsupported platform, or not the main thread (tests).
                pass
        tcp = _parse_tcp(args.tcp) if args.tcp is not None else None
        await server.start(tcp=tcp, unix_path=args.socket)
        if server.tcp_address is not None:
            host, port = server.tcp_address
            print(f"listening on tcp://{host}:{port}", file=out)
        if server.unix_path is not None:
            print(f"listening on unix://{server.unix_path}", file=out)
        if args.workers is not None:
            backend = getattr(server.shards, "backend", "thread")
            print(
                f"execution: {server.shards.num_shards} "
                f"{backend} worker{'s' if server.shards.num_shards != 1 else ''}"
                + (
                    ""
                    if backend == "process"
                    else " (multiprocessing unavailable: thread fallback)"
                ),
                file=out,
            )
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(f"metrics on http://{mhost}:{mport}/metrics", file=out)
        if server.warmstart is not None:
            print(
                f"warm start: {server.restored_entries} cache entries "
                "restored",
                file=out,
            )
        out.flush()
        await server.serve_until_shutdown()
        if server.warmstart is not None:
            print(
                f"warm start: {server.saved_entries} cache entries saved",
                file=out,
            )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — signal-handler fallback
        return 130
    except OSError as exc:  # bind failures (port/socket in use, ...)
        print(f"error: {exc}", file=out)
        return 2
    return 0


def _run_serve(args: argparse.Namespace, out, in_stream) -> int:
    if args.tcp is not None or args.socket is not None:
        return _run_server_async(args, out)

    ignored = [
        flag
        for flag, value in (
            ("--warmstart", args.warmstart),
            ("--warmstart-interval", args.warmstart_interval),
            ("--shards", args.shards),
            ("--workers", args.workers),
            ("--replicate", args.replicate),
            ("--max-batch", args.max_batch),
            ("--batch-window-ms", args.batch_window_ms),
            ("--adaptive", args.adaptive or None),
        )
        if value is not None
    ]
    if ignored:
        print(
            f"error: {', '.join(ignored)} only appl"
            f"{'y' if len(ignored) > 1 else 'ies'} to the network server; "
            "add --tcp PORT or --socket PATH",
            file=out,
        )
        return 2

    from .service import (
        GraphRegistry,
        QueryEngine,
        ResultCache,
        ServiceMetrics,
        ServiceShell,
        SessionManager,
    )

    registry = GraphRegistry(preload_datasets=not args.no_datasets)
    metrics = ServiceMetrics()
    # Observability in stdio mode mirrors the network server: any obs
    # flag builds a sampling tracer (engine-rooted "query" traces) and
    # --metrics-port additionally serves them over HTTP alongside the
    # interactive loop.
    obs_enabled = (
        args.metrics_port is not None
        or args.trace_sample is not None
        or args.slow_ms is not None
        or args.slo is not None
    )
    tracer = None
    if obs_enabled:
        from .obs.trace import DEFAULT_SLOW_MS, DEFAULT_TRACE_SAMPLE, Tracer

        tracer = Tracer(
            sample=(
                args.trace_sample
                if args.trace_sample is not None
                else DEFAULT_TRACE_SAMPLE
            ),
            slow_ms=args.slow_ms if args.slow_ms is not None else DEFAULT_SLOW_MS,
        )
    try:
        engine = QueryEngine(
            registry,
            cache=ResultCache(args.cache_size, max_cached_k=args.max_cached_k),
            metrics=metrics,
            tracer=tracer,
        )
        sessions = SessionManager(
            registry, ttl_seconds=args.session_ttl, metrics=metrics
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    history = None
    metrics_server = None
    if obs_enabled:
        # The stdio loop carries the same observability tier as the
        # network server: history collector + SLO verdicts, an armed
        # profiler behind the `profile` command, and (with a port) the
        # HTTP explorer.
        from .obs.history import MetricsHistory, parse_slo
        from .obs.profiling import OnDemandProfiler

        try:
            slo = parse_slo(args.slo) if args.slo is not None else None
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        history = MetricsHistory(
            metrics,
            trace_store=tracer.store if tracer is not None else None,
            interval_s=(
                args.history_interval
                if args.history_interval is not None
                else 1.0
            ),
            slo=slo,
        )
        history.start()
        engine.profiler = OnDemandProfiler()
    if args.metrics_port is not None:
        from .obs.export import MetricsServer

        def _readiness():
            status = history.slo_status() if history is not None else None
            if status is None or status["ok"]:
                return {"ready": True, "reasons": []}
            breached = sorted(
                name
                for name, objective in status["objectives"].items()
                if not objective["ok"]
            )
            return {
                "ready": False,
                "reasons": [f"slo breach: {', '.join(breached)}"],
                "slo": status,
            }

        metrics_server = MetricsServer(
            metrics,
            trace_store=tracer.store if tracer is not None else None,
            port=args.metrics_port,
            history=history,
            readiness=_readiness,
            profiler=engine.profiler,
        )
        mhost, mport = metrics_server.start()
        print(f"metrics on http://{mhost}:{mport}/metrics", file=out)
    try:
        if args.script is not None:
            with open(args.script, "r", encoding="utf-8") as handle:
                shell = ServiceShell(engine, sessions, out, tracer=tracer)
                return shell.run(handle)
        if in_stream is None:
            in_stream = sys.stdin
        prompt = (
            "repro> " if getattr(in_stream, "isatty", lambda: False)() else ""
        )
        shell = ServiceShell(engine, sessions, out, prompt=prompt, tracer=tracer)
        return shell.run(in_stream)
    finally:
        if history is not None:
            history.stop()
        if metrics_server is not None:
            metrics_server.stop()


def _run_trace(args: argparse.Namespace, out) -> int:
    """``repro trace`` — pull traces off a server's metrics endpoint."""
    import json as _json
    import urllib.error
    import urllib.request

    from .obs.trace import format_trace, format_trace_line

    base = f"http://{args.host}:{args.port}"
    if args.id is not None:
        url = f"{base}/traces/{args.id}"
    elif args.slow:
        url = f"{base}/traces/slow?limit={args.limit}"
    else:
        url = f"{base}/traces?limit={args.limit}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = _json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        if exc.code == 404 and args.id is not None:
            print(f"error: no trace {args.id!r} retained", file=out)
        else:
            print(f"error: {url}: HTTP {exc.code}", file=out)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        reason = getattr(exc, "reason", exc)
        print(
            f"error: cannot reach {base} ({reason}) — is the server "
            "running with --metrics-port?",
            file=out,
        )
        return 1
    if args.json:
        print(_json.dumps(payload, sort_keys=True), file=out)
        return 0
    if args.id is not None:
        print("\n".join(format_trace(payload)), file=out)
        return 0
    traces = payload.get("traces", []) if isinstance(payload, dict) else payload
    if not traces:
        kind = "slow " if args.slow else ""
        print(f"(no {kind}traces retained)", file=out)
        return 0
    for trace in traces:
        print(format_trace_line(trace), file=out)
    return 0


def _run_metrics(args: argparse.Namespace, out) -> int:
    """``repro metrics`` — pull the snapshot / history off a server."""
    import json as _json
    import urllib.error
    import urllib.request

    base = f"http://{args.host}:{args.port}"
    if args.history:
        window = args.window if args.window is not None else 300.0
        url = f"{base}/history.json?window={window:g}"
    else:
        url = f"{base}/metrics.json"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = _json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        if exc.code == 404 and args.history:
            print(
                "error: history collector disabled on this server",
                file=out,
            )
        else:
            print(f"error: {url}: HTTP {exc.code}", file=out)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        reason = getattr(exc, "reason", exc)
        print(
            f"error: cannot reach {base} ({reason}) — is the server "
            "running with --metrics-port?",
            file=out,
        )
        return 1
    if args.json:
        print(_json.dumps(payload, sort_keys=True), file=out)
        return 0
    if args.history:
        points = payload.get("points", [])
        if not points:
            print("(no history points yet — is traffic flowing?)", file=out)
        for point in points:
            lat = point.get("latency_overall_ms") or {}
            p95 = lat.get("p95")
            hit = point.get("hit_rate")
            print(
                f"t={point['t']:.1f} qps={point['qps']:.2f} "
                f"err_rate={point['error_rate']:.3f} "
                + (f"hit_rate={hit:.3f} " if hit is not None else "hit_rate=– ")
                + (f"p95={p95:.3f}ms " if p95 is not None else "p95=– ")
                + f"queue={point['queue_depth']}",
                file=out,
            )
        status = payload.get("slo_status")
        if status is not None:
            verdict = "ok" if status["ok"] else "BREACH"
            objectives = ", ".join(
                f"{name}={obj['value'] if obj['value'] is not None else '–'}"
                f"/{obj['target']:g}"
                for name, obj in sorted(status["objectives"].items())
            )
            print(f"slo[{verdict}]: {objectives}", file=out)
        return 0
    from .service.shell import render_metrics

    for line in render_metrics(payload):
        print(line, file=out)
    traces = payload.get("traces")
    if traces:
        print(
            f"traces: recorded={traces['traces_recorded']} "
            f"slow={traces['slow_traces']} "
            f"spans={traces['spans_recorded']}",
            file=out,
        )
    return 0


def main(argv: Optional[List[str]] = None, out=None, in_stream=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve(args, out, in_stream)

    if args.command == "trace":
        return _run_trace(args, out)

    if args.command == "metrics":
        return _run_metrics(args, out)

    if args.command == "stats":
        graph = (
            load_dataset(args.dataset)
            if args.dataset
            else load_snap_graph(args.edges, args.weights)
        )
        stats = graph_statistics(
            graph, args.dataset or args.edges or "graph"
        )
        for name, value in zip(GraphStatistics.header(), stats.as_row()):
            print(f"{name:>12}: {value}", file=out)
        return 0

    if args.command == "mutate":
        from .service.shell import parse_mutation_ops

        rp, graph_name = _open_facade(args)
        ops = parse_mutation_ops(args.ops)
        event = rp.mutate(graph_name, ops)
        stats = event.stats
        barrier = (
            f"{event.barrier:.8g}"
            if event.barrier != float("-inf")
            else "none"
        )
        print(
            f"mutated {graph_name!r} "
            f"v{event.old_version} -> v{event.new_version}: "
            f"+{stats.inserted} -{stats.deleted} ~{stats.reweighted} "
            f"(noops={stats.noops}) barrier={barrier}",
            file=out,
        )
        if args.k is not None:
            spec = QuerySpec(
                graph=graph_name,
                k=args.k,
                gamma=args.gamma,
                delta=args.delta,
                algorithm="localsearch-p",
            )
            for i, view in enumerate(rp.topk(spec).communities, start=1):
                _print_view(i, view, False, out)
        return 0

    if args.command == "query":
        rp, graph_name = _open_facade(args)
        spec = _build_spec(args, graph_name)
        result_set = rp.topk(spec)
        views = result_set.communities
        print(
            f"{args.algorithm}: {len(views)} communities "
            f"(k={args.k}, gamma={args.gamma}) "
            f"in {result_set.elapsed_ms:.2f} ms",
            file=out,
        )
        for i, view in enumerate(views, start=1):
            _print_view(i, view, args.members, out)
        return 0

    if args.command == "stream":
        rp, graph_name = _open_facade(args)
        # The stream surface is the same lazy ResultSet: communities are
        # fetched in doubling batches only as far as the stop conditions
        # let the iteration run.
        spec = _build_spec(
            args, graph_name, k=args.limit, algorithm="localsearch-p"
        )
        printed = 0
        for view in rp.topk(spec).stream():
            if (
                args.min_influence is not None
                and view.influence < args.min_influence
            ):
                print(
                    f"(stopped: influence fell below {args.min_influence})",
                    file=out,
                )
                break
            printed += 1
            _print_view(printed, view, False, out)
            if printed >= args.limit:
                print(f"(stopped: limit {args.limit} reached)", file=out)
                break
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
