"""Command-line interface: query graphs from the shell.

Four subcommands::

    repro query  --dataset wiki --k 10 --gamma 10
    repro query  --edges g.txt --algorithm forward --k 5
    repro stats  --dataset arabic
    repro stream --dataset wiki --gamma 10 --min-influence 1e-3
    repro serve  --cache-size 256

(also reachable as ``python -m repro`` / ``python -m repro.cli``.)

``query`` runs a top-k search with a chosen algorithm (localsearch,
localsearch-p, forward, onlineall, backward, truss, noncontainment) on a
registered stand-in dataset or a SNAP-style edge-list file (weights file
optional; PageRank otherwise).  ``stats`` prints the Table-1 statistics.
``stream`` runs the progressive search and prints communities until an
influence floor or count cap is hit — the "no k needed" workflow of
Section 4.  ``serve`` starts the long-lived serving loop of
:mod:`repro.service`: graphs are built once and pinned, answers are
cached and reused across queries, and progressive sessions stream
results on demand (type ``help`` at its prompt for the protocol).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .baselines import backward, forward, online_all
from .core.local_search import LocalSearch
from .core.noncontainment import top_k_noncontainment_communities
from .core.progressive import LocalSearchP
from .core.truss_search import top_k_truss_communities
from .graph.io import load_snap_graph
from .graph.metrics import GraphStatistics, graph_statistics
from .graph.weighted_graph import WeightedGraph
from .workloads.datasets import dataset_names, load_dataset

__all__ = ["main", "build_parser"]

ALGORITHMS = (
    "localsearch",
    "localsearch-p",
    "forward",
    "onlineall",
    "backward",
    "truss",
    "noncontainment",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k influential community search (Bi et al., VLDB'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(p: argparse.ArgumentParser) -> None:
        src = p.add_mutually_exclusive_group(required=True)
        src.add_argument(
            "--dataset", choices=dataset_names(),
            help="a registered synthetic stand-in dataset",
        )
        src.add_argument(
            "--edges", metavar="FILE",
            help="SNAP-style edge list file ('u v' per line)",
        )
        p.add_argument(
            "--weights", metavar="FILE", default=None,
            help="optional 'vertex weight' file (default: PageRank)",
        )

    query = sub.add_parser("query", help="run one top-k query")
    add_graph_source(query)
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--gamma", type=int, default=10)
    query.add_argument(
        "--algorithm", choices=ALGORITHMS, default="localsearch-p"
    )
    query.add_argument("--delta", type=float, default=2.0)
    query.add_argument(
        "--members", action="store_true",
        help="print full member lists (default: sizes only)",
    )

    stats = sub.add_parser("stats", help="print Table-1 statistics")
    add_graph_source(stats)

    stream = sub.add_parser(
        "stream", help="progressive search: no k, stop on conditions"
    )
    add_graph_source(stream)
    stream.add_argument("--gamma", type=int, default=10)
    stream.add_argument(
        "--min-influence", type=float, default=None,
        help="stop once influence drops below this value",
    )
    stream.add_argument(
        "--limit", type=int, default=20,
        help="maximum number of communities to print (default 20)",
    )

    serve = sub.add_parser(
        "serve", help="long-lived serving loop (registry + cache + sessions)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity in entries (default 256)",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=300.0,
        help="idle seconds before a progressive session expires (default 300)",
    )
    serve.add_argument(
        "--script", metavar="FILE", default=None,
        help="read protocol commands from FILE instead of stdin",
    )
    serve.add_argument(
        "--no-datasets", action="store_true",
        help="start with an empty registry (use 'load' to add graphs)",
    )
    return parser


def _load_graph(args: argparse.Namespace) -> WeightedGraph:
    if args.dataset:
        return load_dataset(args.dataset)
    return load_snap_graph(args.edges, args.weights)


def _run_query(graph: WeightedGraph, args: argparse.Namespace):
    algorithm = args.algorithm
    if algorithm == "localsearch":
        return LocalSearch(graph, gamma=args.gamma, delta=args.delta).search(
            args.k
        )
    if algorithm == "localsearch-p":
        return LocalSearchP(graph, gamma=args.gamma, delta=args.delta).run(
            k=args.k
        )
    if algorithm == "forward":
        return forward(graph, args.k, args.gamma)
    if algorithm == "onlineall":
        return online_all(graph, args.k, args.gamma)
    if algorithm == "backward":
        return backward(graph, args.k, args.gamma)
    if algorithm == "truss":
        return top_k_truss_communities(graph, args.k, args.gamma)
    if algorithm == "noncontainment":
        return top_k_noncontainment_communities(
            graph, args.k, args.gamma, delta=args.delta
        )
    raise AssertionError(f"unhandled algorithm {algorithm!r}")


def _print_community(i: int, community, show_members: bool, out) -> None:
    line = (
        f"top-{i}: influence={community.influence:.8g} "
        f"keynode={community.keynode_label} "
        f"size={community.num_vertices}"
    )
    print(line, file=out)
    if show_members:
        members = ", ".join(str(v) for v in sorted(map(str, community.vertices)))
        print(f"       members: {members}", file=out)


def _run_serve(args: argparse.Namespace, out, in_stream) -> int:
    from .service import (
        GraphRegistry,
        QueryEngine,
        ResultCache,
        ServiceMetrics,
        ServiceShell,
        SessionManager,
    )

    registry = GraphRegistry(preload_datasets=not args.no_datasets)
    metrics = ServiceMetrics()
    try:
        engine = QueryEngine(
            registry, cache=ResultCache(args.cache_size), metrics=metrics
        )
        sessions = SessionManager(
            registry, ttl_seconds=args.session_ttl, metrics=metrics
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.script is not None:
        with open(args.script, "r", encoding="utf-8") as handle:
            shell = ServiceShell(engine, sessions, out)
            return shell.run(handle)
    if in_stream is None:
        in_stream = sys.stdin
    prompt = "repro> " if getattr(in_stream, "isatty", lambda: False)() else ""
    shell = ServiceShell(engine, sessions, out, prompt=prompt)
    return shell.run(in_stream)


def main(argv: Optional[List[str]] = None, out=None, in_stream=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve(args, out, in_stream)

    graph = _load_graph(args)

    if args.command == "stats":
        stats = graph_statistics(
            graph, args.dataset or args.edges or "graph"
        )
        for name, value in zip(GraphStatistics.header(), stats.as_row()):
            print(f"{name:>12}: {value}", file=out)
        return 0

    if args.command == "query":
        started = time.perf_counter()
        result = _run_query(graph, args)
        elapsed_ms = (time.perf_counter() - started) * 1000
        communities = list(result.communities)
        print(
            f"{args.algorithm}: {len(communities)} communities "
            f"(k={args.k}, gamma={args.gamma}) in {elapsed_ms:.2f} ms",
            file=out,
        )
        for i, community in enumerate(communities, start=1):
            _print_community(i, community, args.members, out)
        return 0

    if args.command == "stream":
        printed = 0
        for community in LocalSearchP(graph, gamma=args.gamma).stream():
            if (
                args.min_influence is not None
                and community.influence < args.min_influence
            ):
                print(
                    f"(stopped: influence fell below {args.min_influence})",
                    file=out,
                )
                break
            printed += 1
            _print_community(printed, community, False, out)
            if printed >= args.limit:
                print(f"(stopped: limit {args.limit} reached)", file=out)
                break
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
