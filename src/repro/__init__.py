"""repro — optimal and progressive online search of top-k influential communities.

A faithful, from-scratch Python reproduction of

    Fei Bi, Lijun Chang, Xuemin Lin, Wenjie Zhang.
    "An Optimal and Progressive Approach to Online Search of Top-K
    Influential Communities." PVLDB 11(9), 2018 (arXiv:1711.05857).

Quickstart
----------
>>> from repro import WeightedGraph, top_k_influential_communities
>>> g = WeightedGraph.from_edges(
...     [("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "d")],
...     weights={"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0},
... )
>>> result = top_k_influential_communities(g, k=1, gamma=2)
>>> sorted(result.communities[0].vertices)
['a', 'b', 'c', 'd']

Progressive search (no ``k`` needed)::

    from repro import LocalSearchP
    for community in LocalSearchP(graph, gamma=10).stream():
        ...  # communities arrive in decreasing influence order

The serving API — one typed :class:`QuerySpec`, one lazy
:class:`ResultSet`, the same surface in-process and over the wire::

    import repro

    with repro.open() as rp:                     # or repro.connect(port=...)
        rs = rp.graph("email").topk(k=10, gamma=5)
        top3 = rs[:3]                            # cache slice
        rs.extend_to(20)                         # cursor resume, no rework

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every table and figure.
"""

from .core import (
    Community,
    LocalSearch,
    LocalSearchP,
    LocalSearchTruss,
    SearchStats,
    TopKResult,
    TrussCommunity,
    TrussResult,
    global_search_truss,
    progressive_influential_communities,
    top_k_influential_communities,
    top_k_noncontainment_communities,
    top_k_truss_communities,
)
from .errors import (
    DatasetError,
    DuplicateWeightError,
    GraphConstructionError,
    QueryParameterError,
    ReproError,
    SelfLoopError,
    StorageError,
    UnknownVertexError,
)
from .graph import GraphBuilder, PrefixView, WeightedGraph, graph_from_arrays
from .service import (
    CommunityView,
    GraphRegistry,
    QueryEngine,
    QueryResult,
    ResultCache,
    ServiceMetrics,
    SessionManager,
    TopKQuery,
)
from .core.count import construct_cvs
from .api import QuerySpec, ResultSet
from .api.facade import Graph, Repro, connect
from .api.facade import open  # noqa: A004 — the facade entry point deliberately mirrors the builtin's name

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # graph substrate
    "WeightedGraph",
    "GraphBuilder",
    "graph_from_arrays",
    "PrefixView",
    # core search API
    "top_k_influential_communities",
    "progressive_influential_communities",
    "top_k_noncontainment_communities",
    "top_k_truss_communities",
    "global_search_truss",
    "construct_cvs",
    "LocalSearch",
    "LocalSearchP",
    "LocalSearchTruss",
    "Community",
    "TrussCommunity",
    "TopKResult",
    "TrussResult",
    "SearchStats",
    # public query API (repro.api)
    "QuerySpec",
    "ResultSet",
    "Repro",
    "Graph",
    "open",
    "connect",
    # service layer
    "GraphRegistry",
    "QueryEngine",
    "ResultCache",
    "SessionManager",
    "ServiceMetrics",
    "TopKQuery",
    "QueryResult",
    "CommunityView",
    # errors
    "ReproError",
    "GraphConstructionError",
    "DuplicateWeightError",
    "SelfLoopError",
    "UnknownVertexError",
    "QueryParameterError",
    "StorageError",
    "DatasetError",
]
