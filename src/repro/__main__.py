"""``python -m repro`` — delegate to the CLI (same as ``python -m repro.cli``)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
