"""On-demand cProfile capture around live engine executions.

``cProfile.Profile.enable()`` instruments *the calling thread only*, so
"profile the serving loop" cannot be a process-wide switch: engine
executions run on shard executor threads, cluster dispatch threads, and
the stdio shell's thread.  :class:`OnDemandProfiler` therefore hooks the
one chokepoint every backend shares — :meth:`QueryEngine._execute` —
and *arms* for a bounded window:

* :meth:`capture` arms a fresh profile, sleeps for the window, then
  disarms and formats the pstats top table.  One capture at a time —
  a concurrent request raises :class:`ProfileBusyError` (HTTP 409 at
  the ``/profile`` endpoint) rather than corrupting the stats.
* While armed, each engine call *tries* to take the single profile
  slot: exactly one concurrent execution is profiled at a time (the
  cProfile C machinery is not re-entrant across threads), the rest run
  unprofiled at full speed.  Disarming waits for the in-flight profiled
  call, so the stats are never read mid-update.
* The unarmed hot path costs one attribute load and an ``is None``
  check — nothing measurable against the <5% observability budget.

``seconds`` is clamped to :attr:`OnDemandProfiler.MAX_SECONDS` so a
fat-fingered ``/profile?seconds=86400`` cannot pin the capture slot for
a day.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import time
from typing import Any, Callable

__all__ = ["OnDemandProfiler", "ProfileBusyError"]


class ProfileBusyError(RuntimeError):
    """A profile capture is already running (one at a time)."""


class OnDemandProfiler:
    """Windowed cProfile capture over a live engine's execute path."""

    #: Hard cap on one capture window, seconds.
    MAX_SECONDS = 30.0

    def __init__(self) -> None:
        self._capture_lock = threading.Lock()  # one capture at a time
        self._call_lock = threading.Lock()  # one profiled call at a time
        self._profile: Any = None  # armed cProfile.Profile, else None
        self._calls = 0

    @property
    def armed(self) -> bool:
        """True while a capture window is open."""
        return self._profile is not None

    # ------------------------------------------------------------------
    def profile_call(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` under the armed profile if the slot is free.

        Never blocks and never fails the call: when unarmed, or when
        another thread already holds the profile slot, ``fn`` simply
        runs unprofiled.
        """
        profile = self._profile
        if profile is None or not self._call_lock.acquire(blocking=False):
            return fn(*args, **kwargs)
        try:
            # Re-check under the slot lock: capture() may have disarmed
            # (and begun reading stats) between the peek and the acquire.
            if self._profile is not profile:
                return fn(*args, **kwargs)
            self._calls += 1
            profile.enable()
            try:
                return fn(*args, **kwargs)
            finally:
                profile.disable()
        finally:
            self._call_lock.release()

    # ------------------------------------------------------------------
    def capture(self, seconds: float, top: int = 25) -> str:
        """Arm for ``seconds``, then return the pstats top-``top`` table.

        Raises :class:`ProfileBusyError` when a capture is already in
        progress and :class:`ValueError` for a non-positive window.
        """
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError("profile seconds must be positive")
        seconds = min(seconds, self.MAX_SECONDS)
        top = max(1, int(top))
        if not self._capture_lock.acquire(blocking=False):
            raise ProfileBusyError(
                "a profile capture is already running (one at a time)"
            )
        try:
            profile = cProfile.Profile()
            self._calls = 0
            self._profile = profile
            try:
                time.sleep(seconds)
            finally:
                self._profile = None
            # An engine call that won the slot before disarm may still
            # be mid-flight with the profile enabled; taking the slot
            # lock once is the barrier that lets it finish.
            with self._call_lock:
                calls = self._calls
            return self._format(profile, seconds, calls, top)
        finally:
            self._profile = None
            self._capture_lock.release()

    @staticmethod
    def _format(
        profile: "cProfile.Profile", seconds: float, calls: int, top: int
    ) -> str:
        buffer = io.StringIO()
        buffer.write(
            f"profile: {seconds:g}s window, {calls} engine "
            f"call{'s' if calls != 1 else ''} profiled\n"
        )
        if calls == 0:
            buffer.write(
                "(no queries arrived during the window — issue queries "
                "while the capture runs)\n"
            )
            return buffer.getvalue()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        return buffer.getvalue()
