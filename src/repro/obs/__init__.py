"""repro.obs — end-to-end query tracing and zero-dep metrics export.

:mod:`repro.obs.trace` provides the span/tracer primitives threaded
through every serving layer (transport → scheduler → shard/cluster pool
→ worker → engine → peel kernels); :mod:`repro.obs.export` serves the
metrics snapshot and the trace rings over HTTP in Prometheus-text and
JSON form.  Both are standard-library only.  The export tier (which
pulls in ``http.server``) loads lazily so the kernel hot path's
``record_phase`` import stays featherweight.
"""

from .trace import (
    DEFAULT_SLOW_MS,
    DEFAULT_TRACE_SAMPLE,
    NO_TRACE,
    Span,
    Tracer,
    TraceStore,
    current_span,
    format_trace,
    format_trace_line,
    record_phase,
    use_span,
)

__all__ = [
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_SAMPLE",
    "MetricsServer",
    "NO_TRACE",
    "Span",
    "TraceStore",
    "Tracer",
    "current_span",
    "format_trace",
    "format_trace_line",
    "record_phase",
    "render_prometheus",
    "use_span",
]


def __getattr__(name):  # PEP 562: defer the http.server import chain
    if name in ("MetricsServer", "render_prometheus"):
        from . import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
