"""repro.obs — end-to-end query tracing and zero-dep metrics export.

:mod:`repro.obs.trace` provides the span/tracer primitives threaded
through every serving layer (transport → scheduler → shard/cluster pool
→ worker → engine → peel kernels); :mod:`repro.obs.export` serves the
metrics snapshot and the trace rings over HTTP in Prometheus-text and
JSON form.  Both are standard-library only.  The export tier (which
pulls in ``http.server``) loads lazily so the kernel hot path's
``record_phase`` import stays featherweight.
"""

from .history import SLO, MetricsHistory, parse_slo
from .trace import (
    DEFAULT_SLOW_MS,
    DEFAULT_TRACE_SAMPLE,
    NO_TRACE,
    Span,
    Tracer,
    TraceStore,
    current_span,
    format_trace,
    format_trace_line,
    record_phase,
    use_span,
)

__all__ = [
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_SAMPLE",
    "MetricsHistory",
    "MetricsServer",
    "NO_TRACE",
    "OnDemandProfiler",
    "ProfileBusyError",
    "SLO",
    "Span",
    "TraceStore",
    "Tracer",
    "current_span",
    "format_trace",
    "format_trace_line",
    "parse_slo",
    "record_phase",
    "render_dashboard",
    "render_prometheus",
    "use_span",
]

#: Lazily-resolved exports (PEP 562): attribute -> submodule.  Keeps
#: the kernel hot path's ``record_phase`` import from dragging in
#: ``http.server`` / ``cProfile`` / the dashboard renderer.
_LAZY = {
    "MetricsServer": "export",
    "render_prometheus": "export",
    "render_dashboard": "dashboard",
    "OnDemandProfiler": "profiling",
    "ProfileBusyError": "profiling",
}


def __getattr__(name):
    submodule = _LAZY.get(name)
    if submodule is not None:
        from importlib import import_module

        return getattr(import_module(f".{submodule}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
