"""Time-series metrics: a sampling collector over ServiceMetrics.

Everything in :mod:`repro.service.metrics` is a point-in-time counter;
answering "what changed in the last five minutes" needs history.
:class:`MetricsHistory` is a daemon collector thread that samples
:meth:`~repro.service.metrics.ServiceMetrics.snapshot` (plus the trace
store's counters) on a fixed interval into a bounded ring of **ticks**.
Each tick stores the *cumulative* counters, not rates — rates (qps, hit
rate, coalesce rate, error rate) are derived at read time from the
deltas between consecutive retained ticks divided by their real
timestamp gap.  That one decision is what makes the series robust:

* **ring wrap** — when old ticks rotate out, the remaining ticks still
  carry absolute counter values, so every surviving pair still yields
  an exact rate for its own interval;
* **collector restart** — a stopped and restarted collector resumes
  against the same monotonic counters; the first new tick pairs with
  the last old one and the rate over the gap is simply averaged over
  the (longer) real ``dt`` rather than invented;
* **scrape gaps** — a delayed sample widens ``dt`` instead of spiking
  the rate.

:class:`SLO` adds declarative objectives (``p95_ms``, ``err_rate``)
evaluated over the most recent history window; ok -> breach transitions
land in a bounded breach-event ring shown on the dashboard and counted
by the ``repro_slo_breaches_total`` Prometheus series.  The collector
must stay far under the serving stack's <5% observability budget —
``benchmarks/bench_obs_overhead.py`` gates it at <2% added latency when
sampling at a 1s interval.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

__all__ = ["SLO", "parse_slo", "MetricsHistory"]

#: Hit-rate numerator/denominator sources (mirrors
#: :attr:`~repro.service.metrics.ServiceMetrics.cache_hit_rate`).
_HIT_SOURCES = ("cache", "extended", "coalesced")
_SERVED_SOURCES = ("cache", "extended", "cold", "coalesced")


class SLO:
    """Declarative service-level objectives over the history window.

    ``p95_ms`` bounds the overall p95 latency gauge (the global bounded
    reservoir, read at the newest tick); ``err_rate`` bounds the
    fraction of requests that errored *within the window*
    (``d_errors / (d_queries + d_errors)`` between the window's first
    and last tick — errored requests never reach ``queries_served``, so
    the denominator is requests, not served queries).  Objectives left
    ``None`` are not evaluated; an objective with no data yet holds
    (readiness must not flap before traffic exists).
    """

    __slots__ = ("p95_ms", "err_rate", "window_s")

    def __init__(
        self,
        p95_ms: Optional[float] = None,
        err_rate: Optional[float] = None,
        window_s: float = 60.0,
    ) -> None:
        if p95_ms is not None and p95_ms <= 0:
            raise ValueError("slo p95_ms must be positive")
        if err_rate is not None and not 0.0 <= err_rate <= 1.0:
            raise ValueError("slo err_rate must be in [0, 1]")
        if window_s <= 0:
            raise ValueError("slo window_s must be positive")
        self.p95_ms = p95_ms
        self.err_rate = err_rate
        self.window_s = float(window_s)

    def describe(self) -> Dict[str, float]:
        out: Dict[str, float] = {"window_s": self.window_s}
        if self.p95_ms is not None:
            out["p95_ms"] = self.p95_ms
        if self.err_rate is not None:
            out["err_rate"] = self.err_rate
        return out

    # ------------------------------------------------------------------
    def evaluate(self, ticks: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Evaluate every configured objective over ``ticks``.

        ``ticks`` is the window's raw tick list, oldest first.  Returns
        ``{"ok": bool, "window_s": ..., "objectives": {name: {"target",
        "value", "ok"}}}`` — ``value`` is ``None`` (and the objective
        holds) when the window has no data to judge yet.
        """
        objectives: Dict[str, Dict[str, Any]] = {}
        if self.p95_ms is not None:
            value = None
            for tick in reversed(ticks):
                overall = tick.get("latency_overall_ms") or {}
                if overall.get("p95") is not None:
                    value = overall["p95"]
                    break
            objectives["p95_ms"] = {
                "target": self.p95_ms,
                "value": value,
                "ok": value is None or value <= self.p95_ms,
            }
        if self.err_rate is not None:
            value = None
            if len(ticks) >= 2:
                first, last = ticks[0], ticks[-1]
                d_err = last["errors"] - first["errors"]
                d_q = last["queries_served"] - first["queries_served"]
                requests = d_q + d_err
                if requests > 0:
                    value = d_err / requests
            objectives["err_rate"] = {
                "target": self.err_rate,
                "value": value,
                "ok": value is None or value <= self.err_rate,
            }
        return {
            "ok": all(obj["ok"] for obj in objectives.values()),
            "window_s": self.window_s,
            "objectives": objectives,
        }


def parse_slo(spec: str) -> SLO:
    """Parse ``"p95_ms=50,err_rate=0.01[,window_s=60]"`` into an SLO."""
    fields: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in ("p95_ms", "err_rate", "window_s"):
            raise ValueError(
                f"bad SLO term {part!r} "
                "(want p95_ms=MS, err_rate=FRACTION, window_s=SECONDS)"
            )
        try:
            fields[key] = float(value)
        except ValueError as exc:
            raise ValueError(f"bad SLO value in {part!r}") from exc
    if not ("p95_ms" in fields or "err_rate" in fields):
        raise ValueError("an SLO needs at least one of p95_ms / err_rate")
    return SLO(
        p95_ms=fields.get("p95_ms"),
        err_rate=fields.get("err_rate"),
        window_s=fields.get("window_s", 60.0),
    )


class MetricsHistory:
    """Bounded time-series collection over a shared metrics sink.

    Parameters
    ----------
    metrics:
        The :class:`~repro.service.metrics.ServiceMetrics` to sample.
    trace_store:
        Optional :class:`~repro.obs.trace.TraceStore`; its counters ride
        along in every tick.
    interval_s:
        Collector period (default 1s; the <2% overhead gate is at 1s).
    capacity:
        Ring size in ticks (default 600 = ten minutes at 1s).
    max_families:
        Per-tick cap on retained family rows (the busiest families by
        served count; the live table itself is bounded separately).
    slo:
        Optional :class:`SLO` evaluated on every sample; ok/breach
        transitions append to the breach-event ring.
    gauges:
        Optional callable returning extra point-in-time gauges to store
        verbatim in the tick under ``"gauges"`` (e.g. the scheduler's
        pending-by-family map).
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    def __init__(
        self,
        metrics,
        trace_store=None,
        interval_s: float = 1.0,
        capacity: int = 600,
        max_families: int = 16,
        slo: Optional[SLO] = None,
        gauges: Optional[Callable[[], Dict[str, Any]]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (rates need pairs)")
        if max_families < 1:
            raise ValueError("max_families must be at least 1")
        self.metrics = metrics
        self.trace_store = trace_store
        self.interval_s = float(interval_s)
        self.max_families = max_families
        self.slo = slo
        self.gauges = gauges
        self.clock = clock
        self._lock = threading.Lock()
        self._ticks: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._breaches: "deque[Dict[str, Any]]" = deque(maxlen=64)
        self.breach_count = 0
        self.sample_errors = 0
        #: Last per-objective verdict, for transition detection.
        self._last_ok: Dict[str, bool] = {}
        self._slo_status: Optional[Dict[str, Any]] = None
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def sample(self) -> Dict[str, Any]:
        """Take one tick now (also the collector thread's body)."""
        now = self.clock()
        snap = self.metrics.snapshot()
        source = snap.get("by_source") or {}
        server = snap.get("server") or {}
        cluster = snap.get("cluster") or {}
        families = snap.get("by_family") or {}
        if len(families) > self.max_families:
            busiest = sorted(
                families.items(),
                key=lambda item: item[1].get("queries", 0),
                reverse=True,
            )[: self.max_families]
            families = dict(busiest)
        live = snap.get("live") or {}
        tick: Dict[str, Any] = {
            "t": now,
            "queries_served": snap.get("queries_served", 0),
            "errors": snap.get("errors", 0),
            "mutations_applied": live.get("mutations_applied", 0),
            "families_invalidated": live.get("families_invalidated", 0),
            "families_preserved": live.get("families_preserved", 0),
            "compactions": live.get("compactions", 0),
            "hits": sum(source.get(s, 0) for s in _HIT_SOURCES),
            "hit_base": sum(source.get(s, 0) for s in _SERVED_SOURCES),
            "batches": server.get("batches", 0),
            "batched_queries": server.get("batched_queries", 0),
            "queue_depth": server.get("queue_depth", 0),
            "replica_idle_dispatches": server.get(
                "replica_idle_dispatches", 0
            ),
            "workers": dict(cluster.get("queue_depth") or {}),
            # Untruncated on purpose (one integer per registered graph):
            # per-graph demand deltas stay exact even when the family
            # table above dropped rows to ``max_families``.
            "graphs": dict(snap.get("by_graph") or {}),
            "families": families,
            "latency_overall_ms": dict(snap.get("latency_overall_ms") or {}),
        }
        if self.trace_store is not None:
            tick["traces"] = self.trace_store.counters()
        if self.gauges is not None:
            try:
                tick["gauges"] = self.gauges()
            except Exception:  # a gauge probe must never kill the tick
                self.sample_errors += 1
        with self._lock:
            self._ticks.append(tick)
            if self.slo is not None:
                self._evaluate_slo_locked(now)
        return tick

    def _evaluate_slo_locked(self, now: float) -> None:
        window = self._window_locked(self.slo.window_s)
        status = self.slo.evaluate(window)
        self._slo_status = status
        for name, obj in status["objectives"].items():
            was_ok = self._last_ok.get(name, True)
            if was_ok and not obj["ok"]:
                self.breach_count += 1
                self._breaches.append(
                    {
                        "t": now,
                        "objective": name,
                        "event": "breach",
                        "value": obj["value"],
                        "target": obj["target"],
                    }
                )
            elif not was_ok and obj["ok"]:
                self._breaches.append(
                    {
                        "t": now,
                        "objective": name,
                        "event": "recovered",
                        "value": obj["value"],
                        "target": obj["target"],
                    }
                )
            self._last_ok[name] = obj["ok"]

    def _run(self, stop: threading.Event) -> None:
        while not stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:  # keep collecting; a bad tick is dropped
                self.sample_errors += 1

    def start(self) -> None:
        """Start (or restart) the collector thread; takes an immediate
        first tick so rates exist one interval later, not two."""
        if self._thread is not None and self._thread.is_alive():
            return
        try:
            self.sample()
        except Exception:
            self.sample_errors += 1
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            args=(self._stop,),
            name="repro-metrics-history",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop collecting (idempotent); the ring is retained, and a
        later :meth:`start` resumes against the same counters."""
        stop, thread = self._stop, self._thread
        self._stop = self._thread = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _window_locked(
        self, window_s: Optional[float]
    ) -> List[Dict[str, Any]]:
        ticks = list(self._ticks)
        if window_s is None or not ticks:
            return ticks
        cutoff = ticks[-1]["t"] - window_s
        start = len(ticks)
        for i in range(len(ticks) - 1, -1, -1):
            if ticks[i]["t"] < cutoff:
                break
            start = i
        # One tick before the window edge anchors the first delta, so a
        # window covering N ticks yields N derived points, not N-1.
        if start > 0:
            start -= 1
        return ticks[start:]

    def ticks(self, window_s: Optional[float] = None) -> List[Dict[str, Any]]:
        """Raw ticks (cumulative counters), oldest first."""
        with self._lock:
            return self._window_locked(window_s)

    def series(self, window_s: Optional[float] = None) -> List[Dict[str, Any]]:
        """Derived rate points, oldest first.

        Each point pairs a tick with its predecessor: counters become
        per-second rates over the pair's *actual* timestamp gap, which
        is what keeps them exact across ring wrap, scrape gaps, and
        collector restarts.  Deltas are clamped at zero so a swapped-in
        fresh metrics sink cannot produce negative rates.
        """
        ticks = self.ticks(window_s)
        points: List[Dict[str, Any]] = []
        for prev, cur in zip(ticks, ticks[1:]):
            point = _derive_pair(prev, cur)
            if point is not None:
                points.append(point)
        return points

    def latest(self) -> Optional[Dict[str, Any]]:
        """The newest derived point, or ``None`` before two ticks exist."""
        with self._lock:
            ticks = list(self._ticks)[-2:]
        if len(ticks) < 2:
            return None
        return _derive_pair(ticks[0], ticks[1])

    def breaches(self) -> List[Dict[str, Any]]:
        """SLO breach/recovery events, oldest first (bounded ring)."""
        with self._lock:
            return [dict(event) for event in self._breaches]

    def slo_status(self) -> Optional[Dict[str, Any]]:
        """The last evaluated SLO verdict (``None`` without an SLO or
        before the first sample)."""
        with self._lock:
            if self.slo is None:
                return None
            if self._slo_status is None:
                return self.slo.evaluate(self._window_locked(self.slo.window_s))
            return self._slo_status

    def document(self, window_s: Optional[float] = None) -> Dict[str, Any]:
        """The ``/history.json`` payload: derived points + SLO state."""
        doc: Dict[str, Any] = {
            "interval_s": self.interval_s,
            "window_s": window_s,
            "points": self.series(window_s),
            "breach_count": self.breach_count,
            "breaches": self.breaches(),
        }
        if self.slo is not None:
            doc["slo"] = self.slo.describe()
            doc["slo_status"] = self.slo_status()
        return doc


def _derive_pair(prev: Dict[str, Any], cur: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """One derived point from a consecutive tick pair (see series())."""
    dt = cur["t"] - prev["t"]
    if dt <= 0:
        return None
    d_q = max(0, cur["queries_served"] - prev["queries_served"])
    d_err = max(0, cur["errors"] - prev["errors"])
    d_hits = max(0, cur["hits"] - prev["hits"])
    d_base = max(0, cur["hit_base"] - prev["hit_base"])
    d_batches = max(0, cur["batches"] - prev["batches"])
    d_batched = max(0, cur["batched_queries"] - prev["batched_queries"])
    # .get with defaults: ticks recorded before the live-mutation fields
    # existed (or by an older collector) still derive cleanly.
    d_mut = max(0, cur.get("mutations_applied", 0) - prev.get("mutations_applied", 0))
    d_inv = max(0, cur.get("families_invalidated", 0) - prev.get("families_invalidated", 0))
    d_pres = max(0, cur.get("families_preserved", 0) - prev.get("families_preserved", 0))
    touched = d_inv + d_pres
    requests = d_q + d_err
    return {
        "t": cur["t"],
        "dt": dt,
        "qps": d_q / dt,
        "eps": d_err / dt,
        "error_rate": d_err / requests if requests else 0.0,
        "hit_rate": d_hits / d_base if d_base else None,
        "coalesce_rate": 1.0 - d_batches / d_batched if d_batched else 0.0,
        "mutations_per_s": d_mut / dt,
        # Of the cached families a mutation touched this interval, the
        # fraction scoped invalidation actually had to drop (None when
        # no mutation touched any cached family).
        "invalidation_rate": d_inv / touched if touched else None,
        "queue_depth": cur["queue_depth"],
        "workers": dict(cur["workers"]),
        "families": {
            # One level of nesting (the phases_ms breakdown) — copy it
            # too, so mutating a derived point never writes through to
            # the retained tick.
            label: {
                key: dict(value) if isinstance(value, dict) else value
                for key, value in row.items()
            }
            for label, row in cur["families"].items()
        },
        "latency_overall_ms": dict(cur["latency_overall_ms"]),
    }
