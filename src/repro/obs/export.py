"""Metrics + trace exposition: Prometheus text and JSON over HTTP.

Everything here is standard library.  :func:`render_prometheus` turns a
:meth:`~repro.service.metrics.ServiceMetrics.snapshot` (plus the trace
store's counters) into Prometheus text-format 0.0.4;
:class:`MetricsServer` serves it from a daemonized
:class:`~http.server.ThreadingHTTPServer`, alongside JSON endpoints for
the raw snapshot and the trace rings:

* ``GET /metrics``        — Prometheus text exposition
* ``GET /metrics.json``   — the snapshot as one JSON document
* ``GET /traces``         — recent traces (``?limit=N``, default 20)
* ``GET /traces/slow``    — slow-query exemplars (``?limit=N``)
* ``GET /traces/<id>``    — one trace by id (404 when unknown)
* ``GET /healthz``        — bare liveness probe (``ok``; answers iff
  the process serves HTTP — never consults workers or SLOs)
* ``GET /readyz``         — readiness: 200 when the server should
  receive traffic, 503 with a JSON reason when cluster workers are
  dead or an SLO is breached
* ``GET /dashboard``      — the server-rendered HTML explorer
  (:mod:`repro.obs.dashboard`; ``?window=S`` bounds the series)
* ``GET /history.json``   — derived time-series points (``?window=S``)
* ``GET /profile``        — on-demand cProfile capture
  (``?seconds=N&top=M``; 409 while another capture runs)

The server thread only ever *reads* shared state (snapshot() and the
trace store are internally locked; the history collector samples on its
own thread), so it needs no coordination with the serving loop;
``repro serve --metrics-port N`` starts it next to the transport and
``repro trace`` / ``repro metrics`` are its CLI clients.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .dashboard import render_dashboard
from .history import MetricsHistory
from .profiling import OnDemandProfiler, ProfileBusyError
from .trace import TraceStore

__all__ = ["MetricsServer", "render_prometheus"]

#: Default dashboard/history window, seconds.
DEFAULT_WINDOW_S = 300.0


def _escape_label(value: Any) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _fmt(value: float) -> str:
    """Render a sample value (ints stay ints; floats use repr)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Lines:
    """Accumulate exposition lines with one HELP/TYPE header per metric."""

    def __init__(self) -> None:
        self._out: List[str] = []
        self._seen: set = set()

    def sample(
        self,
        name: str,
        value: Any,
        labels: Optional[Dict[str, Any]] = None,
        help_text: str = "",
        kind: str = "gauge",
    ) -> None:
        if value is None:
            return
        if name not in self._seen:
            self._seen.add(name)
            if help_text:
                self._out.append(f"# HELP {name} {help_text}")
            self._out.append(f"# TYPE {name} {kind}")
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            self._out.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self._out.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self._out) + "\n"


def render_prometheus(
    snapshot: Dict[str, Any],
    trace_store: Optional[TraceStore] = None,
    history: Optional[MetricsHistory] = None,
) -> str:
    """Prometheus text exposition of one metrics snapshot.

    With a ``history`` whose SLO is configured, the ``repro_slo_*``
    series (per-objective target/value/verdict plus the cumulative
    breach counter) ride along.
    """
    out = _Lines()
    out.sample(
        "repro_queries_served_total",
        snapshot.get("queries_served", 0),
        help_text="Queries served across all frontends.",
        kind="counter",
    )
    for dimension in ("source", "algorithm", "kernel", "backend"):
        for value, count in sorted(
            (snapshot.get(f"by_{dimension}") or {}).items()
        ):
            out.sample(
                f"repro_queries_by_{dimension}_total",
                count,
                labels={dimension: value},
                kind="counter",
            )
    out.sample(
        "repro_errors_total",
        snapshot.get("errors", 0),
        help_text="Errors observed by shell/transport/pool paths.",
        kind="counter",
    )
    for kind_name, count in sorted((snapshot.get("by_error") or {}).items()):
        out.sample(
            "repro_errors_by_kind_total",
            count,
            labels={"kind": kind_name},
            kind="counter",
        )
    out.sample(
        "repro_cache_hit_rate",
        snapshot.get("cache_hit_rate", 0.0),
        help_text="Fraction of queries served without fresh computation.",
    )
    for field in ("sessions_opened", "sessions_closed", "sessions_expired"):
        out.sample(f"repro_{field}_total", snapshot.get(field, 0), kind="counter")

    server = snapshot.get("server") or {}
    out.sample(
        "repro_server_coalesce_rate",
        server.get("coalesce_rate", 0.0),
        help_text="Fraction of scheduler queries sharing an engine pass.",
    )
    for field in (
        "connections_opened",
        "connections_closed",
        "batches",
        "batched_queries",
        "replica_idle_dispatches",
    ):
        out.sample(
            f"repro_server_{field}_total", server.get(field, 0), kind="counter"
        )
    for field in ("max_batch_width", "queue_depth", "queue_depth_peak"):
        out.sample(f"repro_server_{field}", server.get(field, 0))

    for algo, pcts in sorted((snapshot.get("latency_ms") or {}).items()):
        for pname, value in sorted(pcts.items()):
            out.sample(
                "repro_latency_ms",
                value,
                labels={
                    "algorithm": algo,
                    "quantile": f"{int(pname[1:]) / 100:g}",
                },
                help_text="Nearest-rank latency percentiles per algorithm.",
            )
    for pname, value in sorted(
        (snapshot.get("latency_overall_ms") or {}).items()
    ):
        out.sample(
            "repro_latency_overall_ms",
            value,
            labels={"quantile": f"{int(pname[1:]) / 100:g}"},
            help_text="Pooled latency percentiles across all algorithms.",
        )

    for family, row in sorted((snapshot.get("by_family") or {}).items()):
        out.sample(
            "repro_family_queries_total",
            row.get("queries", 0),
            labels={"family": family},
            help_text="Queries served per canonical spec family.",
            kind="counter",
        )
        out.sample(
            "repro_family_hit_rate",
            row.get("hit_rate", 0.0),
            labels={"family": family},
        )
        for pname in ("p50_ms", "p95_ms"):
            out.sample(
                "repro_family_latency_ms",
                row.get(pname),
                labels={
                    "family": family,
                    "quantile": f"{int(pname[1:-3]) / 100:g}",
                },
                help_text="Per-family nearest-rank latency percentiles.",
            )

    cluster = snapshot.get("cluster") or {}
    for worker, count in sorted((cluster.get("by_worker") or {}).items()):
        out.sample(
            "repro_cluster_worker_dispatches_total",
            count,
            labels={"worker": worker},
            kind="counter",
        )
    for worker, depth in sorted((cluster.get("queue_depth") or {}).items()):
        out.sample(
            "repro_cluster_worker_queue_depth",
            depth,
            labels={"worker": worker},
            help_text="Queued + in-flight jobs per cluster worker.",
        )
    out.sample(
        "repro_cluster_queue_depth_peak", cluster.get("queue_depth_peak", 0)
    )
    for mode, count in sorted(
        (cluster.get("segment_attaches") or {}).items()
    ):
        out.sample(
            "repro_cluster_segment_attaches_total",
            count,
            labels={"mode": mode},
            kind="counter",
        )
    out.sample(
        "repro_cluster_worker_restarts_total",
        cluster.get("worker_restarts", 0),
        kind="counter",
    )

    control = snapshot.get("control") or {}
    for policy, count in sorted((control.get("decisions") or {}).items()):
        out.sample(
            "repro_control_decisions_total",
            count,
            labels={"policy": policy},
            help_text="Adaptive-controller decisions applied, by policy.",
            kind="counter",
        )
    for tenant, count in sorted(
        (control.get("admission_rejected") or {}).items()
    ):
        out.sample(
            "repro_admission_rejected_total",
            count,
            labels={"tenant": tenant},
            help_text="Queries refused by admission control, by tenant.",
            kind="counter",
        )

    live = snapshot.get("live") or {}
    out.sample(
        "repro_live_mutations_applied_total",
        live.get("mutations_applied", 0),
        help_text="Edge-mutation batches applied through GraphRegistry.apply.",
        kind="counter",
    )
    out.sample(
        "repro_live_families_invalidated_total",
        live.get("families_invalidated", 0),
        help_text="Cached families dropped by scoped invalidation.",
        kind="counter",
    )
    out.sample(
        "repro_live_families_preserved_total",
        live.get("families_preserved", 0),
        help_text="Cached families carried across a graph mutation.",
        kind="counter",
    )
    out.sample(
        "repro_live_compactions_total",
        live.get("compactions", 0),
        help_text="Delta chains folded into fresh flat CSR generations.",
        kind="counter",
    )
    for graph, generation in sorted(
        (live.get("graph_generation") or {}).items()
    ):
        out.sample(
            "repro_graph_generation",
            generation,
            labels={"graph": graph},
            help_text="Current registry version (generation) per graph.",
        )

    if trace_store is not None:
        counters = trace_store.counters()
        out.sample(
            "repro_traces_recorded_total",
            counters["traces_recorded"],
            help_text="Finished traces stored (post-sampling).",
            kind="counter",
        )
        out.sample(
            "repro_traces_slow_total", counters["slow_traces"], kind="counter"
        )
        out.sample(
            "repro_trace_spans_total",
            counters["spans_recorded"],
            kind="counter",
        )

    status = history.slo_status() if history is not None else None
    if status is not None:
        for name, objective in sorted(status["objectives"].items()):
            labels = {"objective": name}
            out.sample(
                "repro_slo_target",
                objective.get("target"),
                labels=labels,
                help_text="Configured SLO target per objective.",
            )
            out.sample(
                "repro_slo_value",
                objective.get("value"),
                labels=labels,
                help_text="Observed value over the SLO window.",
            )
            out.sample(
                "repro_slo_ok",
                1 if objective.get("ok") else 0,
                labels=labels,
                help_text="1 when the objective holds, 0 on breach.",
            )
        out.sample(
            "repro_slo_breaches_total",
            history.breach_count,
            help_text="Cumulative ok->breach transitions.",
            kind="counter",
        )
    return out.text()


class _Handler(BaseHTTPRequestHandler):
    """Route table over the owning :class:`MetricsServer`'s state."""

    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay silent

    def _reply(
        self, body: str, content_type: str, status: int = 200
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, document: Any, status: int = 200) -> None:
        self._reply(
            json.dumps(document, sort_keys=True, default=str),
            "application/json",
            status,
        )

    @staticmethod
    def _query_float(
        params: Dict[str, List[str]], key: str, default: float
    ) -> float:
        try:
            return float(params.get(key, [default])[0])
        except (TypeError, ValueError):
            return default

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        exporter: "MetricsServer" = self.server.exporter  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        params = parse_qs(parsed.query)
        try:
            limit = int(params.get("limit", ["20"])[0])
        except ValueError:
            limit = 20
        store = exporter.trace_store
        history = exporter.history
        if path == "/metrics":
            self._reply(
                render_prometheus(
                    exporter.metrics.snapshot(), store, history
                ),
                "text/plain",
            )
        elif path == "/metrics.json":
            snapshot = exporter.metrics.snapshot()
            if store is not None:
                snapshot["traces"] = store.counters()
            self._reply_json(snapshot)
        elif path == "/healthz":
            self._reply("ok\n", "text/plain")
        elif path == "/readyz":
            doc = (
                exporter.readiness()
                if exporter.readiness is not None
                else {"ready": True, "reasons": []}
            )
            self._reply_json(doc, status=200 if doc.get("ready") else 503)
        elif path == "/dashboard":
            self._reply(exporter.render_dashboard_page(params), "text/html")
        elif path == "/control.json":
            if exporter.control is None:
                self._reply_json(
                    {"error": "adaptive control plane disabled"}, status=404
                )
            else:
                self._reply_json(exporter.control())
        elif path == "/history.json":
            if history is None:
                self._reply_json(
                    {"error": "history collector disabled"}, status=404
                )
            else:
                window = self._query_float(
                    params, "window", DEFAULT_WINDOW_S
                )
                self._reply_json(history.document(window))
        elif path == "/profile":
            self._serve_profile(exporter, params)
        elif path == "/traces" and store is not None:
            self._reply_json({"traces": store.recent(limit)})
        elif path == "/traces/slow" and store is not None:
            self._reply_json({"traces": store.slow(limit)})
        elif path.startswith("/traces/") and store is not None:
            trace = store.get(path[len("/traces/"):])
            if trace is None:
                self._reply_json({"error": "unknown trace id"}, status=404)
            else:
                self._reply_json(trace)
        else:
            self._reply_json({"error": f"unknown path {path!r}"}, status=404)

    def _serve_profile(
        self, exporter: "MetricsServer", params: Dict[str, List[str]]
    ) -> None:
        profiler = exporter.profiler
        if profiler is None:
            self._reply_json(
                {"error": "profiling disabled (no engine attached)"},
                status=404,
            )
            return
        seconds = self._query_float(params, "seconds", 5.0)
        try:
            top = int(params.get("top", ["25"])[0])
        except ValueError:
            top = 25
        try:
            report = profiler.capture(seconds, top=top)
        except ProfileBusyError as exc:
            self._reply_json({"error": str(exc)}, status=409)
        except ValueError as exc:
            self._reply_json({"error": str(exc)}, status=400)
        else:
            self._reply(report, "text/plain")


class MetricsServer:
    """A daemon-threaded HTTP exposition server (port 0 = ephemeral)."""

    def __init__(
        self,
        metrics,
        trace_store: Optional[TraceStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        history: Optional[MetricsHistory] = None,
        readiness: Optional[Callable[[], Dict[str, Any]]] = None,
        profiler: Optional[OnDemandProfiler] = None,
        control: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.metrics = metrics
        self.trace_store = trace_store
        #: Optional :class:`MetricsHistory` backing ``/history.json``,
        #: the dashboard series, and the ``repro_slo_*`` exposition.
        #: The caller owns its lifecycle (start/stop).
        self.history = history
        #: Optional zero-arg callable returning the ``/readyz``
        #: document (``{"ready": bool, "reasons": [...], ...}``).
        self.readiness = readiness
        #: Optional :class:`OnDemandProfiler` backing ``/profile``.
        self.profiler = profiler
        #: Optional zero-arg callable returning the adaptive
        #: controller's document (``/control.json`` + dashboard panel);
        #: ``None`` = control plane disabled (the route answers 404).
        self.control = control
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def render_dashboard_page(self, params: Dict[str, List[str]]) -> str:
        """Assemble the ``/dashboard`` HTML from the live state."""
        window = _Handler._query_float(params, "window", DEFAULT_WINDOW_S)
        points: List[Dict[str, Any]] = []
        slo_status = None
        breaches: List[Dict[str, Any]] = []
        if self.history is not None:
            points = self.history.series(window)
            slo_status = self.history.slo_status()
            breaches = self.history.breaches()
        slow_traces: List[Dict[str, Any]] = []
        if self.trace_store is not None:
            slow_traces = self.trace_store.summaries(8, slow=True)
            if not slow_traces:
                slow_traces = self.trace_store.summaries(8)
        readiness = self.readiness() if self.readiness is not None else None
        control = self.control() if self.control is not None else None
        return render_dashboard(
            self.metrics.snapshot(),
            points=points,
            slo_status=slo_status,
            breaches=breaches,
            slow_traces=slow_traces,
            readiness=readiness,
            window_s=window,
            control=control,
        )

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` once started, else ``None``."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns the bound address."""
        if self._httpd is not None:
            return self.address  # type: ignore[return-value]
        httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        httpd.daemon_threads = True
        httpd.exporter = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self.address  # type: ignore[return-value]

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
