"""Server-rendered observability dashboard — pure stdlib HTML + SVG.

:func:`render_dashboard` turns one metrics snapshot plus the
:class:`~repro.obs.history.MetricsHistory` series into a single
self-contained HTML document: stat tiles, inline-SVG sparklines (qps /
hit rate / coalesce rate), a per-family latency heatmap over time with
a peel-vs-enumerate kernel-phase breakdown column, the
worker queue-depth bars, SLO status with the breach-event ring, and a
slow-trace exemplar table whose ids link to the ``/traces/<id>``
waterfalls.  Design constraints:

* **zero external fetches** — no ``<script>``, no ``<link>``, no
  webfonts, no CDN; everything is inline and the page renders identically
  offline (CI asserts the absence of third-party tags);
* **deterministic output** — same inputs, same bytes: numbers are
  formatted with fixed precision and every iteration is sorted, so
  golden-substring tests hold;
* **refresh without JS** — ``<meta http-equiv="refresh">`` reloads the
  page; hover detail uses native SVG ``<title>`` tooltips.

The palette is a validated light/dark pair (sequential = one blue ramp
light->dark for the heatmap; status colors are fixed and always paired
with a text label, never color alone).
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["render_dashboard"]

#: Sequential blue ramp (steps 100..700), light -> dark = low -> high.
_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_STYLE = """\
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --series-1: #2a78d6;
  --good: #0ca30c;
  --critical: #d03b3b;
  --warning: #fab219;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --grid: #2c2c2a;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 20px 24px 40px;
  background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
h2 { font-size: 13px; font-weight: 600; color: var(--ink-2);
     margin: 0 0 8px; text-transform: uppercase; letter-spacing: .04em; }
.sub { color: var(--muted); font-size: 12px; margin-bottom: 18px; }
.grid { display: flex; flex-wrap: wrap; gap: 16px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; min-width: 230px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 16px; margin-bottom: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px 12px; min-width: 132px;
}
.tile .v { font-size: 24px; font-weight: 650; }
.tile .l { font-size: 11px; color: var(--muted); text-transform: uppercase;
           letter-spacing: .04em; }
.status { font-weight: 650; }
.status.ok { color: var(--good); }
.status.bad { color: var(--critical); }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--muted); font-weight: 500;
     font-size: 11px; text-transform: uppercase; letter-spacing: .04em;
     padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }
td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid);
     font-variant-numeric: tabular-nums; }
td.fam { font-variant-numeric: normal; color: var(--ink-2);
         font-size: 12px; max-width: 340px; overflow: hidden;
         text-overflow: ellipsis; white-space: nowrap; }
a { color: var(--series-1); text-decoration: none; }
a:hover { text-decoration: underline; }
.bar { background: var(--grid); border-radius: 3px; height: 10px;
       width: 160px; display: inline-block; vertical-align: middle; }
.bar i { background: var(--series-1); border-radius: 3px; height: 10px;
         display: block; }
.empty { color: var(--muted); font-style: italic; }
svg text { fill: var(--muted); font-size: 10px; }
.spark path { stroke: var(--series-1); fill: none; stroke-width: 2; }
.legend { font-size: 11px; color: var(--muted); margin-top: 6px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _num(value: Optional[float], digits: int = 2, unit: str = "") -> str:
    """Deterministic fixed-precision rendering; em-dash for no data."""
    if value is None:
        return "–"
    return f"{value:.{digits}f}{unit}"


def _sparkline(
    values: Sequence[Optional[float]],
    dom_id: str,
    width: int = 240,
    height: int = 48,
    digits: int = 2,
) -> str:
    """One inline-SVG sparkline (a thin polyline, no axes beyond a
    baseline); returns a placeholder span before two points exist."""
    known = [v for v in values if v is not None]
    if len(values) < 2 or not known:
        return '<span class="empty">no data yet</span>'
    lo, hi = min(known), max(known)
    span = (hi - lo) or 1.0
    step = (width - 4) / (len(values) - 1)
    coords: List[str] = []
    for i, value in enumerate(values):
        if value is None:
            continue
        x = 2 + i * step
        y = height - 6 - (value - lo) / span * (height - 14)
        coords.append(f"{x:.1f},{y:.1f}")
    last = known[-1]
    return (
        f'<svg id="{dom_id}" class="spark" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{dom_id}">'
        f'<title>last={last:.{digits}f} min={lo:.{digits}f} '
        f"max={hi:.{digits}f}</title>"
        f'<line x1="2" y1="{height - 6}" x2="{width - 2}" '
        f'y2="{height - 6}" stroke="var(--grid)" stroke-width="1"/>'
        f'<path d="M{" L".join(coords)}"/>'
        f'<text x="{width - 2}" y="10" text-anchor="end">'
        f"{last:.{digits}f}</text>"
        "</svg>"
    )


def _phase_breakdown(row: Optional[Dict[str, Any]]) -> str:
    """``peel X · enum Y`` from a family row's ``phases_ms`` breakdown.

    The two kernel halves of a query (fastpeel's peel, fastenum's
    enumeration); an em-dash when the family has no breakdown yet (pure
    cache traffic, or an algorithm outside the kernel dispatcher).
    """
    phases = (row or {}).get("phases_ms") or {}
    peel = phases.get("peel")
    enum = phases.get("enumerate")
    if peel is None and enum is None:
        return "–"
    return f"peel {_num(peel, 2)} · enum {_num(enum, 2)}"


def _heatmap(points: Sequence[Dict[str, Any]], max_cols: int = 40) -> str:
    """Per-family p95 latency over time as an SVG cell grid.

    Rows are families (sorted by label), columns are the most recent
    ticks; cell color is the p95 bucketed into the sequential ramp,
    normalised to the map's maximum.  Native ``<title>`` tooltips carry
    the exact value per cell.  A trailing column shows each family's
    latest peel-vs-enumerate kernel-phase breakdown (milliseconds, from
    ``record_phase`` via the family's ``phases_ms`` row).
    """
    window = list(points)[-max_cols:]
    labels = sorted({f for p in window for f in p.get("families", {})})
    if not window or not labels:
        return '<p class="empty">no per-family samples yet</p>'
    peak = 0.0
    for point in window:
        for row in point["families"].values():
            p95 = row.get("p95_ms")
            if p95 is not None and p95 > peak:
                peak = p95
    peak = peak or 1.0
    cell_w, cell_h, gap, label_w = 14, 16, 2, 260
    breakdown_w = 190
    grid_w = label_w + len(window) * (cell_w + gap) + 4
    width = grid_w + breakdown_w
    height = (cell_h + gap) * len(labels) + 18
    latest = window[-1]
    parts = [
        f'<svg id="heatmap" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        'aria-label="per-family p95 latency heatmap">'
    ]
    for r, label in enumerate(labels):
        y = r * (cell_h + gap)
        short = label if len(label) <= 38 else label[:35] + "…"
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 12}" text-anchor="end">'
            f"{_esc(short)}</text>"
        )
        for c, point in enumerate(window):
            row = point["families"].get(label)
            p95 = row.get("p95_ms") if row else None
            if p95 is None:
                fill = "var(--grid)"
                tip = f"{label}: no sample"
            else:
                idx = min(
                    len(_RAMP) - 1, int(p95 / peak * (len(_RAMP) - 1) + 0.5)
                )
                fill = _RAMP[idx]
                tip = f"{label}: p95={p95:.3f}ms"
            x = label_w + c * (cell_w + gap)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_w}" '
                f'height="{cell_h}" rx="2" fill="{fill}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
        parts.append(
            f'<text x="{grid_w + 8}" y="{y + 12}">'
            f"{_esc(_phase_breakdown(latest['families'].get(label)))}"
            "</text>"
        )
    parts.append(
        f'<text x="{label_w}" y="{height - 4}">older</text>'
        f'<text x="{grid_w - 4}" y="{height - 4}" text-anchor="end">'
        "now</text>"
        f'<text x="{grid_w + 8}" y="{height - 4}">kernel phases (ms)</text>'
        "</svg>"
    )
    parts.append(
        f'<div class="legend">p95 latency, light → dark = 0 → '
        f"{peak:.2f}ms (window max) · phases column: cumulative "
        "peel / enumerate ms (latest tick)</div>"
    )
    return "".join(parts)


def _queue_bars(
    workers: Dict[str, int], server_depth: int
) -> str:
    """Horizontal queue-depth bars (value labels beside every bar)."""
    rows = [("scheduler", server_depth)]
    rows.extend(sorted(workers.items()))
    peak = max((depth for _, depth in rows), default=0) or 1
    parts = ['<table id="queues"><tr><th>queue</th><th>depth</th>'
             "<th></th></tr>"]
    for name, depth in rows:
        pct = depth / peak * 100.0
        parts.append(
            f"<tr><td class=\"fam\">{_esc(name)}</td><td>{depth}</td>"
            f'<td><span class="bar"><i style="width:{pct:.0f}%"></i>'
            "</span></td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _slow_traces(summaries: Sequence[Dict[str, Any]]) -> str:
    if not summaries:
        return '<p class="empty">no slow traces retained</p>'
    parts = [
        '<table id="slow-traces"><tr><th>trace</th><th>name</th>'
        "<th>duration</th><th>spans</th></tr>"
    ]
    for row in summaries:
        trace_id = str(row.get("trace_id", ""))
        parts.append(
            f'<tr><td><a href="/traces/{_esc(trace_id)}">'
            f"{_esc(trace_id)}</a></td>"
            f'<td>{_esc(row.get("name", ""))}</td>'
            f'<td>{_num(row.get("duration_ms"), 3, "ms")}</td>'
            f'<td>{row.get("spans", 0)}</td></tr>'
        )
    parts.append("</table>")
    return "".join(parts)


def _slo_section(
    slo_status: Optional[Dict[str, Any]],
    breaches: Sequence[Dict[str, Any]],
) -> str:
    if slo_status is None:
        return (
            '<p class="empty">no SLOs configured '
            "(serve with --slo p95_ms=...,err_rate=...)</p>"
        )
    parts = [
        '<table id="slo"><tr><th>objective</th><th>target</th>'
        "<th>value</th><th>status</th></tr>"
    ]
    for name, obj in sorted(slo_status.get("objectives", {}).items()):
        digits = 3 if name == "err_rate" else 2
        state = (
            '<span class="status ok">✓ ok</span>'
            if obj.get("ok")
            else '<span class="status bad">✗ breach</span>'
        )
        parts.append(
            f"<tr><td>{_esc(name)}</td>"
            f'<td>{_num(obj.get("target"), digits)}</td>'
            f'<td>{_num(obj.get("value"), digits)}</td>'
            f"<td>{state}</td></tr>"
        )
    parts.append("</table>")
    recent = list(breaches)[-8:]
    if recent:
        parts.append('<div class="legend" id="breaches">recent events: ')
        parts.append(
            " · ".join(
                f'{_esc(ev.get("objective"))} {_esc(ev.get("event"))}'
                f' (value {_num(ev.get("value"), 3)})'
                for ev in reversed(recent)
            )
        )
        parts.append("</div>")
    return "".join(parts)


def _control_section(control: Optional[Dict[str, Any]]) -> str:
    """The adaptive-controller panel: current actuator settings, the
    recent decision ring, and per-tenant admission rejects."""
    if control is None:
        return ""
    window_ms = control.get("batch_window_ms")
    replication = control.get("replication") or {}
    placements = control.get("placements") or {}
    replica_txt = (
        " · ".join(
            f"{_esc(g)}×{c}" for g, c in sorted(replication.items())
        )
        or "–"
    )
    tiles = [
        ("batch window", _num(window_ms, 1, " ms")),
        ("decisions", str(control.get("decisions_applied", 0))),
        ("control ticks", str(control.get("ticks", 0))),
        ("placements", str(len(placements))),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="v">{value}</div>'
        f'<div class="l">{label}</div></div>'
        for label, value in tiles
    )
    parts = [
        '<div class="grid" style="margin-top:16px">',
        f'<div class="card" id="controller"><h2>adaptive controller</h2>'
        f'<div class="tiles">{tile_html}</div>'
        f'<div class="legend">replicas: {replica_txt}</div>',
    ]
    decisions = list(control.get("decisions") or [])[-8:]
    if decisions:
        parts.append(
            '<table id="decisions"><tr><th>policy</th><th>action</th>'
            "<th>target</th><th>reason</th></tr>"
        )
        for entry in reversed(decisions):
            parts.append(
                f'<tr><td>{_esc(entry.get("policy", ""))}</td>'
                f'<td>{_esc(entry.get("action", ""))}</td>'
                f'<td class="fam">{_esc(entry.get("target", ""))}</td>'
                f'<td class="fam">{_esc(entry.get("reason", ""))}</td>'
                "</tr>"
            )
        parts.append("</table>")
    else:
        parts.append('<p class="empty">no decisions yet</p>')
    parts.append("</div>")
    admission = control.get("admission")
    parts.append('<div class="card" id="admission"><h2>admission</h2>')
    if admission is None:
        parts.append('<p class="empty">admission control disabled</p>')
    else:
        rejected = admission.get("rejected") or {}
        parts.append(
            f'<div class="legend">admitted {admission.get("admitted", 0)}'
            f' · max queue depth '
            f'{admission.get("max_queue_depth") or "∞"}</div>'
        )
        if rejected:
            parts.append(
                '<table id="tenant-rejects"><tr><th>tenant</th>'
                "<th>rejected</th></tr>"
            )
            for tenant, count in sorted(rejected.items()):
                parts.append(
                    f'<tr><td class="fam">{_esc(tenant)}</td>'
                    f"<td>{count}</td></tr>"
                )
            parts.append("</table>")
        else:
            parts.append('<p class="empty">no rejections</p>')
    parts.append("</div></div>")
    return "".join(parts)


def render_dashboard(
    snapshot: Dict[str, Any],
    points: Optional[Sequence[Dict[str, Any]]] = None,
    slo_status: Optional[Dict[str, Any]] = None,
    breaches: Sequence[Dict[str, Any]] = (),
    slow_traces: Sequence[Dict[str, Any]] = (),
    readiness: Optional[Dict[str, Any]] = None,
    refresh_s: int = 5,
    window_s: Optional[float] = None,
    control: Optional[Dict[str, Any]] = None,
) -> str:
    """Render the whole dashboard page from already-collected inputs.

    All inputs are plain dicts/lists (the exporter assembles them under
    its own locks); the renderer itself touches no shared state, so the
    output is a pure function of its arguments.
    """
    points = list(points or [])
    latest = points[-1] if points else None
    qps = latest["qps"] if latest else None
    hit = latest["hit_rate"] if latest else None
    p95 = (
        (latest.get("latency_overall_ms") or {}).get("p95")
        if latest
        else (snapshot.get("latency_overall_ms") or {}).get("p95")
    )
    if readiness is None:
        ready_chip = ""
    elif readiness.get("ready"):
        ready_chip = ' · <span class="status ok">● ready</span>'
    else:
        reasons = "; ".join(str(r) for r in readiness.get("reasons", []))
        ready_chip = (
            f' · <span class="status bad">✗ not ready: {_esc(reasons)}</span>'
        )
    window_note = (
        f"window {window_s:.0f}s · " if window_s is not None else ""
    )
    live = snapshot.get("live") or {}
    tiles = [
        ("qps", _num(qps, 2)),
        ("hit rate", _num(hit, 3)),
        ("p95 latency", _num(p95, 2, " ms")),
        ("queries", str(snapshot.get("queries_served", 0))),
        ("errors", str(snapshot.get("errors", 0))),
    ]
    if live.get("mutations_applied") or live.get("compactions"):
        tiles.append(("mutations", str(live.get("mutations_applied", 0))))
        tiles.append(("compactions", str(live.get("compactions", 0))))
    tile_html = "".join(
        f'<div class="tile"><div class="v">{value}</div>'
        f'<div class="l">{label}</div></div>'
        for label, value in tiles
    )
    spark_qps = _sparkline([p["qps"] for p in points], "spark-qps")
    spark_hit = _sparkline(
        [p["hit_rate"] for p in points], "spark-hit-rate", digits=3
    )
    spark_coalesce = _sparkline(
        [p["coalesce_rate"] for p in points], "spark-coalesce", digits=3
    )
    # Shown only once mutations flow: of the cached families mutations
    # touched, the fraction scoped invalidation had to drop.
    invalidation_card = ""
    if any(p.get("invalidation_rate") is not None for p in points):
        spark_invalidation = _sparkline(
            [p.get("invalidation_rate") for p in points],
            "spark-invalidation",
            digits=3,
        )
        invalidation_card = (
            f'<div class="card"><h2>invalidation rate</h2>'
            f"{spark_invalidation}</div>"
        )
    workers = dict(latest["workers"]) if latest else dict(
        (snapshot.get("cluster") or {}).get("queue_depth") or {}
    )
    server_depth = (
        latest["queue_depth"]
        if latest
        else (snapshot.get("server") or {}).get("queue_depth", 0)
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{int(refresh_s)}">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dashboard</title>
<style>
{_STYLE}</style>
</head>
<body>
<h1>repro dashboard</h1>
<div class="sub">{window_note}auto-refresh {int(refresh_s)}s · \
stdlib-rendered, no external assets{ready_chip}</div>
<div class="tiles">{tile_html}</div>
<div class="grid">
<div class="card"><h2>qps</h2>{spark_qps}</div>
<div class="card"><h2>hit rate</h2>{spark_hit}</div>
<div class="card"><h2>coalesce rate</h2>{spark_coalesce}</div>
{invalidation_card}</div>
<div class="grid" style="margin-top:16px">
<div class="card"><h2>per-family p95 latency</h2>{_heatmap(points)}</div>
<div class="card"><h2>queue depths</h2>\
{_queue_bars(workers, server_depth)}</div>
</div>
<div class="grid" style="margin-top:16px">
<div class="card"><h2>service objectives</h2>\
{_slo_section(slo_status, breaches)}</div>
<div class="card"><h2>slow-trace exemplars</h2>\
{_slow_traces(slow_traces)}</div>
</div>
{_control_section(control)}</body>
</html>
"""
