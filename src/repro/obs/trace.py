"""Zero-dependency tracing: spans, sampling, and a bounded trace store.

One query produces one **trace**: a tree of :class:`Span` timings whose
root is minted at the serving edge (the network transport, or the engine
itself for stdio/facade callers) and whose children follow the query
through the scheduler, the shard/cluster pool, a worker process, and the
engine — down to the peel kernel's per-phase timings.  The design
constraints, in order:

* **hot-path first** — tracing is sampled (off by default); an
  unsampled query pays one counter tick and a handful of ``is None``
  checks (``benchmarks/bench_obs_overhead.py`` gates the total under
  5%).  Spans carry monotonic ``perf_counter`` durations; the wall
  clock appears only once per span, for display.
* **explicit propagation across executors** — ``loop.run_in_executor``
  does *not* copy contextvars, so the serving layers hand spans along
  as plain arguments and re-enter them with :func:`use_span` on the
  worker thread.  The :data:`NO_TRACE` sentinel marks "the sampling
  decision was already made upstream: do not trace", which stops the
  engine from minting a second root for a query the transport chose
  not to sample.
* **process-crossing by value** — a cluster worker receives
  ``(trace_id, parent_span_id)`` over the pipe, records its own spans
  via :meth:`Tracer.start_remote`/:meth:`Tracer.finish_remote`, and
  ships them back as plain dicts; the parent stitches them into the
  live trace with :meth:`Tracer.attach`.  Dicts-of-primitives survive
  both ``fork`` and ``spawn`` pickling trivially.
* **bounded retention** — finished traces land in a
  :class:`TraceStore` ring; traces slower than ``slow_ms`` are
  *additionally* kept in their own ring, so slow exemplars survive any
  amount of fast traffic.

:func:`record_phase` is the kernel-side hook: it adds a named phase
duration to an explicit ``phases`` dict (``SearchStats.phases``) and,
when a span is active, to that span — so traces explain *algorithmic*
time (CSR build, gamma-core, peel, enumeration, cursor resume), not
just queueing.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_SAMPLE",
    "NO_TRACE",
    "Span",
    "TraceStore",
    "Tracer",
    "current_span",
    "format_trace",
    "format_trace_line",
    "record_phase",
    "use_span",
]

#: Default slow-query threshold (exemplar retention + the ``slow`` flag).
DEFAULT_SLOW_MS = 250.0

#: Default sampling rate when observability is enabled without an
#: explicit ``--trace-sample``: every 50th query (and always the first —
#: the counter starts at zero), keeping the warm cache-hit path well
#: under the 5% overhead budget while still producing exemplars.
DEFAULT_TRACE_SAMPLE = 0.02


class _NoTrace:
    """Sentinel: "upstream decided not to trace this query"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "NO_TRACE"


NO_TRACE = _NoTrace()

_current: "ContextVar[Optional[object]]" = ContextVar(
    "repro_obs_span", default=None
)


#: The span active in this context (``None`` or :data:`NO_TRACE` when
#: nothing should be recorded).  Bound straight to ``ContextVar.get`` —
#: every query pays this call, so no Python wrapper frame around it.
current_span = _current.get


class use_span:
    """Make ``span`` the current span for the duration of a block.

    Accepts ``None`` (treated as :data:`NO_TRACE`: the block runs
    untraced and downstream layers will not mint a new root either).
    A plain ``__enter__``/``__exit__`` class, not ``@contextmanager`` —
    this sits on the per-query path of every executor hop, and the
    generator protocol costs several times more than two slot writes.
    """

    __slots__ = ("_span", "_token")

    def __init__(self, span) -> None:
        self._span = span

    def __enter__(self):
        self._token = _current.set(
            self._span if self._span is not None else NO_TRACE
        )
        return self._span

    def __exit__(self, *exc_info) -> None:
        _current.reset(self._token)


def record_phase(
    name: str, seconds: float, phases: Optional[Dict[str, float]] = None
) -> None:
    """Accumulate ``seconds`` under phase ``name`` (stored as ms).

    Writes to the explicit ``phases`` dict when given (the per-search
    ``SearchStats.phases`` accumulator) *and* to the current span, if
    one is active — span phases are therefore per-query increments even
    when the stats object outlives the query (a cached cursor's stats
    accumulate over its whole family lifetime).
    """
    ms = seconds * 1000.0
    if phases is not None:
        phases[name] = phases.get(name, 0.0) + ms
    span = _current.get()
    if span is not None and span is not NO_TRACE:
        sp = span.phases
        sp[name] = sp.get(name, 0.0) + ms


class Span:
    """One timed operation inside a trace (mutable until ended)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "phases",
        "start_ms",
        "duration_ms",
        "_t0",
        "_root",
        "_remote",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Optional[Dict[str, Any]] = None,
        root: bool = False,
        remote: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.phases: Dict[str, float] = {}
        self.start_ms = time.time() * 1000.0
        self.duration_ms = 0.0
        self._t0 = time.perf_counter()
        self._root = root
        self._remote = remote

    def annotate(self, **tags: Any) -> None:
        """Attach key/value tags (last write wins)."""
        self.tags.update(tags)

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict projection (pipe- and JSON-safe)."""
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.phases:
            out["phases"] = {k: round(v, 4) for k, v in self.phases.items()}
        return out


class TraceStore:
    """Bounded, thread-safe retention of finished traces.

    Two rings: ``capacity`` recent traces of any speed, plus
    ``slow_capacity`` traces at or above ``slow_ms`` — slow exemplars
    are retained even when fast traffic would have rotated them out of
    the recent ring long ago.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_capacity: int = 64,
        slow_ms: float = DEFAULT_SLOW_MS,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("trace store capacities must be at least 1")
        self.slow_ms = float(slow_ms)
        self._lock = threading.Lock()
        self._recent: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._slow: "deque[Dict[str, Any]]" = deque(maxlen=slow_capacity)
        self.traces_recorded = 0
        self.slow_traces = 0
        self.spans_recorded = 0

    def add(self, trace: Dict[str, Any]) -> None:
        trace["slow"] = trace["duration_ms"] >= self.slow_ms
        with self._lock:
            self.traces_recorded += 1
            self.spans_recorded += len(trace["spans"])
            self._recent.append(trace)
            if trace["slow"]:
                self.slow_traces += 1
                self._slow.append(trace)

    def recent(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Most recent traces, newest first."""
        with self._lock:
            rows = list(self._recent)
        return rows[-limit:][::-1] if limit > 0 else []

    def slow(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Most recent slow traces, newest first."""
        with self._lock:
            rows = list(self._slow)
        return rows[-limit:][::-1] if limit > 0 else []

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            for ring in (self._recent, self._slow):
                for trace in reversed(ring):
                    if trace["trace_id"] == trace_id:
                        return trace
        return None

    def summaries(
        self, limit: int = 20, slow: bool = False
    ) -> List[Dict[str, Any]]:
        """Compact newest-first rows for listings (no span payloads).

        The dashboard's exemplar table wants ids, names and durations —
        not the full span trees — so this projection keeps the render
        path from copying every retained span on each page load.
        """
        rows = self.slow(limit) if slow else self.recent(limit)
        return [
            {
                "trace_id": trace["trace_id"],
                "name": trace["name"],
                "start_ms": trace["start_ms"],
                "duration_ms": trace["duration_ms"],
                "spans": len(trace["spans"]),
                "slow": bool(trace.get("slow")),
            }
            for trace in rows
        ]

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces_recorded": self.traces_recorded,
                "slow_traces": self.slow_traces,
                "spans_recorded": self.spans_recorded,
            }


class Tracer:
    """Mint, nest, and finish spans; assemble finished traces.

    ``sample`` in ``(0, 1]`` enables counter-based sampling (GIL-safe:
    one :func:`itertools.count` tick per candidate query, no lock, no
    RNG on the unsampled path); the counter starts at zero so the very
    first query is always traced.  ``sample=0`` disables root minting
    entirely — child spans for an explicitly propagated parent still
    record, which is exactly what a cluster worker (remote spans only)
    needs.
    """

    #: Backstop against a runaway trace accumulating unbounded spans.
    MAX_SPANS = 512

    def __init__(
        self,
        sample: float = 0.0,
        slow_ms: float = DEFAULT_SLOW_MS,
        store: Optional[TraceStore] = None,
    ) -> None:
        self.store = (
            store if store is not None else TraceStore(slow_ms=slow_ms)
        )
        self.slow_ms = float(slow_ms)
        self.set_sample(sample)
        self._tick = itertools.count()
        # Span ids start from a per-tracer random 48-bit base: a trace
        # crosses process edges (parent tracer + worker tracers all
        # contribute spans), and counters that each start at 1 would
        # collide — turning the rendered parent->child tree cyclic.
        self._span_ids = itertools.count(
            int.from_bytes(os.urandom(6), "big") << 16
        )
        # Trace ids are <pid>-<random>-<counter>: the entropy is drawn
        # once per tracer, not per trace — a urandom syscall on every
        # sampled root would dominate the span lifecycle cost.
        self._trace_prefix = f"{os.getpid() & 0xFFFF:04x}-{os.urandom(4).hex()}"
        self._trace_ids = itertools.count()
        self._lock = threading.Lock()
        #: trace_id -> finished span dicts of the still-open trace.
        self._active: Dict[str, List[Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    def set_sample(self, sample: float) -> None:
        sample = float(sample)
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        self.sample = sample
        self._period = 0 if sample == 0.0 else max(1, round(1.0 / sample))

    @property
    def sampling(self) -> bool:
        """True when this tracer can mint new root spans."""
        return self._period > 0

    # ------------------------------------------------------------------
    def maybe_start(self, name: str, **tags: Any) -> Optional[Span]:
        """Mint a root span for a new trace, subject to sampling."""
        period = self._period
        if not period or next(self._tick) % period:
            return None
        trace_id = f"{self._trace_prefix}-{next(self._trace_ids):06x}"
        span = Span(
            trace_id, next(self._span_ids), None, name, tags, root=True
        )
        # Fresh unique key -> a plain (GIL-atomic) store; no lock needed.
        self._active[trace_id] = []
        return span

    def start_span(self, name: str, parent, **tags: Any) -> Optional[Span]:
        """A child span of ``parent`` (``None`` in, ``None`` out)."""
        if parent is None or parent is NO_TRACE:
            return None
        return Span(
            parent.trace_id, next(self._span_ids), parent.span_id, name, tags
        )

    def start_remote(
        self, trace_id: str, parent_id: Optional[int], name: str, **tags: Any
    ) -> Span:
        """The receiving half of a process crossing: a local root whose
        finished spans are *returned* (to ship back) instead of stored."""
        span = Span(
            trace_id,
            next(self._span_ids),
            parent_id,
            name,
            tags,
            root=True,
            remote=True,
        )
        with self._lock:
            self._active.setdefault(trace_id, [])
        return span

    def end(self, span: Optional[Span], **tags: Any):
        """Finish a span.

        Child spans accumulate into their trace; ending a **root** span
        assembles the whole trace — into the store for a local root, or
        returned as a list of span dicts for a remote one (the worker
        ships that list back over the pipe).  ``None`` in, no-op out.
        """
        if span is None or span is NO_TRACE:
            return None
        span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
        if tags:
            span.tags.update(tags)
        with self._lock:
            spans = self._active.get(span.trace_id)
            if spans is None:
                # The trace already closed (an error path ended the root
                # while this span was still in flight): drop late child
                # spans instead of leaking an orphan accumulator.
                if not span._root:
                    return None
                spans = []
            spans.append(span.to_dict())
            if not span._root:
                if len(spans) > self.MAX_SPANS:
                    del spans[: len(spans) - self.MAX_SPANS]
                return None
            self._active.pop(span.trace_id, None)
        # Spans ship in completion order; format_trace() sorts children
        # by start_ms at render time, so no sort on the recording path.
        if span._remote:
            return spans
        trace = {
            "trace_id": span.trace_id,
            "name": span.name,
            "start_ms": span.start_ms,
            "duration_ms": span.duration_ms,
            "spans": spans,
        }
        self.store.add(trace)
        return trace

    def finish_remote(
        self, span: Span, **tags: Any
    ) -> List[Dict[str, Any]]:
        """End a remote root; always returns the span-dict payload."""
        return self.end(span, **tags) or []

    def attach(self, span_or_trace_id, span_dicts) -> None:
        """Stitch remotely recorded span dicts into a live local trace."""
        if not span_dicts:
            return
        trace_id = (
            span_or_trace_id
            if isinstance(span_or_trace_id, str)
            else span_or_trace_id.trace_id
        )
        with self._lock:
            spans = self._active.get(trace_id)
            if spans is None:  # trace already closed: drop, don't leak
                return
            spans.extend(dict(d) for d in span_dicts)
            if len(spans) > self.MAX_SPANS:
                del spans[: len(spans) - self.MAX_SPANS]


# ----------------------------------------------------------------------
# rendering (shared by the shell `trace` command and `repro trace`)
# ----------------------------------------------------------------------
def _fmt_tags(payload: Dict[str, Any]) -> str:
    tags = payload.get("tags") or {}
    parts = [f"{k}={v}" for k, v in sorted(tags.items())]
    phases = payload.get("phases") or {}
    if phases:
        parts.append(
            "phases["
            + " ".join(
                f"{name}={ms:.3f}ms" for name, ms in sorted(phases.items())
            )
            + "]"
        )
    return (" " + " ".join(parts)) if parts else ""


def format_trace_line(trace: Dict[str, Any]) -> str:
    """One summary line per trace (the ``trace`` listing format)."""
    flag = " SLOW" if trace.get("slow") else ""
    return (
        f"{trace['trace_id']}  {trace['name']:<10} "
        f"{trace['duration_ms']:9.3f}ms  {len(trace['spans'])} spans{flag}"
    )


def format_trace(trace: Dict[str, Any]) -> List[str]:
    """Render one trace as an indented span tree (parent -> children)."""
    spans = trace.get("spans", [])
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in by_id:
            parent = None  # orphaned (ring-trimmed ancestor): show at root
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s["start_ms"])
    lines = [
        f"trace {trace['trace_id']} — {trace['name']} "
        f"({trace['duration_ms']:.3f}ms)"
        + (" [SLOW]" if trace.get("slow") else "")
    ]

    # Guard against malformed id graphs (e.g. colliding remote span
    # ids): each span renders at most once, so a cycle cannot recurse.
    visited: set = set()

    def walk(parent: Optional[int], depth: int) -> None:
        for span in children.get(parent, []):
            if id(span) in visited:
                continue
            visited.add(id(span))
            lines.append(
                "  " * depth
                + f"{span['name']} {span['duration_ms']:.3f}ms"
                + _fmt_tags(span)
            )
            walk(span["span_id"], depth + 1)

    walk(None, 1)
    # Spans unreachable from any root (a parent-id cycle in a malformed
    # payload) still render, flat, rather than silently vanishing.
    for span in sorted(spans, key=lambda s: s["start_ms"]):
        if id(span) not in visited:
            visited.add(id(span))
            lines.append(
                f"  {span['name']} {span['duration_ms']:.3f}ms"
                + _fmt_tags(span)
            )
            walk(span["span_id"], 2)
    return lines
