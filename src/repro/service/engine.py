"""QueryEngine — plan, dispatch, cache, and measure top-k queries.

The engine is the service layer's front door: it resolves a
:class:`~repro.service.model.TopKQuery` against the
:class:`~repro.service.registry.GraphRegistry`, plans which algorithm to
run (``"auto"`` picks LocalSearch-P: instance-optimal, progressive, and
— crucially for a serving layer — *resumable*, so one cached cursor
amortises a whole family of k's), consults the
:class:`~repro.service.cache.ResultCache`, and normalises whatever the
algorithm returns into a serializable
:class:`~repro.service.model.QueryResult`, recording latency and cache
provenance in :class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..baselines import backward, forward, online_all
from ..core.fastpeel import resolve_kernel
from ..core.local_search import LocalSearch
from ..core.noncontainment import top_k_noncontainment_communities
from ..core.progressive import LocalSearchP, ProgressiveCursor
from ..core.truss_search import top_k_truss_communities
from ..graph.weighted_graph import WeightedGraph
from .cache import CacheKey, ProgressiveEntry, ResultCache, StaticEntry
from .metrics import ServiceMetrics
from .model import AUTO, CommunityView, QueryResult, TopKQuery
from .registry import GraphHandle, GraphRegistry

__all__ = ["QueryPlan", "QueryEngine", "progressive_cursor_factory"]


def progressive_cursor_factory(
    graph: WeightedGraph, gamma: int, delta: float
) -> Callable[[], ProgressiveCursor]:
    """The one recipe for (re)building a progressive cursor.

    Shared by the engine's hot path and the warm-start restore so a
    rebuilt cursor always re-peels with semantics identical to the one
    whose views it is extending.
    """

    def factory():
        return LocalSearchP(graph, gamma=gamma, delta=delta).cursor()

    return factory


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query."""

    algorithm: str
    progressive: bool
    reason: str


#: Algorithms whose peel runs through the kernel dispatcher
#: (:func:`repro.core.count.construct_cvs`); onlineall/backward/truss
#: use their own peels and report no kernel.
_KERNEL_ALGORITHMS = frozenset(
    {"localsearch", "localsearch-p", "forward", "noncontainment"}
)

#: Non-progressive runners: graph x query -> object with ``.communities``.
_STATIC_RUNNERS: Dict[str, Callable[[WeightedGraph, TopKQuery], object]] = {
    "localsearch": lambda g, q: LocalSearch(
        g, gamma=q.gamma, delta=q.delta
    ).search(q.k),
    "forward": lambda g, q: forward(g, q.k, q.gamma),
    "onlineall": lambda g, q: online_all(g, q.k, q.gamma),
    "backward": lambda g, q: backward(g, q.k, q.gamma),
    "truss": lambda g, q: top_k_truss_communities(g, q.k, q.gamma),
    "noncontainment": lambda g, q: top_k_noncontainment_communities(
        g, q.k, q.gamma, delta=q.delta
    ),
}


class QueryEngine:
    """Serve :class:`TopKQuery` objects against long-lived graphs.

    Parameters
    ----------
    registry:
        Source of graph handles (built once, shared across queries).
    cache:
        Optional result cache; pass ``None`` to disable caching (every
        query is then a cold computation — used by tests/benchmarks as
        the baseline).
    metrics:
        Optional shared metrics sink.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.registry = registry
        self.cache = cache
        self.metrics = metrics

    # ------------------------------------------------------------------
    def plan(self, query: TopKQuery) -> QueryPlan:
        """Resolve ``algorithm="auto"`` and classify the dispatch."""
        algorithm = query.algorithm
        if algorithm == AUTO:
            return QueryPlan(
                algorithm="localsearch-p",
                progressive=True,
                reason=(
                    "auto: LocalSearch-P is instance-optimal and its "
                    "stream resumes, so cached answers extend to larger k"
                ),
            )
        if algorithm == "localsearch-p":
            return QueryPlan(
                algorithm, progressive=True, reason="requested explicitly"
            )
        return QueryPlan(
            algorithm, progressive=False, reason="requested explicitly"
        )

    # ------------------------------------------------------------------
    def _serve_progressive(
        self, handle: GraphHandle, query: TopKQuery, key: CacheKey
    ) -> Tuple[Tuple[CommunityView, ...], str, bool]:
        entry = self.cache.get(key) if self.cache is not None else None
        if not isinstance(entry, ProgressiveEntry):
            cursor_factory = progressive_cursor_factory(
                handle.graph, query.gamma, query.delta
            )
            entry = ProgressiveEntry(
                cursor_factory(),
                cursor_factory=cursor_factory,
                max_cached_k=(
                    self.cache.max_cached_k if self.cache is not None else None
                ),
            )
            if self.cache is not None:
                self.cache.put(key, entry)
        return entry.serve(query.k)

    def _serve_static(
        self, handle: GraphHandle, query: TopKQuery, key: CacheKey, algorithm: str
    ) -> Tuple[Tuple[CommunityView, ...], str, bool]:
        entry = self.cache.get(key) if self.cache is not None else None
        if isinstance(entry, StaticEntry):
            served = entry.serve(query.k)
            if served is not None:
                views, source = served
                complete = entry.complete and query.k >= len(entry.views)
                return views, source, complete
        result = _STATIC_RUNNERS[algorithm](handle.graph, query)
        views = tuple(
            CommunityView.from_community(c) for c in result.communities
        )
        complete = len(views) < query.k
        if self.cache is not None:
            self.cache.put(
                key,
                StaticEntry.capped(views, complete, self.cache.max_cached_k),
            )
        return views[: query.k], "cold", complete

    # ------------------------------------------------------------------
    def execute(self, query: TopKQuery) -> QueryResult:
        """Serve one query end to end."""
        started = time.perf_counter()
        handle = self.registry.get(query.graph)
        plan = self.plan(query)
        # The peel kernel in effect for this query: any fresh peel work
        # (cold fill or cursor resume) runs on it; pure cache hits report
        # it as the configured kernel.  Algorithms that never reach the
        # kernel dispatcher report none.
        kernel = (
            resolve_kernel()
            if plan.algorithm in _KERNEL_ALGORITHMS
            else None
        )
        key = CacheKey(
            graph=handle.name,
            version=handle.version,
            gamma=query.gamma,
            algorithm=plan.algorithm,
            delta=query.delta,
        )
        if plan.progressive:
            views, source, complete = self._serve_progressive(
                handle, query, key
            )
        else:
            views, source, complete = self._serve_static(
                handle, query, key, plan.algorithm
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if self.cache is not None:
            self.cache.record(source)
        if self.metrics is not None:
            self.metrics.observe_query(
                plan.algorithm, elapsed_ms, source, kernel=kernel
            )
        return QueryResult(
            query=query,
            algorithm=plan.algorithm,
            graph_version=handle.version,
            communities=views,
            source=source,
            elapsed_ms=elapsed_ms,
            complete=complete,
            plan_reason=plan.reason,
            kernel=kernel,
        )
