"""QueryEngine — plan, dispatch, cache, and measure top-k queries.

The engine is the service layer's front door: it resolves a
:class:`~repro.api.spec.QuerySpec` against the
:class:`~repro.service.registry.GraphRegistry`, plans which algorithm to
run (the spec's canonical resolution: ``"auto"`` picks LocalSearch-P —
instance-optimal, progressive, and, crucially for a serving layer,
*resumable* — unless the spec's ``cohesion``/``containment`` fields say
otherwise), consults the :class:`~repro.service.cache.ResultCache`
keyed by the spec's :meth:`~repro.api.spec.QuerySpec.cache_key`, and
normalises whatever the algorithm returns into a serializable
:class:`~repro.service.model.QueryResult`, recording latency and cache
provenance in :class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..api.spec import AUTO, FamilyKey, QuerySpec
from ..baselines import backward, forward, online_all
from ..core.local_search import LocalSearch
from ..core.noncontainment import top_k_noncontainment_communities
from ..core.progressive import LocalSearchP, ProgressiveCursor
from ..core.truss_search import top_k_truss_communities
from ..graph.weighted_graph import WeightedGraph
from ..obs.trace import NO_TRACE, Tracer, current_span, use_span
from .cache import CacheKey, ProgressiveEntry, ResultCache, StaticEntry
from .metrics import ServiceMetrics
from .model import CommunityView, QueryResult
from .registry import GraphHandle, GraphRegistry

__all__ = ["QueryPlan", "QueryEngine", "progressive_cursor_factory"]


def progressive_cursor_factory(
    graph: WeightedGraph,
    gamma: int,
    delta: float,
    kernel: Optional[str] = None,
) -> Callable[[], ProgressiveCursor]:
    """The one recipe for (re)building a progressive cursor.

    Shared by the engine's hot path, the warm-start restore and the
    cluster workers' per-FamilyKey state, so a rebuilt cursor always
    re-peels with semantics identical to the one whose views it is
    extending (including the kernel, which is part of the cache
    identity).  Each cursor's stream owns one
    :class:`~repro.core.fastpeel.PeelScratch` /
    :class:`~repro.core.fastenum.EnumScratch` pair, so every resume —
    local or inside a worker process — reuses the family's peel buffers
    and its EnumIC-P union-find.
    """

    def factory():
        return LocalSearchP(
            graph, gamma=gamma, delta=delta, kernel=kernel
        ).cursor()

    return factory


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query."""

    algorithm: str
    progressive: bool
    reason: str


#: Non-progressive runners: (graph, spec, resolved kernel) -> object
#: with ``.communities``.  Only the kernel-dispatcher algorithms take
#: the kernel; the rest use their own peels.
_STATIC_RUNNERS: Dict[
    str, Callable[[WeightedGraph, QuerySpec, Optional[str]], object]
] = {
    "localsearch": lambda g, q, kern: LocalSearch(
        g, gamma=q.gamma, delta=q.delta, kernel=kern
    ).search(q.k),
    "forward": lambda g, q, kern: forward(g, q.k, q.gamma),
    "onlineall": lambda g, q, kern: online_all(g, q.k, q.gamma),
    "backward": lambda g, q, kern: backward(g, q.k, q.gamma),
    "truss": lambda g, q, kern: top_k_truss_communities(
        g, q.k, q.gamma, kernel=kern
    ),
    "noncontainment": lambda g, q, kern: top_k_noncontainment_communities(
        g, q.k, q.gamma, delta=q.delta, kernel=kern
    ),
}


class QueryEngine:
    """Serve :class:`QuerySpec` objects against long-lived graphs.

    Parameters
    ----------
    registry:
        Source of graph handles (built once, shared across queries).
    cache:
        Optional result cache; pass ``None`` to disable caching (every
        query is then a cold computation — used by tests/benchmarks as
        the baseline).
    metrics:
        Optional shared metrics sink.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When an upstream
        layer (transport/scheduler/pool) already started a span for
        this query, execution records an ``engine`` child span; when no
        span is active at all (the stdio shell / facade path — the
        engine *is* the serving edge there), the tracer's sampling
        decides whether to mint a ``query`` root.  The
        :data:`~repro.obs.trace.NO_TRACE` sentinel marks "upstream
        sampled this query out": no span is recorded and no root is
        minted.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        #: Optional :class:`~repro.obs.profiling.OnDemandProfiler`.
        #: When armed, :meth:`_execute` routes through it so one live
        #: execution at a time is captured; unarmed cost is one
        #: attribute load per query.
        self.profiler = None
        # repro.live: migrate (don't drop) cached families across
        # mutation version flips.  The worker-side registry has no
        # mutation hooks — workers catch up via the apply_delta pipe
        # message instead.
        add_mutation_hook = getattr(registry, "add_mutation_hook", None)
        if add_mutation_hook is not None:
            add_mutation_hook(self._on_graph_mutated)

    # ------------------------------------------------------------------
    def _on_graph_mutated(self, event) -> None:
        """Mutation hook: scoped cache migration + live metrics.

        Runs inside :meth:`GraphRegistry.apply` / ``compact`` right
        after the atomic handle flip.  Families whose influence
        frontier sits above the batch's barrier weight are re-keyed to
        the new version with a cursor factory bound to the new graph;
        the rest are dropped (their progressive cursors retire with
        them).  Counts are attached to the event for the caller.
        """
        identical = event.kind == "compact"
        preserved = invalidated = 0
        if self.cache is not None:
            graph = event.handle.graph

            def factory_for(new_key: CacheKey):
                return progressive_cursor_factory(
                    graph, new_key.gamma, new_key.delta, kernel=new_key.kernel
                )

            preserved, invalidated = self.cache.migrate_graph(
                event.graph,
                event.old_version,
                event.new_version,
                event.barrier,
                identical=identical,
                progressive_factory=factory_for,
            )
            event.preserved += preserved
            event.invalidated += invalidated
        if self.metrics is not None:
            self.metrics.observe_mutation(
                event.graph,
                event.new_version,
                invalidated=invalidated,
                preserved=preserved,
                compaction=identical,
            )

    # ------------------------------------------------------------------
    def plan(self, query: QuerySpec) -> QueryPlan:
        """Resolve ``algorithm="auto"`` and classify the dispatch."""
        algorithm = query.resolved_algorithm()
        progressive = algorithm == "localsearch-p"
        if query.algorithm != AUTO:
            reason = "requested explicitly"
        elif progressive:
            reason = (
                "auto: LocalSearch-P is instance-optimal and its "
                "stream resumes, so cached answers extend to larger k"
            )
        else:
            reason = (
                f"auto: resolved to {algorithm!r} by the spec's "
                f"cohesion={query.cohesion!r} / "
                f"containment={query.containment!r}"
            )
        return QueryPlan(algorithm, progressive=progressive, reason=reason)

    # ------------------------------------------------------------------
    def _serve_progressive(
        self, handle: GraphHandle, query: QuerySpec, key: CacheKey
    ) -> Tuple[Tuple[CommunityView, ...], str, bool, Optional[Dict[str, float]]]:
        entry = self.cache.get(key) if self.cache is not None else None
        if not isinstance(entry, ProgressiveEntry):
            cursor_factory = progressive_cursor_factory(
                handle.graph, query.gamma, query.delta, kernel=key.kernel
            )
            entry = ProgressiveEntry(
                cursor_factory(),
                cursor_factory=cursor_factory,
                max_cached_k=(
                    self.cache.max_cached_k if self.cache is not None else None
                ),
            )
            if self.cache is not None:
                self.cache.put(key, entry)
        views, source, complete = entry.serve(query.k)
        # The cursor's stats accumulate phase timings over the family's
        # whole lifetime; snapshot them after the serve so the metrics
        # row carries the cumulative peel/enumerate breakdown.  The
        # cursor is None after k-truncation released it (or for a
        # restored entry that never resumed) — no fresh timing then.
        cursor = entry.cursor
        phases = (
            dict(cursor.searcher.stats.phases)
            if cursor is not None and cursor.searcher.stats.phases
            else None
        )
        return views, source, complete, phases

    def _serve_static(
        self, handle: GraphHandle, query: QuerySpec, key: CacheKey, algorithm: str
    ) -> Tuple[Tuple[CommunityView, ...], str, bool, Optional[Dict[str, float]]]:
        entry = self.cache.get(key) if self.cache is not None else None
        if isinstance(entry, StaticEntry):
            served = entry.serve(query.k)
            if served is not None:
                views, source = served
                complete = entry.complete and query.k >= len(entry.views)
                return views, source, complete, None
        result = _STATIC_RUNNERS[algorithm](handle.graph, query, key.kernel)
        views = tuple(
            CommunityView.from_community(c) for c in result.communities
        )
        stats = getattr(result, "stats", None)
        stats_phases = getattr(stats, "phases", None)
        phases = dict(stats_phases) if stats_phases else None
        complete = len(views) < query.k
        if self.cache is not None:
            self.cache.put(
                key,
                StaticEntry.capped(views, complete, self.cache.max_cached_k),
            )
        return views[: query.k], "cold", complete, phases

    # ------------------------------------------------------------------
    def execute(self, query: Optional[QuerySpec] = None, **params) -> QueryResult:
        """Serve one query end to end.

        Accepts a :class:`QuerySpec` (or the deprecated ``TopKQuery``
        alias) positionally — the stable signature — or spec fields as
        keyword arguments (``execute(graph="email", k=5)``) as a
        convenience.
        """
        if query is None:
            query = QuerySpec(**params)
        elif params:
            raise TypeError(
                "pass either a QuerySpec or field kwargs, not both"
            )
        tracer = self.tracer
        if tracer is None:
            return self._execute(query)
        parent = current_span()
        if parent is NO_TRACE:
            span = None  # upstream sampled this query out
        elif parent is not None:
            span = tracer.start_span("engine", parent)
        else:
            # No serving layer above us: the engine is the edge, and
            # the sampling decision is made (once) here.  Tags attach
            # only after the sampling decision — the unsampled path must
            # not pay for a kwargs dict it will throw away.
            span = tracer.maybe_start("query")
            if span is not None:
                span.annotate(graph=query.graph)
        if span is None:
            return self._execute(query)
        with use_span(span):
            try:
                result = self._execute(query)
            except Exception as exc:
                tracer.end(span, error=type(exc).__name__)
                raise
        tracer.end(
            span,
            graph=query.graph,
            k=query.k,
            gamma=query.gamma,
            algorithm=result.algorithm,
            source=result.source,
            kernel=result.kernel,
            elapsed_ms=round(result.elapsed_ms, 4),
        )
        return result

    def _execute(self, query: QuerySpec) -> QueryResult:
        """Dispatch to the execution body, via the profiler when armed."""
        profiler = self.profiler
        if profiler is not None:
            return profiler.profile_call(self._execute_impl, query)
        return self._execute_impl(query)

    def _execute_impl(self, query: QuerySpec) -> QueryResult:
        """The untraced execution body (plan → cache → run → record)."""
        started = time.perf_counter()
        # ONE handle read per query: graph, version, cache key and the
        # result's graph_version all derive from this single immutable
        # reference, so a concurrent mutation/compaction flip can never
        # produce a mixed-version answer (the flip only swaps the
        # entry's handle reference; this one stays pinned).
        handle = self.registry.get(query.graph)
        plan = self.plan(query)
        # The spec's canonical cache identity: resolved algorithm plus
        # the peel kernel in effect for this query (None for algorithms
        # that never reach the kernel dispatcher), so cached answers and
        # their kernel provenance can never cross kernels.
        key = CacheKey.for_spec(query, handle.version)
        kernel = key.kernel
        if plan.progressive:
            views, source, complete, phases = self._serve_progressive(
                handle, query, key
            )
        else:
            views, source, complete, phases = self._serve_static(
                handle, query, key, plan.algorithm
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if self.cache is not None:
            self.cache.record(source)
        if self.metrics is not None:
            self.metrics.observe_query(
                plan.algorithm,
                elapsed_ms,
                source,
                kernel=kernel,
                # The cache key already carries the resolved family
                # fields; rebuilding the FamilyKey from it skips a
                # second kernel/algorithm resolution on the hot path.
                family=FamilyKey(
                    graph=key.graph,
                    gamma=key.gamma,
                    algorithm=key.algorithm,
                    delta=key.delta,
                    kernel=key.kernel,
                ),
                phases=phases,
            )
        return QueryResult(
            query=query,
            algorithm=plan.algorithm,
            graph_version=handle.version,
            communities=views,
            source=source,
            elapsed_ms=elapsed_ms,
            complete=complete,
            plan_reason=plan.reason,
            kernel=kernel,
        )
