"""ServiceShell — the `repro serve` line-protocol loop.

A dependency-free serving frontend: one command per line on an input
stream, human-readable responses on an output stream.  The same loop
serves an interactive REPL (stdin on a TTY), a piped script, or a test
feeding a ``StringIO`` — no network stack required, while exercising the
full service stack (registry -> planner -> cache -> sessions -> metrics)
exactly as a socket server would.

Protocol (one command per line; ``key=value`` arguments in any order)::

    graphs
    load NAME EDGES_FILE [WEIGHTS_FILE]
    mutate GRAPH insert=U:V delete=U:V reweight=V:W ...
    query GRAPH [k=10] [gamma=10] [algorithm=auto] [delta=2.0] [members]
    session open GRAPH [gamma=10] [delta=2.0]
    session next SID [N]
    session close SID
    sessions
    metrics
    help
    quit
"""

from __future__ import annotations

import json
import shlex
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from ..api.spec import QuerySpec, parse_spec_tokens, parse_wire_query
from ..errors import QueryParameterError, ReproError
from ..obs.trace import Tracer, format_trace, format_trace_line
from .engine import QueryEngine
from .metrics import ServiceMetrics
from .model import CommunityView, QueryResult
from .sessions import SessionManager

__all__ = ["ServiceShell", "render_metrics", "parse_mutation_ops"]

_HELP = """\
commands:
  graphs                                list registered graphs
  load NAME EDGES [WEIGHTS]             register an edge-list file
  mutate GRAPH insert=U:V delete=U:V reweight=V:W ...
                                        apply a live edge-mutation batch
  query GRAPH [k=N] [gamma=N] [algorithm=A] [delta=F] [kernel=K]
        [cohesion=core|truss] [containment=BOOL] [members] [json]
  query {"v": 1, "graph": ...}          versioned wire-JSON query
  session open GRAPH [gamma=N] [delta=F]
  session next SID [N]                  stream the next N communities
  session close SID
  sessions                              list active sessions
  metrics [json]                        service counters and latencies
                                        (one JSON document with 'json')
  trace [slow] [json] [ID] [limit=N]    recent (or slow / one) traces
  profile [seconds=N] [top=N]           cProfile the live engine for N s
  help                                  this text
  quit                                  close this connection / loop
  shutdown                              stop the whole server gracefully\
"""


def render_metrics(snap: Dict) -> List[str]:
    """The ``metrics`` command's text rendering of one snapshot.

    Shared verbatim by the shell command and the ``repro metrics`` CLI
    client (which fetches the same snapshot over ``/metrics.json``), so
    the two frontends can never drift apart.
    """
    lines: List[str] = []
    lines.append(f"queries_served: {snap['queries_served']}")
    lines.append(f"cache_hit_rate: {snap['cache_hit_rate']:.3f}")
    for source, count in sorted(snap["by_source"].items()):
        lines.append(f"source[{source}]: {count}")
    for kernel, count in sorted(snap.get("by_kernel", {}).items()):
        lines.append(f"kernel[{kernel}]: {count}")
    for backend, count in sorted(snap.get("by_backend", {}).items()):
        lines.append(f"backend[{backend}]: {count}")
    for algo, pcts in sorted(snap["latency_ms"].items()):
        rendered = ", ".join(
            f"{name}={value:.3f}ms" if value is not None else f"{name}=–"
            for name, value in pcts.items()
        )
        lines.append(f"latency[{algo}]: {rendered}")
    for family, row in sorted(snap.get("by_family", {}).items()):
        p50, p95 = row.get("p50_ms"), row.get("p95_ms")
        lines.append(
            f"family[{family}]: queries={row['queries']} "
            f"hit_rate={row['hit_rate']:.3f} "
            + (f"p50={p50:.3f}ms " if p50 is not None else "p50=– ")
            + (f"p95={p95:.3f}ms" if p95 is not None else "p95=–")
        )
    lines.append(
        f"sessions: opened={snap['sessions_opened']} "
        f"closed={snap['sessions_closed']} "
        f"expired={snap['sessions_expired']}"
    )
    server = snap.get("server") or {}
    if server.get("connections_opened") or server.get("batches"):
        lines.append(
            f"connections: opened={server['connections_opened']} "
            f"closed={server['connections_closed']}"
        )
        lines.append(
            f"batches: {server['batches']} "
            f"(queries={server['batched_queries']}, "
            f"max_width={server['max_batch_width']}, "
            f"coalesce_rate={server['coalesce_rate']:.3f})"
        )
        lines.append(
            f"queue_depth: now={server['queue_depth']} "
            f"peak={server['queue_depth_peak']}"
        )
        if server.get("replica_idle_dispatches"):
            lines.append(
                "replica_idle_dispatches: "
                f"{server['replica_idle_dispatches']}"
            )
    live = snap.get("live") or {}
    if live.get("mutations_applied") or live.get("compactions"):
        lines.append(
            f"mutations: applied={live['mutations_applied']} "
            f"compactions={live['compactions']} "
            f"invalidated={live['families_invalidated']} "
            f"preserved={live['families_preserved']}"
        )
        for graph, generation in sorted(
            (live.get("graph_generation") or {}).items()
        ):
            lines.append(f"generation[{graph}]: v{generation}")
    cluster = snap.get("cluster") or {}
    if cluster.get("by_worker") or cluster.get("worker_restarts"):
        for worker, count in sorted(cluster["by_worker"].items()):
            depth = cluster.get("queue_depth", {}).get(worker, 0)
            lines.append(
                f"cluster[{worker}]: dispatches={count} depth={depth}"
            )
        attaches = ", ".join(
            f"{mode}={count}"
            for mode, count in sorted(cluster["segment_attaches"].items())
        )
        lines.append(
            f"cluster: attaches=({attaches or 'none'}) "
            f"restarts={cluster['worker_restarts']} "
            f"depth_peak={cluster['queue_depth_peak']}"
        )
    control = snap.get("control") or {}
    if control.get("decisions") or control.get("admission_rejected"):
        for policy, count in sorted(
            (control.get("decisions") or {}).items()
        ):
            lines.append(f"control[{policy}]: decisions={count}")
        for tenant, count in sorted(
            (control.get("admission_rejected") or {}).items()
        ):
            lines.append(f"admission[{tenant}]: rejected={count}")
    return lines


def _mutation_label(text: str):
    """Vertex labels in mutate ops: int when it parses, else string
    (matching the loader's labelling of edge-list files)."""
    try:
        return int(text)
    except ValueError:
        return text


def parse_mutation_ops(tokens: Sequence[str]) -> List[Tuple]:
    """Parse ``insert=U:V`` / ``delete=U:V`` / ``reweight=V:W`` tokens
    into label-level op tuples (the shared grammar of the shell's
    ``mutate`` command and the ``repro mutate`` CLI)."""
    usage = "want insert=U:V, delete=U:V, or reweight=V:W"
    ops: List[Tuple] = []
    for token in tokens:
        kind, sep, value = token.partition("=")
        left, sep2, right = value.partition(":")
        if not sep or not sep2 or kind not in (
            "insert", "delete", "reweight"
        ):
            raise QueryParameterError(f"bad mutation op {token!r} ({usage})")
        if kind == "reweight":
            try:
                weight = float(right)
            except ValueError as exc:
                raise QueryParameterError(
                    f"bad reweight value in {token!r}"
                ) from exc
            ops.append((kind, _mutation_label(left), weight))
        else:
            ops.append((kind, _mutation_label(left), _mutation_label(right)))
    return ops


def _parse_kv(tokens: List[str]) -> Tuple[Dict[str, str], List[str]]:
    """Split tokens into ``key=value`` pairs and bare flags."""
    kv: Dict[str, str] = {}
    flags: List[str] = []
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            kv[key] = value
        else:
            flags.append(token)
    return kv, flags


class ServiceShell:
    """Drive a :class:`QueryEngine` + :class:`SessionManager` over text.

    ``on_shutdown`` is the hook behind the ``shutdown`` command: the
    asyncio server passes a (thread-safe) callback requesting a graceful
    whole-server stop, so the same command dispatch serves stdio and
    network transports without anyone calling ``sys.exit`` mid-loop.
    """

    def __init__(
        self,
        engine: QueryEngine,
        sessions: SessionManager,
        out: TextIO,
        metrics: Optional[ServiceMetrics] = None,
        prompt: str = "",
        on_shutdown: Optional[Callable[[], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.sessions = sessions
        self.out = out
        self.metrics = metrics if metrics is not None else engine.metrics
        self.prompt = prompt
        self.on_shutdown = on_shutdown
        self.tracer = tracer if tracer is not None else engine.tracer

    # ------------------------------------------------------------------
    @staticmethod
    def parse_query(tokens: Sequence[str]) -> Tuple[QuerySpec, bool, bool]:
        """Deprecated 3-tuple shim: ``(QuerySpec, members, json)``.

        The shared grammar now lives in
        :func:`repro.api.spec.parse_spec_tokens`, which folds the
        response mode into ``spec.mode``; this wrapper keeps the
        pre-PR-4 3-tuple shape for callers that still unpack it.
        """
        spec, members = parse_spec_tokens(tokens)
        return spec, members, spec.mode == "json"

    @staticmethod
    def parse_query_line(rest: str) -> Tuple[QuerySpec, bool]:
        """Parse everything after ``query ``: ``(QuerySpec, members)``.

        Accepts both request shapes every frontend shares: the
        ``key=value`` token grammar, and — when the remainder opens a
        JSON object — the versioned wire document consumed by
        :func:`repro.api.spec.parse_wire_query`.
        """
        if rest.lstrip().startswith("{"):
            return parse_wire_query(rest)
        try:
            tokens = shlex.split(rest, comments=True)
        except ValueError as exc:
            raise QueryParameterError(str(exc)) from exc
        return parse_spec_tokens(tokens)

    @staticmethod
    def format_views(
        views: Sequence[CommunityView], members: bool, start: int = 1
    ) -> List[str]:
        """Render community views as protocol lines."""
        lines: List[str] = []
        for i, view in enumerate(views, start=start):
            lines.append(
                f"top-{i}: influence={view.influence:.8g} "
                f"keynode={view.keynode} size={view.size}"
            )
            if members:
                lines.append(
                    "       members: "
                    + ", ".join(str(v) for v in view.members)
                )
        return lines

    @classmethod
    def render_result(
        cls, result: QueryResult, members: bool, as_json: bool = False
    ) -> List[str]:
        """Render one served query exactly as the ``query`` command does.

        With ``as_json`` the response is a single deterministic JSON
        line (the structured wire mode shared by the stdio shell and
        the network transport).
        """
        if as_json:
            return [result.to_json(include_members=members)]
        header = (
            f"{result.algorithm}[{result.source}]: "
            f"{len(result.communities)} communities "
            f"(k={result.query.k}, gamma={result.query.gamma}) "
            f"in {result.elapsed_ms:.2f} ms"
        )
        return [header] + cls.format_views(list(result.communities), members)

    # ------------------------------------------------------------------
    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _print_views(
        self, views: List[CommunityView], members: bool, start: int = 1
    ) -> None:
        for line in self.format_views(views, members, start=start):
            self._print(line)

    # ------------------------------------------------------------------
    def _cmd_graphs(self, tokens: List[str]) -> None:
        for row in self.engine.registry.describe():
            status = (
                f"loaded v{row['version']} "
                f"({row['vertices']:,} vertices, {row['edges']:,} edges)"
                if row["loaded"]
                else "not loaded"
            )
            self._print(f"{row['name']:>14}: {status} — {row['description']}")

    def _cmd_load(self, tokens: List[str]) -> None:
        if not 2 <= len(tokens) <= 3:
            raise QueryParameterError(
                "usage: load NAME EDGES_FILE [WEIGHTS_FILE]"
            )
        name, edges = tokens[0], tokens[1]
        weights = tokens[2] if len(tokens) == 3 else None
        self.engine.registry.register_edge_list(
            name, edges, weights, replace=True
        )
        handle = self.engine.registry.get(name)
        self._print(
            f"loaded {name!r} v{handle.version}: "
            f"{handle.num_vertices:,} vertices, {handle.num_edges:,} edges"
        )

    def _cmd_mutate(self, tokens: List[str]) -> None:
        if len(tokens) < 2:
            raise QueryParameterError(
                "usage: mutate GRAPH insert=U:V delete=U:V reweight=V:W ..."
            )
        name = tokens[0]
        ops = parse_mutation_ops(tokens[1:])
        apply_ops = getattr(self.engine.registry, "apply", None)
        if apply_ops is None:
            raise QueryParameterError(
                "this registry does not support live mutations"
            )
        event = apply_ops(name, ops)
        stats = event.stats
        changed = (
            f"+{stats.inserted} -{stats.deleted} ~{stats.reweighted}"
            if stats is not None
            else "?"
        )
        barrier = (
            f"{event.barrier:.8g}"
            if event.barrier != float("-inf")
            else "none"
        )
        self._print(
            f"mutated {name!r} v{event.old_version} -> v{event.new_version}: "
            f"{changed} (noops={stats.noops if stats else 0}) "
            f"barrier={barrier} "
            f"invalidated={event.invalidated} preserved={event.preserved} "
            f"pending_deltas={event.pending_deltas}"
        )

    def _cmd_query(self, rest: str) -> None:
        spec, members = self.parse_query_line(rest)
        result = self.engine.execute(spec)
        for line in self.render_result(result, members, spec.mode == "json"):
            self._print(line)

    def _cmd_session(self, tokens: List[str]) -> None:
        if not tokens:
            raise QueryParameterError(
                "usage: session open|next|close|... (see help)"
            )
        action, rest = tokens[0], tokens[1:]
        if action == "open":
            if not rest:
                raise QueryParameterError(
                    "usage: session open GRAPH [gamma=N] [delta=F]"
                )
            kv, flags = _parse_kv(rest[1:])
            unknown = flags + [
                key for key in kv if key not in ("gamma", "delta")
            ]
            if unknown:
                raise QueryParameterError(
                    f"unknown session argument(s): {', '.join(unknown)}"
                )
            session = self.sessions.create(
                rest[0],
                gamma=int(kv.get("gamma", "10")),
                delta=float(kv.get("delta", "2.0")),
            )
            self._print(
                f"session {session.session_id} open: graph={session.graph} "
                f"gamma={session.gamma}"
            )
        elif action == "next":
            if not rest:
                raise QueryParameterError("usage: session next SID [N]")
            count = int(rest[1]) if len(rest) > 1 else 1
            session = self.sessions.get(rest[0])
            start = session.delivered
            views, done = self.sessions.next(rest[0], count)
            self._print_views(views, False, start=start + 1)
            if done:
                self._print(f"(session {rest[0]} exhausted)")
        elif action == "close":
            if not rest:
                raise QueryParameterError("usage: session close SID")
            self.sessions.close(rest[0])
            self._print(f"session {rest[0]} closed")
        else:
            raise QueryParameterError(
                f"unknown session action {action!r} (open/next/close)"
            )

    def _cmd_sessions(self, tokens: List[str]) -> None:
        rows = self.sessions.active()
        if not rows:
            self._print("(no active sessions)")
        for row in rows:
            self._print(
                f"{row['session_id']}: graph={row['graph']} "
                f"gamma={row['gamma']} delivered={row['delivered']} "
                f"exhausted={row['exhausted']}"
            )

    def _cmd_metrics(self, tokens: List[str]) -> None:
        if self.metrics is None:
            self._print("(metrics disabled)")
            return
        unknown = [token for token in tokens if token != "json"]
        if unknown:
            raise QueryParameterError(
                f"unknown metrics argument(s): {', '.join(unknown)} "
                "(usage: metrics [json])"
            )
        snap = self.metrics.snapshot()
        if "json" in tokens:
            # One deterministic document — the structured twin of the
            # text rendering below, for programmatic scrapers.
            self._print(json.dumps(snap, sort_keys=True, default=str))
            return
        for line in render_metrics(snap):
            self._print(line)

    def _cmd_profile(self, tokens: List[str]) -> None:
        """``profile [seconds=N] [top=N]`` — capture a cProfile window."""
        profiler = getattr(self.engine, "profiler", None)
        if profiler is None:
            self._print(
                "(profiling disabled — serve with --metrics-port or "
                "--trace-sample)"
            )
            return
        kv, flags = _parse_kv(tokens)
        unknown = flags + [key for key in kv if key not in ("seconds", "top")]
        if unknown:
            raise QueryParameterError(
                f"unknown profile argument(s): {', '.join(unknown)} "
                "(usage: profile [seconds=N] [top=N])"
            )
        try:
            seconds = float(kv.get("seconds", "5"))
            top = int(kv.get("top", "25"))
        except ValueError as exc:
            raise QueryParameterError(str(exc)) from exc
        try:
            report = profiler.capture(seconds, top=top)
        except Exception as exc:
            # ProfileBusyError (and bad-window ValueError) both render
            # as protocol errors; the capture slot stays usable.
            raise QueryParameterError(str(exc)) from exc
        for line in report.rstrip("\n").split("\n"):
            self._print(line)

    def _cmd_trace(self, tokens: List[str]) -> None:
        """``trace [slow] [json] [ID] [limit=N]`` — inspect the trace rings."""
        tracer = self.tracer
        if tracer is None or tracer.store is None:
            self._print("(tracing disabled — serve with --trace-sample)")
            return
        store = tracer.store
        kv, flags = _parse_kv(tokens)
        unknown = [key for key in kv if key != "limit"]
        if unknown:
            raise QueryParameterError(
                f"unknown trace argument(s): {', '.join(unknown)} "
                "(usage: trace [slow] [json] [ID] [limit=N])"
            )
        as_json = "json" in flags
        slow = "slow" in flags
        trace_id = next(
            (f for f in flags if f not in ("json", "slow")), None
        )
        try:
            limit = int(kv.get("limit", "20"))
        except ValueError as exc:
            raise QueryParameterError("limit must be an integer") from exc
        if trace_id is not None:
            trace = store.get(trace_id)
            if trace is None:
                raise QueryParameterError(f"no trace {trace_id!r} retained")
            if as_json:
                self._print(json.dumps(trace, sort_keys=True, default=str))
            else:
                for rendered in format_trace(trace):
                    self._print(rendered)
            return
        traces = store.slow(limit) if slow else store.recent(limit)
        if as_json:
            self._print(json.dumps(traces, sort_keys=True, default=str))
            return
        if not traces:
            hint = (
                ""
                if tracer.sampling
                else " — sampling is off; serve with --trace-sample"
            )
            self._print(f"(no {'slow ' if slow else ''}traces retained{hint})")
            return
        for trace in traces:
            self._print(format_trace_line(trace))

    # ------------------------------------------------------------------
    def execute_line(self, line: str) -> bool:
        """Run one protocol line; returns False when the loop should end."""
        # ``query`` takes its raw remainder (not pre-tokenized): a wire-
        # JSON payload contains spaces and quotes that shlex would eat.
        # split() (not partition) so any whitespace separates the verb.
        parts = line.strip().split(maxsplit=1)
        head = parts[0] if parts else ""
        remainder = parts[1] if len(parts) > 1 else ""
        if head.lower() == "query":
            try:
                self._cmd_query(remainder)
            except (ReproError, ValueError, OSError) as exc:
                if self.metrics is not None:
                    self.metrics.observe_error(kind=type(exc).__name__)
                self._print(f"error: {exc}")
            return True
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            self._print(f"error: {exc}")
            return True
        if not tokens:
            return True
        command, rest = tokens[0].lower(), tokens[1:]
        if command in ("quit", "exit"):
            return False
        if command == "shutdown":
            self._print("shutting down")
            if self.on_shutdown is not None:
                self.on_shutdown()
            return False
        handler = {
            "graphs": self._cmd_graphs,
            "load": self._cmd_load,
            "mutate": self._cmd_mutate,
            "session": self._cmd_session,
            "sessions": self._cmd_sessions,
            "metrics": self._cmd_metrics,
            "trace": self._cmd_trace,
            "profile": self._cmd_profile,
            "help": lambda _tokens: self._print(_HELP),
        }.get(command)
        if handler is None:
            self._print(
                f"error: unknown command {command!r} (try 'help')"
            )
            return True
        try:
            handler(rest)
        except (ReproError, ValueError, OSError) as exc:
            if self.metrics is not None:
                self.metrics.observe_error(kind=type(exc).__name__)
            self._print(f"error: {exc}")
        return True

    def run(self, in_stream) -> int:
        """Serve until ``quit``/``shutdown`` or end of input.

        EOF on the input stream and a vanished peer (broken pipe /
        connection reset / a stream closed under us) all end the loop
        cleanly with exit code 0 — a piped client hanging up is a normal
        way for a serving process to stop, not a crash.
        """
        try:
            self._print(
                f"repro service: {len(self.engine.registry.names())} graphs "
                "registered; type 'help' for the protocol"
            )
            while True:
                if self.prompt:
                    self.out.write(self.prompt)
                    self.out.flush()
                line = in_stream.readline()
                if not line:
                    break
                if not self.execute_line(line):
                    break
        except (BrokenPipeError, ConnectionResetError):
            return 0
        except ValueError:
            # "I/O operation on closed file": the in/out stream was
            # closed mid-loop (e.g. the transport tearing down).
            return 0
        return 0
