"""GraphRegistry — long-lived, versioned, thread-safe graph handles.

The CLI's one-shot ``query`` rebuilds its graph on every invocation; a
serving layer must pay graph construction **once** and share the built
graph across many concurrent queries.  The registry maps names to lazy
loaders (the Table-1 stand-in datasets are pre-registered; edge-list
files can be added at runtime), builds each graph at most once under a
per-entry lock — two registry clients asking for *different* graphs
build concurrently, two asking for the *same* graph share one build —
and hands out immutable :class:`GraphHandle` objects.

Every (re)build bumps the entry's **version**.  Handles carry the
version, and the result cache keys on it, so ``reload``/``evict``
invalidate stale cached answers for free: the old version's keys simply
stop being generated.

``repro.live`` extends the same versioning to **streaming mutations**:
:meth:`GraphRegistry.apply` runs an
:class:`~repro.graph.delta.EdgeBatch` through
:func:`~repro.graph.delta.apply_batch`, producing a new overlay
generation and atomically flipping the handle (one reference write —
readers still never see a mixed graph/version pair).  Applied batches
accumulate as a **delta chain** so cluster workers holding the previous
generation can catch up by replaying batches over their attached CSR
instead of re-attaching a whole segment; a background **compactor**
folds the overlay chain into a fresh flat CSR generation (and, via the
build hooks, a fresh shared-memory segment generation) once the chain
grows past ``compact_after``.  Mutation hooks — distinct from build
hooks — let the service layer migrate caches scope-invalidated by the
batch's barrier weight instead of dropping them wholesale.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import UnknownGraphError
from ..graph.delta import EdgeBatch, MutationStats, apply_batch
from ..graph.io import load_snap_graph
from ..graph.weighted_graph import WeightedGraph
from ..workloads.datasets import dataset_names, load_dataset

__all__ = ["GraphHandle", "GraphRegistry", "MutationEvent"]


@dataclass(frozen=True)
class GraphHandle:
    """An immutable, pinned reference to one built graph."""

    name: str
    version: int
    graph: WeightedGraph

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


@dataclass
class MutationEvent:
    """What one :meth:`GraphRegistry.apply` (or compaction) did.

    Mutation hooks receive the event *mutably*: the cache-migration
    hook adds its ``preserved``/``invalidated`` counts so the caller
    (shell, CLI, bench) can report the full outcome of the flip.
    """

    graph: str
    old_version: int
    new_version: int
    #: ``"mutate"`` for an applied batch, ``"compact"`` for a fold.
    kind: str
    #: Largest weight whose threshold subgraph may have changed
    #: (``-inf`` for no-ops and compactions: content is identical).
    barrier: float
    handle: GraphHandle
    batch: Optional[EdgeBatch] = None
    stats: Optional[MutationStats] = None
    #: Length of the delta chain after this event.
    pending_deltas: int = 0
    #: Filled in by the cache-migration mutation hook.
    invalidated: int = 0
    preserved: int = 0


@dataclass
class _Entry:
    loader: Callable[[], WeightedGraph]
    description: str = ""
    #: The current (graph, version) pair as ONE immutable reference, so
    #: lock-free readers can never observe a graph/version mismatch
    #: across a concurrent reload.
    handle: Optional[GraphHandle] = None
    version: int = 0
    build_seconds: float = 0.0
    csr_seconds: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Batches applied since the last flat generation, as
    #: ``(version_after, batch)`` pairs — the worker catch-up chain.
    deltas: List[Tuple[int, EdgeBatch]] = field(default_factory=list)
    #: Guards against stacking background compaction threads.
    compacting: bool = False


class GraphRegistry:
    """Named graphs behind lazy, versioned, thread-safe handles.

    Parameters
    ----------
    preload_datasets:
        When true (the default) every stand-in dataset of
        :mod:`repro.workloads.datasets` is registered (lazily — nothing
        is built until first use).
    prebuild_csr:
        When true (the default) every graph build also flattens the
        adjacency into its :class:`~repro.graph.csr.CSRAdjacency` mirror
        (including the kernel-side derived views), so the first query
        against a freshly-loaded graph pays no flattening cost and
        every :class:`~repro.server.shards.ShardPool` replica shares the
        same immutable buffers.
    compact_after:
        Fold the delta-overlay chain into a fresh flat CSR generation
        (in a background thread) once this many mutation batches have
        accumulated on one graph.  ``None`` disables automatic
        compaction; :meth:`compact` stays available for explicit use.
    """

    def __init__(
        self,
        preload_datasets: bool = True,
        prebuild_csr: bool = True,
        compact_after: Optional[int] = 8,
    ) -> None:
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self._builds = 0
        self._mutations = 0
        self._compactions = 0
        self._prebuild_csr = prebuild_csr
        self._compact_after = compact_after
        self._build_hooks: List[Callable[[GraphHandle], None]] = []
        self._mutation_hooks: List[Callable[[MutationEvent], None]] = []
        if preload_datasets:
            for name in dataset_names():
                self.register(
                    name,
                    (lambda n=name: load_dataset(n)),
                    description=f"stand-in dataset {name!r}",
                )

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        loader: Callable[[], WeightedGraph],
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a lazy loader under ``name``.

        Re-registering an existing name requires ``replace=True`` and
        keeps the version counter monotone (cached results for the old
        definition stay invalid).
        """
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None and not replace:
                raise ValueError(
                    f"graph {name!r} is already registered "
                    "(pass replace=True to overwrite)"
                )
            entry = _Entry(loader=loader, description=description)
            if existing is not None:
                entry.version = existing.version
            self._entries[name] = entry

    def register_edge_list(
        self,
        name: str,
        edges_path: str,
        weights_path: Optional[str] = None,
        replace: bool = False,
    ) -> None:
        """Register a SNAP-style edge-list file (PageRank weights if none)."""
        self.register(
            name,
            lambda: load_snap_graph(edges_path, weights_path),
            description=f"edge list {edges_path!r}",
            replace=replace,
        )

    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownGraphError(name, available=self._entries)
            return entry

    def _build(self, name: str, entry: _Entry) -> GraphHandle:
        """Run the loader and publish a fresh handle (entry.lock held)."""
        started = time.perf_counter()
        graph = entry.loader()
        entry.build_seconds = time.perf_counter() - started
        if self._prebuild_csr:
            # Flatten eagerly (CSR + the list mirrors the stdlib kernel
            # iterates) so first-query latency is flat; the numpy views
            # are zero-copy and materialise on first vectorised peel.
            started = time.perf_counter()
            graph.csr().lists()
            entry.csr_seconds = time.perf_counter() - started
        entry.version += 1
        entry.deltas.clear()  # a loader build is a fresh flat generation
        entry.handle = GraphHandle(name, entry.version, graph)
        with self._lock:
            self._builds += 1
            hooks = list(self._build_hooks)
        for hook in hooks:
            # Build hooks are optimisations layered on top (segment
            # publication for the cluster tier, pre-warming): they run
            # right next to the prebuild_csr step, but a failing hook
            # must never fail the build itself.
            try:
                hook(entry.handle)
            except Exception:  # noqa: BLE001 — hooks are best-effort
                pass
        return entry.handle

    # ------------------------------------------------------------------
    def add_build_hook(self, hook: Callable[[GraphHandle], None]) -> None:
        """Call ``hook(handle)`` after every (re)build, best-effort.

        The cluster tier registers its shared-memory segment publication
        here, so a graph's CSR is staged for worker attachment the
        moment it is built — the same eager spot as ``prebuild_csr``.
        """
        with self._lock:
            self._build_hooks.append(hook)

    def remove_build_hook(self, hook: Callable[[GraphHandle], None]) -> None:
        """Deregister a build hook (no-op when absent)."""
        with self._lock:
            if hook in self._build_hooks:
                self._build_hooks.remove(hook)

    def add_mutation_hook(
        self, hook: Callable[[MutationEvent], None]
    ) -> None:
        """Call ``hook(event)`` after every mutation *and* compaction.

        Distinct from build hooks on purpose: a mutation flips the
        handle to an overlay generation that workers catch up to by
        replaying the delta chain — publishing a whole shared-memory
        segment per batch would defeat the overlay.  Only compaction
        (which produces a flat CSR worth sharing) additionally fires
        the build hooks.  The service layer registers its scoped cache
        migration here.  Hooks are best-effort, like build hooks.
        """
        with self._lock:
            self._mutation_hooks.append(hook)

    def remove_mutation_hook(
        self, hook: Callable[[MutationEvent], None]
    ) -> None:
        """Deregister a mutation hook (no-op when absent)."""
        with self._lock:
            if hook in self._mutation_hooks:
                self._mutation_hooks.remove(hook)

    def _fire_mutation_hooks(self, event: MutationEvent) -> None:
        with self._lock:
            hooks = list(self._mutation_hooks)
        for hook in hooks:
            try:
                hook(event)
            except Exception:  # noqa: BLE001 — hooks are best-effort
                pass

    # ------------------------------------------------------------------
    # streaming mutations (repro.live)
    # ------------------------------------------------------------------
    def apply(self, name: str, batch) -> MutationEvent:
        """Apply an edge batch and atomically flip to the new generation.

        ``batch`` is an :class:`~repro.graph.delta.EdgeBatch` (or a
        plain iterable of op tuples).  The version bumps even for a
        no-op batch — version monotonicity is what downstream cache /
        worker state keys on, and a no-op flip migrates everything
        (barrier ``-inf``) so it costs nothing warm.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(tuple(batch))
        entry = self._entry(name)
        with entry.lock:
            handle = entry.handle
            if handle is None:
                handle = self._build(name, entry)
            new_graph, barrier, stats = apply_batch(handle.graph, batch)
            old_version = entry.version
            entry.version += 1
            new_handle = GraphHandle(name, entry.version, new_graph)
            # The atomic flip: one reference write, same as a rebuild.
            entry.handle = new_handle
            entry.deltas.append((entry.version, batch))
            pending = len(entry.deltas)
        with self._lock:
            self._mutations += 1
        event = MutationEvent(
            graph=name,
            old_version=old_version,
            new_version=new_handle.version,
            kind="mutate",
            barrier=barrier,
            handle=new_handle,
            batch=batch,
            stats=stats,
            pending_deltas=pending,
        )
        self._fire_mutation_hooks(event)
        self._maybe_compact(name, entry)
        return event

    def delta_chain(
        self, name: str, from_version: int, to_version: int
    ) -> Optional[List[EdgeBatch]]:
        """The batches that turn generation ``from_version`` into
        ``to_version``, or ``None`` when the chain does not cover the
        gap (a compaction or rebuild happened in between — the caller
        must fall back to a full attach).
        """
        entry = self._entry(name)
        with entry.lock:
            window = [
                (v, b)
                for v, b in entry.deltas
                if from_version < v <= to_version
            ]
        versions = [v for v, _ in window]
        if versions != list(range(from_version + 1, to_version + 1)):
            return None
        return [b for _, b in window]

    def pending_deltas(self, name: str) -> int:
        """Length of the delta chain since the last flat generation."""
        entry = self._entry(name)
        with entry.lock:
            return len(entry.deltas)

    def compact(self, name: str) -> Optional[MutationEvent]:
        """Fold the overlay chain into a fresh flat CSR generation.

        Returns ``None`` when there is nothing to fold.  The new
        generation's content is **identical** to the current one —
        only the representation changes — so the event carries barrier
        ``-inf`` and every cached family migrates warm.  Build hooks
        fire afterwards, publishing the new shared-memory segment
        generation for the cluster tier.
        """
        entry = self._entry(name)
        with entry.lock:
            handle = entry.handle
            if handle is None or not entry.deltas:
                return None
            started = time.perf_counter()
            graph = handle.graph
            csr = graph.csr()
            if hasattr(csr, "materialize"):
                flat = csr.materialize()
                new_graph = WeightedGraph.__new__(WeightedGraph)
                new_graph._weights = graph._weights
                new_graph._adj_up = graph._adj_up
                new_graph._adj_down = graph._adj_down
                new_graph._labels = graph._labels
                new_graph._rank_of = graph._rank_of
                new_graph._num_edges = graph._num_edges
                new_graph._prefix_sizes = graph._prefix_sizes
                new_graph._csr = flat
            else:
                # Already flat (reweight-only chain or a re-rank
                # rebuild): reuse the graph, just cut the chain over.
                new_graph = graph
            if self._prebuild_csr:
                new_graph.csr().lists()
            old_version = entry.version
            entry.version += 1
            new_handle = GraphHandle(name, entry.version, new_graph)
            entry.handle = new_handle
            entry.deltas.clear()
            entry.csr_seconds = time.perf_counter() - started
        with self._lock:
            self._compactions += 1
            build_hooks = list(self._build_hooks)
        event = MutationEvent(
            graph=name,
            old_version=old_version,
            new_version=new_handle.version,
            kind="compact",
            barrier=float("-inf"),
            handle=new_handle,
        )
        self._fire_mutation_hooks(event)
        for hook in build_hooks:
            try:
                hook(new_handle)
            except Exception:  # noqa: BLE001 — hooks are best-effort
                pass
        return event

    def _maybe_compact(self, name: str, entry: _Entry) -> None:
        threshold = self._compact_after
        if threshold is None:
            return
        with entry.lock:
            if entry.compacting or len(entry.deltas) < threshold:
                return
            entry.compacting = True
        thread = threading.Thread(
            target=self._compact_entry,
            args=(name, entry),
            daemon=True,
            name=f"repro-compact-{name}",
        )
        thread.start()

    def _compact_entry(self, name: str, entry: _Entry) -> None:
        try:
            self.compact(name)
        except Exception:  # noqa: BLE001 — background fold is best-effort
            pass
        finally:
            entry.compacting = False

    def get(self, name: str) -> GraphHandle:
        """A handle to the built graph, building it (once) if needed."""
        entry = self._entry(name)
        # Single reference read: a concurrent reload can never yield a
        # mismatched (graph, version) pair.
        handle = entry.handle
        if handle is not None:
            return handle
        # Build outside the registry lock, under the entry's own lock, so
        # concurrent loads of different graphs do not serialise.
        with entry.lock:
            if entry.handle is None:
                return self._build(name, entry)
            return entry.handle

    def reload(self, name: str) -> GraphHandle:
        """Force a rebuild and bump the version (invalidates caches)."""
        entry = self._entry(name)
        with entry.lock:
            return self._build(name, entry)

    def evict(self, name: str) -> None:
        """Drop the built graph (the loader stays; next get() rebuilds)."""
        entry = self._entry(name)
        with entry.lock:
            entry.handle = None

    def unregister(self, name: str) -> None:
        """Remove ``name`` entirely."""
        with self._lock:
            if name not in self._entries:
                raise UnknownGraphError(name, available=self._entries)
            del self._entries[name]

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        with self._lock:
            return list(self._entries)

    def is_loaded(self, name: str) -> bool:
        """True when the graph is currently built and pinned in memory."""
        return self._entry(name).handle is not None

    def version(self, name: str) -> int:
        """Current version (0 = never built)."""
        return self._entry(name).version

    @property
    def builds(self) -> int:
        """Total number of graph builds performed (load + reload)."""
        with self._lock:
            return self._builds

    @property
    def mutations(self) -> int:
        """Total number of mutation batches applied."""
        with self._lock:
            return self._mutations

    @property
    def compactions(self) -> int:
        """Total number of delta-chain folds performed."""
        with self._lock:
            return self._compactions

    def describe(self) -> List[Dict[str, object]]:
        """One status row per registered graph (for `graphs` in the shell)."""
        rows: List[Dict[str, object]] = []
        with self._lock:
            items = list(self._entries.items())
        for name, entry in items:
            handle = entry.handle
            row: Dict[str, object] = {
                "name": name,
                "description": entry.description,
                "loaded": handle is not None,
                "version": entry.version,
            }
            if handle is not None:
                row["vertices"] = handle.num_vertices
                row["edges"] = handle.num_edges
                row["build_seconds"] = entry.build_seconds
                row["csr_seconds"] = entry.csr_seconds
                row["pending_deltas"] = len(entry.deltas)
            rows.append(row)
        return rows
