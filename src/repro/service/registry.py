"""GraphRegistry — long-lived, versioned, thread-safe graph handles.

The CLI's one-shot ``query`` rebuilds its graph on every invocation; a
serving layer must pay graph construction **once** and share the built
graph across many concurrent queries.  The registry maps names to lazy
loaders (the Table-1 stand-in datasets are pre-registered; edge-list
files can be added at runtime), builds each graph at most once under a
per-entry lock — two registry clients asking for *different* graphs
build concurrently, two asking for the *same* graph share one build —
and hands out immutable :class:`GraphHandle` objects.

Every (re)build bumps the entry's **version**.  Handles carry the
version, and the result cache keys on it, so ``reload``/``evict``
invalidate stale cached answers for free: the old version's keys simply
stop being generated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import UnknownGraphError
from ..graph.io import load_snap_graph
from ..graph.weighted_graph import WeightedGraph
from ..workloads.datasets import dataset_names, load_dataset

__all__ = ["GraphHandle", "GraphRegistry"]


@dataclass(frozen=True)
class GraphHandle:
    """An immutable, pinned reference to one built graph."""

    name: str
    version: int
    graph: WeightedGraph

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


@dataclass
class _Entry:
    loader: Callable[[], WeightedGraph]
    description: str = ""
    #: The current (graph, version) pair as ONE immutable reference, so
    #: lock-free readers can never observe a graph/version mismatch
    #: across a concurrent reload.
    handle: Optional[GraphHandle] = None
    version: int = 0
    build_seconds: float = 0.0
    csr_seconds: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)


class GraphRegistry:
    """Named graphs behind lazy, versioned, thread-safe handles.

    Parameters
    ----------
    preload_datasets:
        When true (the default) every stand-in dataset of
        :mod:`repro.workloads.datasets` is registered (lazily — nothing
        is built until first use).
    prebuild_csr:
        When true (the default) every graph build also flattens the
        adjacency into its :class:`~repro.graph.csr.CSRAdjacency` mirror
        (including the kernel-side derived views), so the first query
        against a freshly-loaded graph pays no flattening cost and
        every :class:`~repro.server.shards.ShardPool` replica shares the
        same immutable buffers.
    """

    def __init__(
        self, preload_datasets: bool = True, prebuild_csr: bool = True
    ) -> None:
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self._builds = 0
        self._prebuild_csr = prebuild_csr
        self._build_hooks: List[Callable[[GraphHandle], None]] = []
        if preload_datasets:
            for name in dataset_names():
                self.register(
                    name,
                    (lambda n=name: load_dataset(n)),
                    description=f"stand-in dataset {name!r}",
                )

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        loader: Callable[[], WeightedGraph],
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a lazy loader under ``name``.

        Re-registering an existing name requires ``replace=True`` and
        keeps the version counter monotone (cached results for the old
        definition stay invalid).
        """
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None and not replace:
                raise ValueError(
                    f"graph {name!r} is already registered "
                    "(pass replace=True to overwrite)"
                )
            entry = _Entry(loader=loader, description=description)
            if existing is not None:
                entry.version = existing.version
            self._entries[name] = entry

    def register_edge_list(
        self,
        name: str,
        edges_path: str,
        weights_path: Optional[str] = None,
        replace: bool = False,
    ) -> None:
        """Register a SNAP-style edge-list file (PageRank weights if none)."""
        self.register(
            name,
            lambda: load_snap_graph(edges_path, weights_path),
            description=f"edge list {edges_path!r}",
            replace=replace,
        )

    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownGraphError(name, available=self._entries)
            return entry

    def _build(self, name: str, entry: _Entry) -> GraphHandle:
        """Run the loader and publish a fresh handle (entry.lock held)."""
        started = time.perf_counter()
        graph = entry.loader()
        entry.build_seconds = time.perf_counter() - started
        if self._prebuild_csr:
            # Flatten eagerly (CSR + the list mirrors the stdlib kernel
            # iterates) so first-query latency is flat; the numpy views
            # are zero-copy and materialise on first vectorised peel.
            started = time.perf_counter()
            graph.csr().lists()
            entry.csr_seconds = time.perf_counter() - started
        entry.version += 1
        entry.handle = GraphHandle(name, entry.version, graph)
        with self._lock:
            self._builds += 1
            hooks = list(self._build_hooks)
        for hook in hooks:
            # Build hooks are optimisations layered on top (segment
            # publication for the cluster tier, pre-warming): they run
            # right next to the prebuild_csr step, but a failing hook
            # must never fail the build itself.
            try:
                hook(entry.handle)
            except Exception:  # noqa: BLE001 — hooks are best-effort
                pass
        return entry.handle

    # ------------------------------------------------------------------
    def add_build_hook(self, hook: Callable[[GraphHandle], None]) -> None:
        """Call ``hook(handle)`` after every (re)build, best-effort.

        The cluster tier registers its shared-memory segment publication
        here, so a graph's CSR is staged for worker attachment the
        moment it is built — the same eager spot as ``prebuild_csr``.
        """
        with self._lock:
            self._build_hooks.append(hook)

    def remove_build_hook(self, hook: Callable[[GraphHandle], None]) -> None:
        """Deregister a build hook (no-op when absent)."""
        with self._lock:
            if hook in self._build_hooks:
                self._build_hooks.remove(hook)

    def get(self, name: str) -> GraphHandle:
        """A handle to the built graph, building it (once) if needed."""
        entry = self._entry(name)
        # Single reference read: a concurrent reload can never yield a
        # mismatched (graph, version) pair.
        handle = entry.handle
        if handle is not None:
            return handle
        # Build outside the registry lock, under the entry's own lock, so
        # concurrent loads of different graphs do not serialise.
        with entry.lock:
            if entry.handle is None:
                return self._build(name, entry)
            return entry.handle

    def reload(self, name: str) -> GraphHandle:
        """Force a rebuild and bump the version (invalidates caches)."""
        entry = self._entry(name)
        with entry.lock:
            return self._build(name, entry)

    def evict(self, name: str) -> None:
        """Drop the built graph (the loader stays; next get() rebuilds)."""
        entry = self._entry(name)
        with entry.lock:
            entry.handle = None

    def unregister(self, name: str) -> None:
        """Remove ``name`` entirely."""
        with self._lock:
            if name not in self._entries:
                raise UnknownGraphError(name, available=self._entries)
            del self._entries[name]

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        with self._lock:
            return list(self._entries)

    def is_loaded(self, name: str) -> bool:
        """True when the graph is currently built and pinned in memory."""
        return self._entry(name).handle is not None

    def version(self, name: str) -> int:
        """Current version (0 = never built)."""
        return self._entry(name).version

    @property
    def builds(self) -> int:
        """Total number of graph builds performed (load + reload)."""
        with self._lock:
            return self._builds

    def describe(self) -> List[Dict[str, object]]:
        """One status row per registered graph (for `graphs` in the shell)."""
        rows: List[Dict[str, object]] = []
        with self._lock:
            items = list(self._entries.items())
        for name, entry in items:
            handle = entry.handle
            row: Dict[str, object] = {
                "name": name,
                "description": entry.description,
                "loaded": handle is not None,
                "version": entry.version,
            }
            if handle is not None:
                row["vertices"] = handle.num_vertices
                row["edges"] = handle.num_edges
                row["build_seconds"] = entry.build_seconds
                row["csr_seconds"] = entry.csr_seconds
            rows.append(row)
        return rows
