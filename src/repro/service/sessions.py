"""SessionManager — progressive streaming sessions with TTL eviction.

The paper's "no k needed" workflow (Section 4): a client opens a session
for ``(graph, gamma)``, repeatedly asks for the *next* few communities —
each batch arrives in strictly decreasing influence order, computed
lazily via :class:`~repro.core.progressive.ProgressiveCursor` — and
closes (or abandons) the session when it has seen enough.  Abandoned
sessions are evicted once idle longer than the TTL; the clock is
injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.progressive import LocalSearchP, ProgressiveCursor
from ..errors import UnknownSessionError
from .metrics import ServiceMetrics
from .model import CommunityView
from .registry import GraphRegistry

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One progressive streaming session."""

    session_id: str
    graph: str
    graph_version: int
    gamma: int
    delta: float
    cursor: ProgressiveCursor
    created_at: float
    last_used: float
    delivered: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def exhausted(self) -> bool:
        return (
            self.cursor.exhausted
            and self.delivered >= self.cursor.materialized
        )

    def describe(self) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "graph": self.graph,
            "graph_version": self.graph_version,
            "gamma": self.gamma,
            "delta": self.delta,
            "delivered": self.delivered,
            "exhausted": self.exhausted,
        }


class SessionManager:
    """Create / advance / close progressive sessions, evicting idle ones.

    Parameters
    ----------
    registry:
        Graph source; sessions pin the handle current at creation time.
    ttl_seconds:
        Idle time after which a session may be evicted (checked on every
        public operation — no background thread needed).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        registry: GraphRegistry,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.registry = registry
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self.metrics = metrics
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.RLock()
        self._counter = 0

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        now = self.clock()
        with self._lock:
            expired = [
                sid
                for sid, session in self._sessions.items()
                if now - session.last_used > self.ttl_seconds
            ]
            for sid in expired:
                del self._sessions[sid]
        for _ in expired:
            if self.metrics is not None:
                self.metrics.session_closed(expired=True)

    def get(self, session_id: str) -> Session:
        """The live session called ``session_id`` (raises if unknown)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        return session

    # ------------------------------------------------------------------
    def create(
        self,
        graph: str,
        gamma: int,
        delta: float = 2.0,
        noncontainment: bool = False,
    ) -> Session:
        """Open a session streaming ``graph``'s communities at ``gamma``."""
        self._sweep()
        handle = self.registry.get(graph)
        searcher = LocalSearchP(
            handle.graph, gamma=gamma, delta=delta,
            noncontainment=noncontainment,
        )
        now = self.clock()
        with self._lock:
            self._counter += 1
            session = Session(
                session_id=f"s{self._counter}",
                graph=handle.name,
                graph_version=handle.version,
                gamma=gamma,
                delta=delta,
                cursor=searcher.cursor(),
                created_at=now,
                last_used=now,
            )
            self._sessions[session.session_id] = session
        if self.metrics is not None:
            self.metrics.session_opened()
        return session

    def next(
        self, session_id: str, count: int = 1
    ) -> Tuple[List[CommunityView], bool]:
        """The next ``count`` communities and whether the stream is done.

        Successive calls never repeat a community; the underlying stream
        resumes where the last batch stopped.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        self._sweep()
        session = self.get(session_id)
        with session._lock:
            start = session.delivered
            communities = session.cursor.take(start + count)[start:]
            session.delivered += len(communities)
            session.last_used = self.clock()
            done = session.exhausted
        return [CommunityView.from_community(c) for c in communities], done

    def close(self, session_id: str) -> None:
        """Close a session (idempotent errors: unknown ids raise)."""
        with self._lock:
            if session_id not in self._sessions:
                raise UnknownSessionError(session_id)
            del self._sessions[session_id]
        if self.metrics is not None:
            self.metrics.session_closed()

    def touch(self, session_id: str) -> None:
        """Refresh a session's idle timer without advancing it."""
        session = self.get(session_id)
        with session._lock:
            session.last_used = self.clock()

    # ------------------------------------------------------------------
    def active(self) -> List[Dict[str, object]]:
        """Status rows of all live sessions (post-sweep)."""
        self._sweep()
        with self._lock:
            return [s.describe() for s in self._sessions.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions
