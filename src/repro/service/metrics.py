"""Service metrics — counters and latency percentiles for the serving layer.

Pure in-process instrumentation (no external dependency): monotonically
increasing counters (queries served, per-source breakdown, session
lifecycle), a bounded latency reservoir per algorithm, and nearest-rank
percentiles over it.  ``snapshot()`` returns a plain dict so the shell's
``metrics`` command and tests can consume it directly.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, Optional

__all__ = ["percentile", "ServiceMetrics"]


def percentile(samples: Iterable[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``q`` in (0, 100]); ``None`` if empty."""
    values = sorted(samples)
    if not values:
        return None
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile q must be in (0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(values)))
    return values[rank - 1]


class ServiceMetrics:
    """Thread-safe counters + per-algorithm latency reservoirs.

    ``max_samples`` bounds each algorithm's reservoir (oldest samples
    fall out first), keeping memory constant under heavy traffic.
    """

    PERCENTILES = (50.0, 90.0, 99.0)

    def __init__(self, max_samples: int = 1024) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self.queries_served = 0
        self.by_source: Dict[str, int] = defaultdict(int)
        self.by_algorithm: Dict[str, int] = defaultdict(int)
        self.by_kernel: Dict[str, int] = defaultdict(int)
        self._latency_ms: Dict[str, Deque[float]] = {}
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_expired = 0
        self.errors = 0
        # Server tier (repro.server): connection lifecycle, batch
        # coalescing, and scheduler queue pressure.
        self.connections_opened = 0
        self.connections_closed = 0
        self.batches = 0
        self.batched_queries = 0
        self.max_batch_width = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0

    # ------------------------------------------------------------------
    def observe_query(
        self,
        algorithm: str,
        elapsed_ms: float,
        source: str,
        kernel: Optional[str] = None,
    ) -> None:
        """Record one served query (``kernel`` = the peel kernel used)."""
        with self._lock:
            self.queries_served += 1
            self.by_source[source] += 1
            self.by_algorithm[algorithm] += 1
            if kernel is not None:
                self.by_kernel[kernel] += 1
            reservoir = self._latency_ms.get(algorithm)
            if reservoir is None:
                reservoir = deque(maxlen=self._max_samples)
                self._latency_ms[algorithm] = reservoir
            reservoir.append(elapsed_ms)

    def observe_error(self) -> None:
        with self._lock:
            self.errors += 1

    def session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def session_closed(self, expired: bool = False) -> None:
        with self._lock:
            self.sessions_closed += 1
            if expired:
                self.sessions_expired += 1

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    def observe_batch(self, width: int) -> None:
        """Record one coalesced engine pass serving ``width`` queries."""
        with self._lock:
            self.batches += 1
            self.batched_queries += width
            if width > self.max_batch_width:
                self.max_batch_width = width

    def observe_queue_depth(self, depth: int) -> None:
        """Record the scheduler's current pending-query depth."""
        with self._lock:
            self.queue_depth = depth
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of queries answered without a fresh computation
        (cache slice, resumed cursor, or coalesced onto a shared batch)."""
        with self._lock:
            served = sum(
                self.by_source[s]
                for s in ("cache", "extended", "cold", "coalesced")
            )
            if not served:
                return 0.0
            return (
                self.by_source["cache"]
                + self.by_source["extended"]
                + self.by_source["coalesced"]
            ) / served

    @property
    def coalesce_rate(self) -> float:
        """Fraction of scheduler-served queries that shared another
        query's engine pass (0.0 when batching never ran)."""
        with self._lock:
            if not self.batched_queries:
                return 0.0
            return 1.0 - self.batches / self.batched_queries

    def latency_percentiles(self, algorithm: str) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for one algorithm."""
        with self._lock:
            samples = list(self._latency_ms.get(algorithm, ()))
        return {
            f"p{int(q)}": percentile(samples, q) for q in self.PERCENTILES
        }

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time, JSON-friendly view of everything."""
        with self._lock:
            latencies = {
                algo: list(samples)
                for algo, samples in self._latency_ms.items()
            }
            out: Dict[str, object] = {
                "queries_served": self.queries_served,
                "by_source": dict(self.by_source),
                "by_algorithm": dict(self.by_algorithm),
                "by_kernel": dict(self.by_kernel),
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "sessions_expired": self.sessions_expired,
                "errors": self.errors,
                "server": {
                    "connections_opened": self.connections_opened,
                    "connections_closed": self.connections_closed,
                    "batches": self.batches,
                    "batched_queries": self.batched_queries,
                    "max_batch_width": self.max_batch_width,
                    "queue_depth": self.queue_depth,
                    "queue_depth_peak": self.queue_depth_peak,
                },
            }
        out["server"]["coalesce_rate"] = self.coalesce_rate  # type: ignore[index]
        out["cache_hit_rate"] = self.cache_hit_rate
        out["latency_ms"] = {
            algo: {
                f"p{int(q)}": percentile(samples, q)
                for q in self.PERCENTILES
            }
            for algo, samples in latencies.items()
        }
        return out
