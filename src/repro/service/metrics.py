"""Service metrics — counters and latency percentiles for the serving layer.

Pure in-process instrumentation (no external dependency): monotonically
increasing counters (queries served, per-source/backend breakdown,
session lifecycle), a bounded latency reservoir per algorithm, and
nearest-rank percentiles over it.  Since PR 4 one canonical query
identity exists (:meth:`repro.api.spec.QuerySpec.cache_key`), so the
sink can also aggregate **per family**: :meth:`ServiceMetrics.by_family`
reports hit rate and p50/p95 latency per
:class:`~repro.api.spec.FamilyKey` — the spec-addressed observability
the shell's ``metrics`` command surfaces in text and JSON modes.  The
cluster tier (:mod:`repro.cluster`) adds placement counters: per-worker
dispatches and queue depths, segment attach counts, worker restarts,
and a ``by_backend`` split of thread- vs process-served queries.

``snapshot()`` returns a plain dict so the shell's ``metrics`` command
and tests can consume it directly.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, defaultdict, deque
from typing import Deque, Dict, Iterable, Optional

__all__ = ["percentile", "family_label", "ServiceMetrics"]


def percentile(samples: Iterable[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``q`` in (0, 100]); ``None`` if empty."""
    values = sorted(samples)
    if not values:
        return None
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile q must be in (0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(values)))
    return values[rank - 1]


def family_label(family) -> str:
    """A stable, JSON-key-safe rendering of a FamilyKey."""
    return (
        f"{family.graph}|gamma={family.gamma}|{family.algorithm}"
        f"|delta={family.delta:g}|kernel={family.kernel}"
    )


class _FamilyStats:
    """Per-family counters + bounded latency reservoir."""

    __slots__ = ("queries", "no_compute", "latency_ms", "phases")

    #: Sources that served without a fresh computation (mirrors
    #: :attr:`ServiceMetrics.cache_hit_rate`'s numerator).
    HIT_SOURCES = frozenset({"cache", "extended", "coalesced"})

    def __init__(self, max_samples: int) -> None:
        self.queries = 0
        self.no_compute = 0
        self.latency_ms: Deque[float] = deque(maxlen=max_samples)
        #: Latest kernel-phase accumulator snapshot ({phase: ms}) — a
        #: progressive family's stats accumulate over its lifetime, so
        #: the newest snapshot is the family's cumulative breakdown.
        self.phases: Optional[Dict[str, float]] = None

    def record(
        self,
        elapsed_ms: float,
        source: str,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        self.queries += 1
        if source in self.HIT_SOURCES:
            self.no_compute += 1
        self.latency_ms.append(elapsed_ms)
        if phases:
            self.phases = dict(phases)


class ServiceMetrics:
    """Thread-safe counters + per-algorithm latency reservoirs.

    ``max_samples`` bounds each algorithm's reservoir (oldest samples
    fall out first), keeping memory constant under heavy traffic;
    ``max_families`` bounds the per-family table the same way (least-
    recently-active families fall out first).
    """

    PERCENTILES = (50.0, 90.0, 99.0)
    #: Percentiles reported per family (the satellite contract: p50/p95).
    FAMILY_PERCENTILES = (50.0, 95.0)
    #: Percentiles over the global reservoir (all algorithms pooled) —
    #: the gauge the p95 SLO and the dashboard stat tile read.
    OVERALL_PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(
        self, max_samples: int = 1024, max_families: int = 512
    ) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        if max_families < 1:
            raise ValueError("max_families must be at least 1")
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._max_families = max_families
        self.queries_served = 0
        self.by_source: Dict[str, int] = defaultdict(int)
        self.by_algorithm: Dict[str, int] = defaultdict(int)
        self.by_kernel: Dict[str, int] = defaultdict(int)
        #: Queries by execution backend: ``thread`` = the in-process
        #: engine (stdio shell, thread shards, parent-side cache hits
        #: under the cluster backend), ``process`` = cluster workers.
        self.by_backend: Dict[str, int] = defaultdict(int)
        self._latency_ms: Dict[str, Deque[float]] = {}
        #: Global latency reservoir across every algorithm — one pooled
        #: p95 gauge for SLO evaluation and the dashboard.
        self._latency_all: Deque[float] = deque(maxlen=max_samples)
        self._families: "OrderedDict[object, _FamilyStats]" = OrderedDict()
        #: Cumulative queries per graph name.  One integer per
        #: *registered* graph (naturally bounded), so — unlike the
        #: LRU-bounded family table — it never evicts: the control
        #: plane's per-graph demand signal stays exact no matter how
        #: many distinct families churn through the window.
        self.by_graph: Dict[str, int] = defaultdict(int)
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_expired = 0
        self.errors = 0
        #: Errors by exception type name (``observe_error(kind=...)``).
        self.by_error: Dict[str, int] = defaultdict(int)
        # Server tier (repro.server): connection lifecycle, batch
        # coalescing, and scheduler queue pressure.
        self.connections_opened = 0
        self.connections_closed = 0
        self.batches = 0
        self.batched_queries = 0
        self.max_batch_width = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        #: Replicated-shard dispatches steered to an idle replica in
        #: preference to a busy round-robin choice.
        self.replica_idle_dispatches = 0
        # Cluster tier (repro.cluster): placement + segment lifecycle.
        self.by_worker: Dict[str, int] = defaultdict(int)
        self.segment_attaches: Dict[str, int] = defaultdict(int)
        self.worker_restarts = 0
        self.cluster_depth: Dict[str, int] = {}
        self.cluster_depth_peak = 0
        # Live tier (repro.live): streaming mutations + scoped
        # invalidation + delta-chain compaction.
        self.mutations_applied = 0
        self.families_invalidated = 0
        self.families_preserved = 0
        self.compactions = 0
        #: Current graph generation (version) per mutated graph — the
        #: segment-generation gauge the Prometheus exporter reports.
        self.graph_generation: Dict[str, int] = {}
        # Control tier (repro.control): applied controller decisions by
        # policy name, and admission rejections by tenant label.
        self.control_decisions: Dict[str, int] = defaultdict(int)
        self.admission_rejected: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def observe_query(
        self,
        algorithm: str,
        elapsed_ms: float,
        source: str,
        kernel: Optional[str] = None,
        family=None,
        backend: Optional[str] = None,
        worker: Optional[str] = None,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Record one served query.

        ``kernel`` is the peel kernel used, ``family`` the spec's
        canonical :class:`~repro.api.spec.FamilyKey`, ``backend`` the
        execution backend (``None`` counts as ``thread``), ``worker``
        the serving cluster worker tag, if any; ``phases`` the query's
        kernel-phase timing accumulator (``{phase: ms}``, the
        ``SearchStats.phases`` dict) — ``None`` leaves the family's
        previous breakdown in place (pure cache hits do no kernel work).
        """
        with self._lock:
            self.queries_served += 1
            self.by_source[source] += 1
            self.by_algorithm[algorithm] += 1
            self.by_backend[backend if backend is not None else "thread"] += 1
            if kernel is not None:
                self.by_kernel[kernel] += 1
            if worker is not None:
                self.by_worker[worker] += 1
            reservoir = self._latency_ms.get(algorithm)
            if reservoir is None:
                reservoir = deque(maxlen=self._max_samples)
                self._latency_ms[algorithm] = reservoir
            reservoir.append(elapsed_ms)
            self._latency_all.append(elapsed_ms)
            if family is not None:
                self.by_graph[family.graph] += 1
                stats = self._families.get(family)
                if stats is None:
                    stats = _FamilyStats(self._max_samples)
                    self._families[family] = stats
                    while len(self._families) > self._max_families:
                        self._families.popitem(last=False)
                else:
                    self._families.move_to_end(family)
                stats.record(elapsed_ms, source, phases)

    def observe_error(self, kind: Optional[str] = None) -> None:
        """Record one error; ``kind`` is the exception type name."""
        with self._lock:
            self.errors += 1
            if kind is not None:
                self.by_error[kind] += 1

    def session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def session_closed(self, expired: bool = False) -> None:
        with self._lock:
            self.sessions_closed += 1
            if expired:
                self.sessions_expired += 1

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    def observe_batch(self, width: int) -> None:
        """Record one coalesced engine pass serving ``width`` queries."""
        with self._lock:
            self.batches += 1
            self.batched_queries += width
            if width > self.max_batch_width:
                self.max_batch_width = width

    def observe_queue_depth(self, depth: int) -> None:
        """Record the scheduler's current pending-query depth."""
        with self._lock:
            self.queue_depth = depth
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth

    def observe_replica_idle_dispatch(self) -> None:
        """A replicated dispatch was steered to an idle replica."""
        with self._lock:
            self.replica_idle_dispatches += 1

    # -- cluster tier ---------------------------------------------------
    def observe_segment_attach(self, mode: str) -> None:
        """A worker attached a graph (``mode`` = ``shm`` / ``pickle``)."""
        with self._lock:
            self.segment_attaches[mode] += 1

    def observe_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1

    def observe_cluster_depth(self, worker: str, depth: int) -> None:
        """Record one worker's queued + in-flight job count."""
        with self._lock:
            self.cluster_depth[worker] = depth
            if depth > self.cluster_depth_peak:
                self.cluster_depth_peak = depth

    # -- control tier ---------------------------------------------------
    def observe_control_decision(self, policy: str) -> None:
        """The adaptive controller applied one decision of ``policy``."""
        with self._lock:
            self.control_decisions[policy] += 1

    def observe_admission_rejected(self, tenant: Optional[str]) -> None:
        """Admission control refused a query (``None`` = anonymous)."""
        with self._lock:
            self.admission_rejected[tenant if tenant else "-"] += 1

    # -- live tier ------------------------------------------------------
    def observe_mutation(
        self,
        graph: str,
        version: int,
        invalidated: int = 0,
        preserved: int = 0,
        compaction: bool = False,
    ) -> None:
        """Record one graph-version flip (mutation batch or compaction).

        ``invalidated``/``preserved`` are the scoped-invalidation
        outcome over the cached families of the flipped graph;
        ``version`` updates the generation gauge.
        """
        with self._lock:
            if compaction:
                self.compactions += 1
            else:
                self.mutations_applied += 1
            self.families_invalidated += invalidated
            self.families_preserved += preserved
            self.graph_generation[graph] = version

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of queries answered without a fresh computation
        (cache slice, resumed cursor, or coalesced onto a shared batch)."""
        with self._lock:
            # .get (never index) — by_source is a defaultdict, and a
            # *read* must not insert zero-count keys into snapshots.
            served = sum(
                self.by_source.get(s, 0)
                for s in ("cache", "extended", "cold", "coalesced")
            )
            if not served:
                return 0.0
            return (
                self.by_source.get("cache", 0)
                + self.by_source.get("extended", 0)
                + self.by_source.get("coalesced", 0)
            ) / served

    @property
    def coalesce_rate(self) -> float:
        """Fraction of scheduler-served queries that shared another
        query's engine pass (0.0 when batching never ran)."""
        with self._lock:
            if not self.batched_queries:
                return 0.0
            return 1.0 - self.batches / self.batched_queries

    def latency_percentiles(self, algorithm: str) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for one algorithm."""
        with self._lock:
            samples = list(self._latency_ms.get(algorithm, ()))
        return {
            f"p{int(q)}": percentile(samples, q) for q in self.PERCENTILES
        }

    def overall_latency(self) -> Dict[str, Optional[float]]:
        """Pooled p50/p95/p99 over the global reservoir (all algorithms)."""
        with self._lock:
            samples = list(self._latency_all)
        return {
            f"p{int(q)}": percentile(samples, q)
            for q in self.OVERALL_PERCENTILES
        }

    def by_family(self) -> Dict[str, Dict[str, object]]:
        """Spec-addressed aggregates: one row per active FamilyKey.

        Each row carries the served count, the fraction served without
        fresh computation, nearest-rank p50/p95 latency over the
        family's bounded reservoir, and the family's latest kernel-phase
        breakdown (``phases_ms``, e.g. peel vs enumerate time — the
        dashboard heatmap's breakdown column).  Keys are the stable
        :func:`family_label` strings (JSON-safe).
        """
        with self._lock:
            rows = [
                (
                    family,
                    stats.queries,
                    stats.no_compute,
                    list(stats.latency_ms),
                    dict(stats.phases) if stats.phases else {},
                )
                for family, stats in self._families.items()
            ]
        out: Dict[str, Dict[str, object]] = {}
        for family, queries, no_compute, samples, phases in rows:
            out[family_label(family)] = {
                "queries": queries,
                "hit_rate": no_compute / queries if queries else 0.0,
                **{
                    f"p{int(q)}_ms": percentile(samples, q)
                    for q in self.FAMILY_PERCENTILES
                },
                "phases_ms": phases,
            }
        return out

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time, JSON-friendly view of everything.

        Every container in the document is a **defensive copy** built
        under the lock (``by_error``, the cluster depth dicts, the
        family rows, the latency tables): mutating a snapshot never
        writes through to live state, and live updates never mutate an
        already-returned snapshot — both directions are regression-
        tested, since the history collector and the HTTP exporter hold
        snapshots across threads.
        """
        with self._lock:
            latencies = {
                algo: list(samples)
                for algo, samples in self._latency_ms.items()
            }
            overall = list(self._latency_all)
            cluster = {
                "by_worker": dict(self.by_worker),
                "segment_attaches": dict(self.segment_attaches),
                "worker_restarts": self.worker_restarts,
                "queue_depth": dict(self.cluster_depth),
                "queue_depth_peak": self.cluster_depth_peak,
            }
            control = {
                "decisions": dict(self.control_decisions),
                "admission_rejected": dict(self.admission_rejected),
            }
            live = {
                "mutations_applied": self.mutations_applied,
                "families_invalidated": self.families_invalidated,
                "families_preserved": self.families_preserved,
                "compactions": self.compactions,
                "graph_generation": dict(self.graph_generation),
            }
            out: Dict[str, object] = {
                "queries_served": self.queries_served,
                "by_source": dict(self.by_source),
                "by_algorithm": dict(self.by_algorithm),
                "by_kernel": dict(self.by_kernel),
                "by_backend": dict(self.by_backend),
                "by_graph": dict(self.by_graph),
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "sessions_expired": self.sessions_expired,
                "errors": self.errors,
                "by_error": dict(self.by_error),
                "server": {
                    "connections_opened": self.connections_opened,
                    "connections_closed": self.connections_closed,
                    "batches": self.batches,
                    "batched_queries": self.batched_queries,
                    "max_batch_width": self.max_batch_width,
                    "queue_depth": self.queue_depth,
                    "queue_depth_peak": self.queue_depth_peak,
                    "replica_idle_dispatches": self.replica_idle_dispatches,
                },
            }
        out["cluster"] = cluster
        out["live"] = live
        out["control"] = control
        out["server"]["coalesce_rate"] = self.coalesce_rate  # type: ignore[index]
        out["cache_hit_rate"] = self.cache_hit_rate
        out["by_family"] = self.by_family()
        out["latency_ms"] = {
            algo: {
                f"p{int(q)}": percentile(samples, q)
                for q in self.PERCENTILES
            }
            for algo, samples in latencies.items()
        }
        out["latency_overall_ms"] = {
            f"p{int(q)}": percentile(overall, q)
            for q in self.OVERALL_PERCENTILES
        }
        return out
