"""The online query-serving layer (DESIGN: service subsystem).

The algorithm layer answers *one* query optimally; this package makes
*many* queries against long-lived graphs cheap:

* :mod:`~repro.service.registry` — named, versioned, thread-safe graph
  handles; construction is paid once per graph, not per query;
* :mod:`~repro.service.engine` — planner + dispatcher normalising every
  algorithm's output into serializable results;
* :mod:`~repro.service.cache` — LRU result reuse exploiting the
  progressive order (``k' <= k`` is a slice, ``k' > k`` *resumes*);
* :mod:`~repro.service.sessions` — progressive streaming sessions with
  TTL eviction (the paper's "no k needed" workflow, served);
* :mod:`~repro.service.metrics` — hit rates, latency percentiles,
  lifecycle counters;
* :mod:`~repro.service.shell` — the ``repro serve`` line protocol.

Queries arrive as :class:`repro.api.QuerySpec` objects (``TopKQuery``
remains as a deprecated alias); most callers should prefer the public
facade — ``repro.open()`` — over wiring these pieces by hand.

Quickstart::

    from repro.api import QuerySpec
    from repro.service import GraphRegistry, QueryEngine, ResultCache

    registry = GraphRegistry()           # stand-in datasets pre-registered
    engine = QueryEngine(registry, cache=ResultCache())
    result = engine.execute(QuerySpec(graph="email", gamma=5, k=10))
    result.to_json()
"""

from .cache import CacheKey, CacheStats, ResultCache
from .engine import QueryEngine, QueryPlan
from .metrics import ServiceMetrics, percentile
from .model import ALGORITHMS, AUTO, CommunityView, QueryResult, TopKQuery
from .registry import GraphHandle, GraphRegistry
from .sessions import Session, SessionManager
from .shell import ServiceShell

__all__ = [
    "ALGORITHMS",
    "AUTO",
    "CacheKey",
    "CacheStats",
    "CommunityView",
    "GraphHandle",
    "GraphRegistry",
    "QueryEngine",
    "QueryPlan",
    "QueryResult",
    "ResultCache",
    "ServiceMetrics",
    "ServiceShell",
    "Session",
    "SessionManager",
    "TopKQuery",
    "percentile",
]
