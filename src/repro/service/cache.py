"""ResultCache — LRU result reuse built on the paper's progressive order.

Two properties of the algorithms make top-k answers unusually cacheable:

* the result sequence for a given ``(graph, gamma)`` is **independent of
  k** — ``k`` only truncates it — so a cached top-``k`` serves *any*
  follow-up with ``k' <= k`` exactly (prefix reuse);
* LocalSearch-P's stream can be **resumed**: a follow-up with ``k' > k``
  continues peeling where the cached query stopped (suffix property,
  Lemma 3.1/3.2) instead of restarting from scratch.

Entries are keyed by ``(graph name, graph version, gamma, algorithm,
delta)``; the graph version comes from the :class:`GraphRegistry`, so a
``reload`` silently invalidates all stale answers.  Progressive entries
hold a live :class:`~repro.core.progressive.ProgressiveCursor`; static
entries (non-progressive algorithms) hold a frozen tuple of views and
can only serve ``k' <= k`` (or anything, once the answer is known to be
complete).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..core.progressive import ProgressiveCursor
from ..errors import ServiceError
from .model import CommunityView

__all__ = [
    "CacheKey",
    "CacheStats",
    "ProgressiveEntry",
    "StaticEntry",
    "ResultCache",
]


@dataclass(frozen=True)
class CacheKey:
    """Identity of a cached answer.

    ``(gamma, algorithm, delta, kernel)`` mirror the spec's canonical
    :meth:`~repro.api.spec.QuerySpec.cache_key` family (algorithm and
    kernel *resolved*); ``version`` pins the graph build the answer was
    computed against, so reloads invalidate for free.  ``kernel`` keeps
    per-kernel provenance honest: a ``kernel=python`` query can never be
    handed another kernel's cursor slices.
    """

    graph: str
    version: int
    gamma: int
    algorithm: str
    delta: float
    kernel: Optional[str] = None

    @classmethod
    def for_spec(cls, spec, version: int) -> "CacheKey":
        """The cache identity of ``spec`` against graph ``version``."""
        family = spec.cache_key()
        return cls(
            graph=family.graph,
            version=version,
            gamma=family.gamma,
            algorithm=family.algorithm,
            delta=family.delta,
            kernel=family.kernel,
        )


@dataclass
class CacheStats:
    """Lookup counters (kept by the cache itself; latency lives in
    :class:`~repro.service.metrics.ServiceMetrics`)."""

    hits: int = 0
    extended: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.extended + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served (fully or by resuming) from cache."""
        total = self.lookups
        return (self.hits + self.extended) / total if total else 0.0


class ProgressiveEntry:
    """A resumable cached answer: views + the (re)buildable cursor behind them.

    Three lifecycles share this class:

    * the engine's hot path holds a **live cursor** and materialises views
      as queries pull on it;
    * a **warm-start restore** seeds the entry with frozen views only
      (plus a ``cursor_factory``); small ``k`` is a slice, a larger ``k``
      rebuilds the cursor and re-peels — the stream is deterministic, so
      the recomputed prefix matches the restored views exactly;
    * the **k-truncation policy** (``max_cached_k``): once more than
      ``max_cached_k`` views have been materialised, the tail views *and*
      the cursor (whose internal list of live ``Community`` objects is the
      real memory hog) are released, bounding what a long-running server
      retains per entry.  Queries above the cap recompute via the factory.
    """

    __slots__ = (
        "_cursor",
        "cursor_factory",
        "max_cached_k",
        "_views",
        "_served",
        "_exhausted",
        "_lock",
    )

    #: Cap on memoised per-k answer tuples (distinct k's per entry).
    _MAX_CACHED_SLICES = 128

    def __init__(
        self,
        cursor: Optional[ProgressiveCursor] = None,
        *,
        cursor_factory: Optional[Callable[[], ProgressiveCursor]] = None,
        views: Iterable[CommunityView] = (),
        exhausted: bool = False,
        max_cached_k: Optional[int] = None,
    ) -> None:
        if cursor is None and cursor_factory is None and not exhausted:
            raise ValueError(
                "ProgressiveEntry needs a cursor, a cursor_factory, or "
                "exhausted=True (a complete set of restored views)"
            )
        if max_cached_k is not None:
            if max_cached_k < 1:
                raise ValueError("max_cached_k must be at least 1")
            if cursor_factory is None:
                raise ValueError(
                    "max_cached_k requires a cursor_factory (truncation "
                    "releases the cursor; extension must rebuild it)"
                )
        self._cursor = cursor
        self.cursor_factory = cursor_factory
        self.max_cached_k = max_cached_k
        self._views: List[CommunityView] = list(views)
        #: Memoised answer tuples by k: the view sequence is append-only,
        #: so a fully-materialised top-k prefix never changes and repeat
        #: hits (the dominant server-tier traffic) allocate nothing.
        self._served: dict = {}
        self._exhausted = exhausted
        self._lock = threading.Lock()
        self._trim()  # seeded views (warm-start restore) respect the cap

    @property
    def cursor(self) -> Optional[ProgressiveCursor]:
        """The live cursor, if one is attached (``None`` after truncation
        released it, or for warm-start restored entries)."""
        return self._cursor

    @property
    def materialized(self) -> int:
        with self._lock:
            return len(self._views)

    @property
    def exhausted(self) -> bool:
        """True when ``views`` is known to be the *complete* answer."""
        return self._exhausted

    @property
    def views(self) -> Tuple[CommunityView, ...]:
        """Snapshot of the materialised views (for warm-start persistence)."""
        with self._lock:
            return tuple(self._views)

    def _trim(self) -> None:
        """Enforce ``max_cached_k`` (lock held): drop tail views + cursor."""
        cap = self.max_cached_k
        if cap is None or len(self._views) <= cap:
            return
        del self._views[cap:]
        self._cursor = None
        # The tail is gone; only the retained prefix is known complete,
        # and memoised answers beyond the cap are no longer servable.
        self._exhausted = False
        for k in [k for k in self._served if k > cap]:
            del self._served[k]

    def _answer(self, k: int) -> Tuple[CommunityView, ...]:
        """The (memoised) top-``k`` tuple (lock held)."""
        have = len(self._views)
        # Once the stream is exhausted, every k >= have yields the same
        # full answer: normalise the memo key so oversized k's share one
        # entry instead of crowding out the hot small-k slots.
        key = min(k, have) if self._exhausted else k
        cached = self._served.get(key)
        if cached is not None:
            return cached
        out = tuple(self._views[:k])
        # Only memoise slices that can never change: k fully covered by
        # the materialised views, or the stream known exhausted.
        if (
            have >= k or self._exhausted
        ) and len(self._served) < self._MAX_CACHED_SLICES:
            self._served[key] = out
        return out

    def serve(self, k: int) -> Tuple[Tuple[CommunityView, ...], str, bool]:
        """Serve top-``k``, resuming (or rebuilding) the cursor as needed.

        Returns ``(views, source, complete)``: source is ``"cold"`` on
        first fill, ``"cache"`` for pure prefix reuse, ``"extended"``
        when the stream had to be resumed; ``complete`` is True when the
        served views are the *entire* answer (computed before any
        ``max_cached_k`` truncation, which may forget exhaustion).
        """
        with self._lock:
            had = len(self._views)
            if had >= k or self._exhausted:
                complete = self._exhausted and k >= len(self._views)
                return self._answer(k), "cache", complete
            cursor = self._cursor
            if cursor is None:
                if self.cursor_factory is None:
                    raise ServiceError(
                        "progressive cache entry cannot be extended: no "
                        "cursor and no cursor_factory"
                    )
                cursor = self.cursor_factory()
                self._cursor = cursor
            communities = cursor.take(k)
            for community in communities[had:]:
                self._views.append(CommunityView.from_community(community))
            self._exhausted = cursor.exhausted
            if had == 0:
                source = "cold"
            elif len(self._views) == had:
                # Nothing left to resume; the cached prefix is the answer.
                source = "cache"
            else:
                source = "extended"
            out = self._answer(k)
            complete = self._exhausted and k >= len(self._views)
            self._trim()
            return out, source, complete


class StaticEntry:
    """A frozen cached answer from a non-resumable algorithm."""

    __slots__ = ("views", "complete")

    def __init__(self, views: Tuple[CommunityView, ...], complete: bool) -> None:
        self.views = tuple(views)
        #: True when the views are *all* communities of the graph (the
        #: query asked for more than exist), so any k' can be served.
        self.complete = complete

    @classmethod
    def capped(
        cls,
        views: Tuple[CommunityView, ...],
        complete: bool,
        max_cached_k: Optional[int],
    ) -> "StaticEntry":
        """Build an entry honouring a retention cap.

        The one rule for cap semantics — shared by the engine's put path
        and the warm-start restore, so a restored entry can never carry
        different completeness semantics than a live-computed one:
        truncated views stop being ``complete`` (the tail is gone).
        """
        stored = views if max_cached_k is None else views[:max_cached_k]
        return cls(stored, complete and len(stored) == len(views))

    def serve(self, k: int) -> Optional[Tuple[Tuple[CommunityView, ...], str]]:
        """Serve top-``k`` if the entry covers it, else ``None`` (miss)."""
        if k <= len(self.views) or self.complete:
            return self.views[:k], "cache"
        return None


class ResultCache:
    """Thread-safe LRU over progressive/static entries.

    Parameters
    ----------
    capacity:
        Maximum number of entries (LRU eviction beyond it).
    max_cached_k:
        Per-entry retention cap: progressive entries release views and
        cursors beyond the top-``max_cached_k`` (long-running servers
        answering the occasional huge ``k`` would otherwise pin unbounded
        community lists); static entries are stored pre-truncated.
        ``None`` (the default) retains everything.
    """

    def __init__(
        self, capacity: int = 256, max_cached_k: Optional[int] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if max_cached_k is not None and max_cached_k < 1:
            raise ValueError("max_cached_k must be at least 1")
        self.capacity = capacity
        self.max_cached_k = max_cached_k
        self._data: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def get(self, key: CacheKey):
        """The entry for ``key`` (refreshing its LRU slot), or ``None``."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                self._data.move_to_end(key)
            return entry

    def put(self, key: CacheKey, entry) -> None:
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def record(self, source: str) -> None:
        """Count one served query by its source tag."""
        with self._lock:
            if source == "cache":
                self.stats.hits += 1
            elif source == "extended":
                self.stats.extended += 1
            else:
                self.stats.misses += 1

    def migrate_graph(
        self,
        graph: str,
        old_version: int,
        new_version: int,
        barrier: float,
        *,
        identical: bool = False,
        progressive_factory: Optional[
            Callable[[CacheKey], Callable[[], ProgressiveCursor]]
        ] = None,
    ) -> Tuple[int, int]:
        """Scoped invalidation for one graph-version flip (``repro.live``).

        Re-keys entries from ``old_version`` to ``new_version``,
        keeping a family warm **iff its answer provably survived the
        mutation**: every cached view's influence must sit strictly
        above the batch's ``barrier`` weight.  The cached view sequence
        is an influence-descending prefix, so the watermark is simply
        the *last* view's influence — the family's current influence
        frontier.  Communities with influence above the barrier live
        entirely inside threshold prefixes the mutation never touched
        (see :mod:`repro.graph.delta`), so the preserved prefix is
        byte-identical to what the new generation would recompute.

        Preserved progressive entries are re-seeded from their frozen
        views with a cursor factory bound to the **new** graph (via
        ``progressive_factory(new_key)``) — the old cursor still walks
        the old generation and is retired here; exhaustion/completeness
        is forgotten because the stream *below* the watermark may have
        changed.  With ``identical=True`` (compaction: same content,
        new representation) everything migrates and completeness
        survives.  Families that cannot be preserved — or progressive
        families when no factory is supplied — are dropped.

        Returns ``(preserved, invalidated)``.
        """
        with self._lock:
            moved = [
                (key, entry)
                for key, entry in self._data.items()
                if key.graph == graph and key.version == old_version
            ]
            preserved = invalidated = 0
            for key, entry in moved:
                del self._data[key]
                views = getattr(entry, "views", ())
                keep = identical or (
                    len(views) > 0 and views[-1].influence > barrier
                )
                new_key = CacheKey(
                    graph=key.graph,
                    version=new_version,
                    gamma=key.gamma,
                    algorithm=key.algorithm,
                    delta=key.delta,
                    kernel=key.kernel,
                )
                if keep and isinstance(entry, ProgressiveEntry):
                    factory = (
                        progressive_factory(new_key)
                        if progressive_factory is not None
                        else None
                    )
                    exhausted = entry.exhausted if identical else False
                    if factory is None and not exhausted:
                        keep = False  # inextensible without a factory
                    else:
                        self._data[new_key] = ProgressiveEntry(
                            cursor_factory=factory,
                            views=views,
                            exhausted=exhausted,
                            max_cached_k=(
                                self.max_cached_k
                                if factory is not None
                                else None
                            ),
                        )
                elif keep and isinstance(entry, StaticEntry):
                    self._data[new_key] = StaticEntry(
                        views, entry.complete if identical else False
                    )
                elif keep:  # unknown entry type: only safe when identical
                    if identical:
                        self._data[new_key] = entry
                    else:
                        keep = False
                if keep:
                    preserved += 1
                else:
                    invalidated += 1
            return preserved, invalidated

    def invalidate_graph(self, graph: str, version: Optional[int] = None) -> int:
        """Drop all entries for ``graph`` (optionally one version only)."""
        with self._lock:
            doomed = [
                key
                for key in self._data
                if key.graph == graph
                and (version is None or key.version == version)
            ]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> List[CacheKey]:
        with self._lock:
            return list(self._data)
