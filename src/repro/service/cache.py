"""ResultCache — LRU result reuse built on the paper's progressive order.

Two properties of the algorithms make top-k answers unusually cacheable:

* the result sequence for a given ``(graph, gamma)`` is **independent of
  k** — ``k`` only truncates it — so a cached top-``k`` serves *any*
  follow-up with ``k' <= k`` exactly (prefix reuse);
* LocalSearch-P's stream can be **resumed**: a follow-up with ``k' > k``
  continues peeling where the cached query stopped (suffix property,
  Lemma 3.1/3.2) instead of restarting from scratch.

Entries are keyed by ``(graph name, graph version, gamma, algorithm,
delta)``; the graph version comes from the :class:`GraphRegistry`, so a
``reload`` silently invalidates all stale answers.  Progressive entries
hold a live :class:`~repro.core.progressive.ProgressiveCursor`; static
entries (non-progressive algorithms) hold a frozen tuple of views and
can only serve ``k' <= k`` (or anything, once the answer is known to be
complete).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.progressive import ProgressiveCursor
from .model import CommunityView

__all__ = [
    "CacheKey",
    "CacheStats",
    "ProgressiveEntry",
    "StaticEntry",
    "ResultCache",
]


@dataclass(frozen=True)
class CacheKey:
    """Identity of a cached answer."""

    graph: str
    version: int
    gamma: int
    algorithm: str
    delta: float


@dataclass
class CacheStats:
    """Lookup counters (kept by the cache itself; latency lives in
    :class:`~repro.service.metrics.ServiceMetrics`)."""

    hits: int = 0
    extended: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.extended + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served (fully or by resuming) from cache."""
        total = self.lookups
        return (self.hits + self.extended) / total if total else 0.0


class ProgressiveEntry:
    """A resumable cached answer: views + the live cursor behind them."""

    __slots__ = ("cursor", "_views", "_lock")

    def __init__(self, cursor: ProgressiveCursor) -> None:
        self.cursor = cursor
        self._views: List[CommunityView] = []
        self._lock = threading.Lock()

    @property
    def materialized(self) -> int:
        with self._lock:
            return len(self._views)

    def serve(self, k: int) -> Tuple[Tuple[CommunityView, ...], str]:
        """Serve top-``k``, resuming the cursor when it falls short.

        Returns ``(views, source)`` with source ``"cold"`` on first fill,
        ``"cache"`` for pure prefix reuse, ``"extended"`` when the stream
        had to be resumed.
        """
        with self._lock:
            had = len(self._views)
            if had >= k:
                return tuple(self._views[:k]), "cache"
            was_exhausted = self.cursor.exhausted
            communities = self.cursor.take(k)
            for community in communities[had:]:
                self._views.append(CommunityView.from_community(community))
            if had == 0:
                source = "cold"
            elif was_exhausted:
                # Nothing left to resume; the cached prefix is the answer.
                source = "cache"
            else:
                source = "extended"
            return tuple(self._views[:k]), source


class StaticEntry:
    """A frozen cached answer from a non-resumable algorithm."""

    __slots__ = ("views", "complete")

    def __init__(self, views: Tuple[CommunityView, ...], complete: bool) -> None:
        self.views = tuple(views)
        #: True when the views are *all* communities of the graph (the
        #: query asked for more than exist), so any k' can be served.
        self.complete = complete

    def serve(self, k: int) -> Optional[Tuple[Tuple[CommunityView, ...], str]]:
        """Serve top-``k`` if the entry covers it, else ``None`` (miss)."""
        if k <= len(self.views) or self.complete:
            return self.views[:k], "cache"
        return None


class ResultCache:
    """Thread-safe LRU over progressive/static entries."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._data: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def get(self, key: CacheKey):
        """The entry for ``key`` (refreshing its LRU slot), or ``None``."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                self._data.move_to_end(key)
            return entry

    def put(self, key: CacheKey, entry) -> None:
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def record(self, source: str) -> None:
        """Count one served query by its source tag."""
        with self._lock:
            if source == "cache":
                self.stats.hits += 1
            elif source == "extended":
                self.stats.extended += 1
            else:
                self.stats.misses += 1

    def invalidate_graph(self, graph: str, version: Optional[int] = None) -> int:
        """Drop all entries for ``graph`` (optionally one version only)."""
        with self._lock:
            doomed = [
                key
                for key in self._data
                if key.graph == graph
                and (version is None or key.version == version)
            ]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> List[CacheKey]:
        with self._lock:
            return list(self._data)
