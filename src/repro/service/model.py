"""Wire types of the service layer: queries and serializable results.

The algorithm layer returns :class:`~repro.core.community.Community`
forests that hold live references to the graph — ideal inside one query,
wrong for a serving layer that caches answers across queries and ships
them over a protocol.  :class:`CommunityView` is the frozen, graph-free
projection of a community (keynode label, influence, size, sorted member
labels); :class:`QueryResult` bundles the views with provenance (graph
version, resolved algorithm, cache source, latency) and serialises to
JSON.  Frozen views are what make the cache's prefix-reuse contract easy
to state: serving ``k' <= k`` from a cached top-``k`` returns the *same
bytes* as a fresh query.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from ..api.spec import ALGORITHMS, AUTO, QuerySpec

__all__ = ["TopKQuery", "CommunityView", "QueryResult", "ALGORITHMS", "AUTO"]

#: Deprecated alias.  The query type now lives in :mod:`repro.api.spec`
#: as :class:`QuerySpec` (same constructor signature plus the new
#: ``kernel`` / ``containment`` / ``cohesion`` / ``mode`` fields);
#: ``TopKQuery`` remains so existing imports and isinstance checks keep
#: working.
TopKQuery = QuerySpec


@dataclass(frozen=True)
class CommunityView:
    """Frozen, graph-free projection of one community.

    ``members`` are user-facing labels sorted by string representation, so
    two views of the same community — however it was enumerated — compare
    and serialise identically.
    """

    keynode: Hashable
    influence: float
    size: int
    members: Tuple[Hashable, ...]

    @classmethod
    def from_community(cls, community: Any) -> "CommunityView":
        """Project a :class:`Community` or :class:`TrussCommunity`."""
        return cls(
            keynode=community.keynode_label,
            influence=community.influence,
            size=community.num_vertices,
            members=tuple(sorted(community.vertices, key=str)),
        )

    def to_dict(self, include_members: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "keynode": self.keynode,
            "influence": self.influence,
            "size": self.size,
        }
        if include_members:
            out["members"] = list(self.members)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CommunityView":
        """Inverse of :meth:`to_dict` (the warm-start restore path).

        Labels survive a JSON round-trip unchanged for the common cases
        (ints, strings); exotic hashable labels (tuples, frozensets)
        would come back as their JSON projections and should not be
        persisted.
        """
        members = tuple(payload.get("members", ()))
        return cls(
            keynode=payload["keynode"],
            influence=float(payload["influence"]),
            size=int(payload.get("size", len(members))),
            members=members,
        )


@dataclass(frozen=True)
class QueryResult:
    """A served query: the answer plus its provenance.

    ``source`` records how the answer was produced:

    * ``"cold"`` — computed from scratch (cache miss);
    * ``"cache"`` — served entirely from a cached answer (``k' <= k``);
    * ``"extended"`` — a cached progressive cursor was *resumed* to reach
      a larger ``k`` (the paper's suffix property: no work is repeated).
    """

    query: TopKQuery
    algorithm: str
    graph_version: int
    communities: Tuple[CommunityView, ...]
    source: str
    elapsed_ms: float
    complete: bool = False
    plan_reason: Optional[str] = field(default=None, compare=False)
    #: Peel kernel in effect when the query was served (resolved name —
    #: ``python`` / ``array`` / ``numpy``); cache hits report the kernel
    #: any fresh work would have used.  Excluded from equality so cached
    #: answers compare identical across kernel reconfigurations.
    kernel: Optional[str] = field(default=None, compare=False)
    #: Execution-placement provenance: ``"worker:<id>"`` when a cluster
    #: worker process served the query, ``None`` for in-process
    #: execution.  Orthogonal to ``source`` (a worker can serve from its
    #: own cache) and excluded from equality — *where* a byte-identical
    #: answer was computed must never make two results unequal.
    worker: Optional[str] = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.communities)

    def __iter__(self):
        return iter(self.communities)

    @property
    def influences(self) -> Tuple[float, ...]:
        return tuple(v.influence for v in self.communities)

    def to_dict(self, include_members: bool = True) -> Dict[str, Any]:
        out = {
            "graph": self.query.graph,
            "graph_version": self.graph_version,
            "gamma": self.query.gamma,
            "k": self.query.k,
            "delta": self.query.delta,
            "algorithm": self.algorithm,
            "source": self.source,
            "elapsed_ms": self.elapsed_ms,
            "complete": self.complete,
            "kernel": self.kernel,
            "communities": [
                v.to_dict(include_members) for v in self.communities
            ],
        }
        if self.worker is not None:
            # Emitted only for worker-served results: in-process serving
            # keeps the exact pre-cluster wire shape (the record/replay
            # compatibility fixtures are byte-for-byte).
            out["worker"] = self.worker
        return out

    def to_json(self, include_members: bool = True) -> str:
        """Deterministic JSON (sorted keys, no whitespace variance)."""
        return json.dumps(
            self.to_dict(include_members), sort_keys=True, default=str
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryResult":
        """Inverse of :meth:`to_dict` (the remote-ResultSet decode path).

        The payload's query parameters rebuild a :class:`QuerySpec` via
        the legacy-tolerant wire decoder, so responses from any server
        version that emits the classic key set decode identically.
        """
        spec = QuerySpec.from_wire({k: v for k, v in payload.items() if k != "v"})
        return cls(
            query=spec,
            algorithm=str(payload.get("algorithm", spec.algorithm)),
            graph_version=int(payload.get("graph_version", 0)),
            communities=tuple(
                CommunityView.from_dict(view)
                for view in payload.get("communities", ())
            ),
            source=str(payload.get("source", "cold")),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
            complete=bool(payload.get("complete", False)),
            kernel=payload.get("kernel"),
            worker=payload.get("worker"),
        )
