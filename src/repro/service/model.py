"""Wire types of the service layer: queries and serializable results.

The algorithm layer returns :class:`~repro.core.community.Community`
forests that hold live references to the graph — ideal inside one query,
wrong for a serving layer that caches answers across queries and ships
them over a protocol.  :class:`CommunityView` is the frozen, graph-free
projection of a community (keynode label, influence, size, sorted member
labels); :class:`QueryResult` bundles the views with provenance (graph
version, resolved algorithm, cache source, latency) and serialises to
JSON.  Frozen views are what make the cache's prefix-reuse contract easy
to state: serving ``k' <= k`` from a cached top-``k`` returns the *same
bytes* as a fresh query.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import QueryParameterError

__all__ = ["TopKQuery", "CommunityView", "QueryResult", "ALGORITHMS", "AUTO"]

AUTO = "auto"

#: Algorithms the planner can dispatch to (mirrors the CLI choices).
ALGORITHMS = (
    AUTO,
    "localsearch",
    "localsearch-p",
    "forward",
    "onlineall",
    "backward",
    "truss",
    "noncontainment",
)


@dataclass(frozen=True)
class TopKQuery:
    """One top-k influential-community query against a registered graph."""

    graph: str
    gamma: int = 10
    k: int = 10
    algorithm: str = AUTO
    delta: float = 2.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryParameterError("k must be at least 1")
        if self.gamma < 1:
            raise QueryParameterError("gamma must be at least 1")
        if self.delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        if self.algorithm not in ALGORITHMS:
            raise QueryParameterError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {', '.join(ALGORITHMS)}"
            )


@dataclass(frozen=True)
class CommunityView:
    """Frozen, graph-free projection of one community.

    ``members`` are user-facing labels sorted by string representation, so
    two views of the same community — however it was enumerated — compare
    and serialise identically.
    """

    keynode: Hashable
    influence: float
    size: int
    members: Tuple[Hashable, ...]

    @classmethod
    def from_community(cls, community: Any) -> "CommunityView":
        """Project a :class:`Community` or :class:`TrussCommunity`."""
        return cls(
            keynode=community.keynode_label,
            influence=community.influence,
            size=community.num_vertices,
            members=tuple(sorted(community.vertices, key=str)),
        )

    def to_dict(self, include_members: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "keynode": self.keynode,
            "influence": self.influence,
            "size": self.size,
        }
        if include_members:
            out["members"] = list(self.members)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CommunityView":
        """Inverse of :meth:`to_dict` (the warm-start restore path).

        Labels survive a JSON round-trip unchanged for the common cases
        (ints, strings); exotic hashable labels (tuples, frozensets)
        would come back as their JSON projections and should not be
        persisted.
        """
        members = tuple(payload.get("members", ()))
        return cls(
            keynode=payload["keynode"],
            influence=float(payload["influence"]),
            size=int(payload.get("size", len(members))),
            members=members,
        )


@dataclass(frozen=True)
class QueryResult:
    """A served query: the answer plus its provenance.

    ``source`` records how the answer was produced:

    * ``"cold"`` — computed from scratch (cache miss);
    * ``"cache"`` — served entirely from a cached answer (``k' <= k``);
    * ``"extended"`` — a cached progressive cursor was *resumed* to reach
      a larger ``k`` (the paper's suffix property: no work is repeated).
    """

    query: TopKQuery
    algorithm: str
    graph_version: int
    communities: Tuple[CommunityView, ...]
    source: str
    elapsed_ms: float
    complete: bool = False
    plan_reason: Optional[str] = field(default=None, compare=False)
    #: Peel kernel in effect when the query was served (resolved name —
    #: ``python`` / ``array`` / ``numpy``); cache hits report the kernel
    #: any fresh work would have used.  Excluded from equality so cached
    #: answers compare identical across kernel reconfigurations.
    kernel: Optional[str] = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.communities)

    def __iter__(self):
        return iter(self.communities)

    @property
    def influences(self) -> Tuple[float, ...]:
        return tuple(v.influence for v in self.communities)

    def to_dict(self, include_members: bool = True) -> Dict[str, Any]:
        return {
            "graph": self.query.graph,
            "graph_version": self.graph_version,
            "gamma": self.query.gamma,
            "k": self.query.k,
            "delta": self.query.delta,
            "algorithm": self.algorithm,
            "source": self.source,
            "elapsed_ms": self.elapsed_ms,
            "complete": self.complete,
            "kernel": self.kernel,
            "communities": [
                v.to_dict(include_members) for v in self.communities
            ],
        }

    def to_json(self, include_members: bool = True) -> str:
        """Deterministic JSON (sorted keys, no whitespace variance)."""
        return json.dumps(
            self.to_dict(include_members), sort_keys=True, default=str
        )
