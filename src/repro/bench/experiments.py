"""Experiment drivers — one function per table/figure of the paper.

Each ``run_*`` function reproduces one evaluation artefact (see the
per-experiment index in DESIGN.md) and returns an
:class:`~repro.bench.harness.ExperimentReport`; the module's CLI prints
them::

    python -m repro.bench.experiments --eval fig8
    python -m repro.bench.experiments --eval all --out results.txt
    python -m repro.bench.experiments --eval all --quick   # smaller sweeps

Scaling notes (full details in DESIGN.md's substitution table):

* datasets are the synthetic Table-1 stand-ins, so absolute milliseconds
  are not comparable to the paper's C++ numbers — the reproduced claims
  are the *relative* ones (who wins, by what factor, and the trends);
* OnlineAll is omitted on the larger stand-ins for time (the paper omits
  it on Arabic/UK/Twitter for memory — same spirit: the global baseline
  does not scale);
* the large-k/γ sweep of Figure 10 uses k, γ scaled to the stand-ins'
  degeneracy (the paper's 250–2000 target its γmax of 2,488–3,247).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional

from ..baselines import (
    ICPIndex,
    backward,
    forward,
    forward_noncontainment,
    local_search_se,
    online_all,
    online_all_se,
)
from ..core.local_search import LocalSearch
from ..core.progressive import LocalSearchP
from ..core.truss_search import global_search_truss, top_k_truss_communities
from ..graph.core_decomposition import gamma_core, core_decomposition
from ..graph.connectivity import component_of
from ..graph.metrics import graph_statistics
from ..graph.storage import FileEdgeStore, IOCounter
from ..graph.subgraph import PrefixView
from ..workloads.datasets import PAPER_STATS, dataset_names, load_dataset
from ..workloads.dblp import synthetic_dblp
from .harness import ExperimentReport, Series, measure_ms
from .reporting import format_report

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

K_VALUES = (5, 10, 20, 50, 100)
GAMMA_VALUES = (5, 10, 20, 50)
FOUR_GRAPHS = ("wiki", "livejournal", "arabic", "uk")


def _ls_p_ms(graph, k: int, gamma: int, repeat: int = 3) -> float:
    return measure_ms(
        lambda: LocalSearchP(graph, gamma=gamma).run(k=k), repeat=repeat
    )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def run_table1(quick: bool = False) -> ExperimentReport:
    """Table 1: dataset statistics, stand-in vs paper."""
    report = ExperimentReport(
        "table1", "Statistics of graphs (synthetic stand-ins vs paper)"
    )
    report.header = [
        "Graph", "n", "m", "dmax", "davg", "gammamax",
        "paper n", "paper m", "paper gammamax",
    ]
    for name in dataset_names():
        graph = load_dataset(name)
        stats = graph_statistics(graph, name)
        pn, pm, _, _, pg = PAPER_STATS[name]
        report.rows.append([
            name,
            f"{stats.num_vertices:,}",
            f"{stats.num_edges:,}",
            f"{stats.max_degree:,}",
            f"{stats.avg_degree:.2f}",
            f"{stats.gamma_max}",
            f"{pn:,}",
            f"{pm:,}",
            f"{pg:,}",
        ])
    report.note(
        "Stand-ins preserve the size ordering, heavy-tailed degrees and "
        "deep cores of Table 1 at ~10^4-10^5 edge scale (DESIGN.md)."
    )
    return report


# ----------------------------------------------------------------------
# Figure 8 — vs global algorithms, gamma=10, vary k
# ----------------------------------------------------------------------
def run_fig8(quick: bool = False) -> ExperimentReport:
    """Figure 8: OnlineAll vs Forward vs LocalSearch-P (γ=10, vary k)."""
    report = ExperimentReport(
        "fig8", "Against existing global search algorithms (gamma=10, vary k)"
    )
    graphs = ("email", "youtube") if quick else dataset_names()
    onlineall_ok = {"email"} if quick else {"email", "youtube"}
    for name in graphs:
        graph = load_dataset(name)
        ls = Series("LocalSearch-P")
        fw = Series("Forward")
        oa = Series("OnlineAll")
        for k in K_VALUES:
            ls.add(k, _ls_p_ms(graph, k, 10))
            fw.add(k, measure_ms(lambda: forward(graph, k, 10), repeat=1))
            if name in onlineall_ok:
                oa.add(k, measure_ms(lambda: online_all(graph, k, 10), repeat=1))
            else:
                oa.add(k, None)
        report.add_series(name, oa)
        report.add_series(name, fw)
        report.add_series(name, ls)
    report.note(
        "OnlineAll omitted on larger stand-ins (interpreter time cap; the "
        "paper omits it on Arabic/UK/Twitter for out-of-memory)."
    )
    report.note(
        "Expected shape: OnlineAll and Forward flat in k; LocalSearch-P "
        "grows mildly with k and wins by orders of magnitude."
    )
    return report


# ----------------------------------------------------------------------
# Figure 9 — vary gamma
# ----------------------------------------------------------------------
def run_fig9(quick: bool = False) -> ExperimentReport:
    """Figure 9: OnlineAll/Forward vs LocalSearch-P (k=10, vary γ)."""
    report = ExperimentReport(
        "fig9", "Against existing global search algorithms (k=10, vary gamma)",
        x_label="gamma",
    )
    graphs = ("wiki",) if quick else FOUR_GRAPHS
    for name in graphs:
        graph = load_dataset(name)
        ls = Series("LocalSearch-P")
        fw = Series("Forward")
        for gamma in GAMMA_VALUES:
            ls.add(gamma, _ls_p_ms(graph, 10, gamma))
            fw.add(gamma, measure_ms(lambda: forward(graph, 10, gamma), repeat=1))
        report.add_series(name, fw)
        report.add_series(name, ls)
    report.note(
        "Expected shape: Forward flat in gamma; LocalSearch-P grows with "
        "gamma (deeper prefixes needed) but stays well below Forward."
    )
    return report


# ----------------------------------------------------------------------
# Figure 10 — large k and gamma
# ----------------------------------------------------------------------
def run_fig10(quick: bool = False) -> ExperimentReport:
    """Figure 10: Forward vs LocalSearch-P for large k and γ (scaled)."""
    report = ExperimentReport(
        "fig10",
        "Against Forward for large k and gamma "
        "(paper: 250-2000; scaled to stand-in degeneracy)",
    )
    large_k = (25, 50, 100) if quick else (25, 50, 100, 200)
    large_gamma = (20, 40, 60) if quick else (20, 40, 60, 80)
    for name in ("arabic", "twitter"):
        graph = load_dataset(name)
        fw_k = Series("Forward")
        ls_k = Series("LocalSearch-P")
        for k in large_k:
            fw_k.add(k, measure_ms(lambda: forward(graph, k, 40), repeat=1))
            ls_k.add(k, _ls_p_ms(graph, k, 40, repeat=2))
        report.add_series(f"{name} (gamma=40, vary k)", fw_k)
        report.add_series(f"{name} (gamma=40, vary k)", ls_k)

        fw_g = Series("Forward")
        ls_g = Series("LocalSearch-P")
        for gamma in large_gamma:
            fw_g.add(gamma, measure_ms(lambda: forward(graph, 100, gamma), repeat=1))
            ls_g.add(gamma, _ls_p_ms(graph, 100, gamma, repeat=2))
        group = f"{name} (k=100, vary gamma)"
        report.groups[group] = []
        report.add_series(group, fw_g)
        report.add_series(group, ls_g)
    report.note(
        "Expected shape: LocalSearch-P cost rises with k and gamma but "
        "remains below Forward even at the largest parameters."
    )
    return report


# ----------------------------------------------------------------------
# Figure 11 — vs Backward
# ----------------------------------------------------------------------
def run_fig11(quick: bool = False) -> ExperimentReport:
    """Figure 11: Backward vs LocalSearch-P (vary k, γ ∈ {10, 50})."""
    report = ExperimentReport(
        "fig11", "Against the existing local search algorithm Backward"
    )
    graphs = ("arabic",) if quick else ("arabic", "uk")
    for name in graphs:
        graph = load_dataset(name)
        for gamma in (10, 50):
            bw = Series("Backward")
            ls = Series("LocalSearch-P")
            for k in K_VALUES:
                bw.add(k, measure_ms(lambda: backward(graph, k, gamma), repeat=2))
                ls.add(k, _ls_p_ms(graph, k, gamma))
            group = f"{name} (gamma={gamma})"
            report.add_series(group, bw)
            report.add_series(group, ls)
    report.note(
        "Expected shape: both grow with k; Backward's quadratic re-peeling "
        "loses everywhere, and the gap widens with gamma."
    )
    return report


# ----------------------------------------------------------------------
# Figure 12 — LocalSearch-OA vs LocalSearch-P
# ----------------------------------------------------------------------
def run_fig12(quick: bool = False) -> ExperimentReport:
    """Figure 12: LocalSearch-OA vs LocalSearch-P (γ=10, vary k)."""
    report = ExperimentReport(
        "fig12", "LocalSearch with OnlineAll counting vs CountIC (gamma=10)"
    )
    graphs = ("wiki",) if quick else FOUR_GRAPHS
    for name in graphs:
        graph = load_dataset(name)
        oa = Series("LocalSearch-OA")
        ls = Series("LocalSearch-P")
        for k in K_VALUES:
            searcher = LocalSearch(graph, gamma=10, counting="onlineall")
            oa.add(k, measure_ms(lambda: searcher.search(k), repeat=2))
            ls.add(k, _ls_p_ms(graph, k, 10))
        report.add_series(name, oa)
        report.add_series(name, ls)
    report.note(
        "Expected shape: same prefixes accessed, but counting via the "
        "OnlineAll sweep pays a component BFS per keynode - CountIC wins."
    )
    return report


# ----------------------------------------------------------------------
# Figure 13 — growth ratio delta
# ----------------------------------------------------------------------
def run_fig13(quick: bool = False) -> ExperimentReport:
    """Figure 13: the exponential growth ratio δ (k=10, γ=10)."""
    report = ExperimentReport(
        "fig13", "Exponential growth ratio delta (k=10, gamma=10)",
        x_label="delta",
    )
    deltas = (1.5, 2, 3, 4, 8, 16, 32, 64, 128)
    graphs = ("wiki",) if quick else FOUR_GRAPHS
    for name in graphs:
        graph = load_dataset(name)
        series = Series("LocalSearch-P")
        for delta in deltas:
            series.add(
                delta,
                measure_ms(
                    lambda: LocalSearchP(graph, gamma=10, delta=float(delta))
                    .run(k=10),
                    repeat=3,
                    warmup=1,
                ),
            )
        report.add_series(name, series)
    report.note(
        "Expected shape: flat-ish with a shallow minimum around delta=2 "
        "and a drift upward for very large delta (overshooting prefixes)."
    )
    return report


# ----------------------------------------------------------------------
# Figure 14 — progressive enumeration latency
# ----------------------------------------------------------------------
def run_fig14(quick: bool = False) -> ExperimentReport:
    """Figure 14: time until the top-i community is reported (k=128)."""
    report = ExperimentReport(
        "fig14", "Progressive enumeration latency (k=128)", x_label="top-i"
    )
    tops = (1, 2, 4, 8, 16, 32, 64, 128)
    graphs = ("arabic",) if quick else ("arabic", "uk")
    for name in graphs:
        graph = load_dataset(name)
        for gamma in (10, 50):
            # LocalSearch (non-progressive): everything arrives at the end.
            start = time.perf_counter()
            LocalSearch(graph, gamma=gamma).search(128)
            flat_ms = (time.perf_counter() - start) * 1000.0

            latencies: Dict[int, float] = {}
            searcher = LocalSearchP(graph, gamma=gamma)
            for i, (community, seconds) in enumerate(
                searcher.stream_with_timestamps(), start=1
            ):
                if i in tops:
                    latencies[i] = seconds * 1000.0
                if i >= 128:
                    break

            ls = Series("LocalSearch")
            lsp = Series("LocalSearch-P")
            for i in tops:
                ls.add(i, flat_ms)
                lsp.add(i, latencies.get(i))
            group = f"{name} (gamma={gamma})"
            report.add_series(group, ls)
            report.add_series(group, lsp)
    report.note(
        "Expected shape: LocalSearch flat (all communities reported at "
        "termination); LocalSearch-P's latency grows with i and reports "
        "the first communities far earlier."
    )
    return report


# ----------------------------------------------------------------------
# Figure 15 — total processing time, LocalSearch vs LocalSearch-P
# ----------------------------------------------------------------------
def run_fig15(quick: bool = False) -> ExperimentReport:
    """Figure 15: progressive vs non-progressive total time (vary k)."""
    report = ExperimentReport(
        "fig15", "Progressive vs non-progressive total processing time"
    )
    graphs = ("arabic",) if quick else ("arabic", "uk")
    for name in graphs:
        graph = load_dataset(name)
        for gamma in (10, 50):
            ls = Series("LocalSearch")
            lsp = Series("LocalSearch-P")
            for k in K_VALUES:
                searcher = LocalSearch(graph, gamma=gamma)
                ls.add(k, measure_ms(lambda: searcher.search(k), repeat=3,
                                     warmup=1))
                lsp.add(k, _ls_p_ms(graph, k, gamma))
            group = f"{name} (gamma={gamma})"
            report.add_series(group, ls)
            report.add_series(group, lsp)
    report.note(
        "Expected shape: near-identical, LocalSearch-P slightly ahead "
        "(shared computation across rounds) despite reporting early."
    )
    return report


# ----------------------------------------------------------------------
# Figures 16/17 — semi-external algorithms
# ----------------------------------------------------------------------
def _se_graphs(quick: bool):
    # The SE baseline embeds a full OnlineAll sweep, whose interpreted cost
    # caps the usable graph size; youtube/wiki keep full-mode runtime sane
    # (the paper used its two largest graphs - same comparison, smaller n).
    return ("youtube",) if quick else ("youtube", "wiki")


def run_fig16(quick: bool = False) -> ExperimentReport:
    """Figure 16: OnlineAll-SE vs LocalSearch-SE total time (vary k)."""
    report = ExperimentReport(
        "fig16", "Semi-external algorithms: total processing time"
    )
    # Paper: gamma in {10, 50}; scaled to the SE stand-ins' degeneracy
    # (youtube's gammamax is 28) so the larger-gamma sweep stays feasible.
    gammas = (10,) if quick else (10, 15)
    with tempfile.TemporaryDirectory() as tmp:
        for name in _se_graphs(quick):
            graph = load_dataset(name)
            path = os.path.join(tmp, f"{name}.edges")
            FileEdgeStore.create(path, graph)
            for gamma in gammas:
                oa = Series("OnlineAll-SE")
                ls = Series("LocalSearch-SE")
                # OnlineAll-SE's cost is k-independent: measure once.
                store = FileEdgeStore(path, IOCounter())
                oa_ms = measure_ms(
                    lambda: online_all_se(graph, store, 10, gamma), repeat=1
                )
                for k in K_VALUES:
                    oa.add(k, oa_ms)
                    store_k = FileEdgeStore(path, IOCounter())
                    ls.add(k, measure_ms(
                        lambda: local_search_se(graph, store_k, k, gamma),
                        repeat=2,
                    ))
                group = f"{name} (gamma={gamma})"
                report.add_series(group, oa)
                report.add_series(group, ls)
    report.note(
        "OnlineAll-SE measured once per configuration (its full-scan cost "
        "is independent of k, matching the paper's flat line)."
    )
    return report


def run_fig17(quick: bool = False) -> ExperimentReport:
    """Figure 17: semi-external memory usage (size of visited graph)."""
    report = ExperimentReport(
        "fig17", "Semi-external algorithms: resident edges (fraction of m)",
        y_label="resident edges / m",
    )
    gammas = (10,) if quick else (10, 15)
    with tempfile.TemporaryDirectory() as tmp:
        for name in _se_graphs(quick):
            graph = load_dataset(name)
            m = graph.num_edges
            path = os.path.join(tmp, f"{name}.edges")
            FileEdgeStore.create(path, graph)
            for gamma in gammas:
                oa = Series("OnlineAll-SE")
                ls = Series("LocalSearch-SE")
                store = FileEdgeStore(path, IOCounter())
                result = online_all_se(graph, store, 10, gamma)
                oa_frac = result.visited_edges / m
                for k in K_VALUES:
                    oa.add(k, oa_frac)
                    store_k = FileEdgeStore(path, IOCounter())
                    res = local_search_se(graph, store_k, k, gamma)
                    ls.add(k, res.visited_edges / m)
                group = f"{name} (gamma={gamma})"
                report.add_series(group, oa)
                report.add_series(group, ls)
    report.note(
        "Expected shape: OnlineAll-SE visits the whole edge file; "
        "LocalSearch-SE holds only its final weight prefix."
    )
    return report


# ----------------------------------------------------------------------
# Figure 18 — non-containment queries
# ----------------------------------------------------------------------
def run_fig18(quick: bool = False) -> ExperimentReport:
    """Figure 18: non-containment queries, Forward vs LocalSearch-P."""
    report = ExperimentReport(
        "fig18", "Non-containment community queries (vary k)"
    )
    graphs = ("arabic",) if quick else ("arabic", "uk")
    for name in graphs:
        graph = load_dataset(name)
        fw = Series("Forward")
        ls = Series("LocalSearch-P")
        for k in K_VALUES:
            fw.add(k, measure_ms(
                lambda: forward_noncontainment(graph, k, 10), repeat=1
            ))
            ls.add(k, measure_ms(
                lambda: LocalSearchP(graph, gamma=10, noncontainment=True)
                .run(k=k),
                repeat=3,
            ))
        report.add_series(name, fw)
        report.add_series(name, ls)
    report.note(
        "Expected shape: LocalSearch-P clearly ahead; NC queries need "
        "somewhat deeper prefixes than containment queries (Section 5.1)."
    )
    return report


# ----------------------------------------------------------------------
# Figure 19 — gamma-truss community search
# ----------------------------------------------------------------------
def run_fig19(quick: bool = False) -> ExperimentReport:
    """Figure 19: GlobalSearch-Truss vs LocalSearch-Truss (γ=10)."""
    report = ExperimentReport(
        "fig19", "Influential gamma-truss community search (gamma=10)"
    )
    graphs = ("livejournal",) if quick else ("wiki", "livejournal")
    for name in graphs:
        graph = load_dataset(name)
        gs = Series("GlobalSearch-Truss")
        ls = Series("LocalSearch-Truss")
        # GlobalSearch-Truss cost is k-independent: measure once.
        gs_ms = measure_ms(lambda: global_search_truss(graph, 10, 10), repeat=1)
        for k in K_VALUES:
            gs.add(k, gs_ms)
            ls.add(k, measure_ms(
                lambda: top_k_truss_communities(graph, k, 10), repeat=2
            ))
        report.add_series(name, gs)
        report.add_series(name, ls)
    report.note(
        "Expected shape: LocalSearch-Truss wins by orders of magnitude; "
        "truss queries cost more than core queries (higher complexity, "
        "larger prefixes) - compare with fig8."
    )
    return report


# ----------------------------------------------------------------------
# Figures 20/21 — case study
# ----------------------------------------------------------------------
def run_case_study(quick: bool = False) -> ExperimentReport:
    """Figures 20/21: DBLP-style case study (top core vs truss community)."""
    report = ExperimentReport(
        "case", "Case study on the synthetic DBLP co-author network"
    )
    graph, planted = synthetic_dblp()
    n = graph.num_vertices

    core_result = LocalSearchP(graph, gamma=5).run(k=1)
    top_core = core_result.communities[0]
    truss_result = top_k_truss_communities(graph, 1, 6)
    top_truss = truss_result.communities[0]

    # Figure 21: the 5-core *community* (no influence constraint)
    # containing the top influential 5-community = the connected component
    # of its keynode in the 5-core of the whole graph.
    view = PrefixView.whole(graph)
    alive, _ = gamma_core(view, 5)
    blob = component_of(view, top_core.keynode, alive)

    # Section 6 remark: a gamma-truss community with influence tau lies in
    # a (gamma-1)-community with the same influence — check it directly.
    truss_view = PrefixView(graph, top_truss.keynode + 1)
    truss_alive, _ = gamma_core(truss_view, 5)
    enclosing = set(
        component_of(truss_view, top_truss.keynode, truss_alive)
    )
    contained = set(top_truss.vertex_ranks) <= enclosing

    core_rank = top_core.keynode + 1  # ranks are 0-based
    truss_rank = top_truss.keynode + 1
    report.header = ["artefact", "value"]
    report.rows = [
        ["researchers (n)", f"{n:,}"],
        ["top-1 5-community size", str(top_core.num_vertices)],
        ["top-1 5-community keynode",
         f"{top_core.keynode_label} (influence rank {core_rank}/{n})"],
        ["top-1 6-truss size", str(top_truss.num_vertices)],
        ["top-1 6-truss keynode",
         f"{top_truss.keynode_label} (influence rank {truss_rank}/{n})"],
        ["5-core community of same keynode", f"{len(blob):,} vertices"],
        ["truss inside 5-community",
         str(contained)],
    ]
    report.note(
        "Paper: 14-member 5-community (keynode rank 215/1743); 6-member "
        "6-truss (rank 339/1743); enclosing 5-core community of 1,148 "
        "vertices. Expected relations: truss smaller & denser with lower "
        "influence; plain 5-core community ~2 orders larger."
    )
    return report


# ----------------------------------------------------------------------
# Access-fraction claim (Section 3.1)
# ----------------------------------------------------------------------
def run_access_fraction(quick: bool = False) -> ExperimentReport:
    """Section 3.1 claim: size(G>=tau*)/size(G) is tiny for k=γ=10."""
    report = ExperimentReport(
        "access", "Accessed-subgraph fraction for k=10, gamma=10",
    )
    report.header = ["graph", "accessed size", "graph size", "fraction"]
    worst = 0.0
    for name in dataset_names():
        graph = load_dataset(name)
        searcher = LocalSearchP(graph, gamma=10)
        searcher.run(k=10)
        stats = searcher.stats
        frac = stats.accessed_fraction
        worst = max(worst, frac)
        report.rows.append([
            name,
            f"{stats.accessed_size:,}",
            f"{stats.graph_size:,}",
            f"{frac:.4%}",
        ])
    report.note(
        f"Worst-case fraction across stand-ins: {worst:.4%} (paper: "
        "< 0.073% across its graphs; stand-ins are ~4 orders smaller, so "
        "the same absolute prefixes are relatively larger)."
    )
    return report


# ----------------------------------------------------------------------
# Ablation: exponential vs linear growth (Remark, Section 3.3)
# ----------------------------------------------------------------------
def run_growth_ablation(quick: bool = False) -> ExperimentReport:
    """Remark §3.3: exponential vs fixed-increment (quadratic) growth."""
    report = ExperimentReport(
        "growth", "Growth-strategy ablation (gamma=50, vary k)",
        y_label="time (ms) / work (sizes summed)",
    )
    # gamma=50 queries need several growth rounds (deep prefixes), which
    # is where the fixed-increment strategy's quadratic re-peeling shows.
    graph = load_dataset("arabic")
    exp_t = Series("exponential (time ms)")
    lin_t = Series("linear (time ms)")
    exp_w = Series("exponential (total work)")
    lin_w = Series("linear (total work)")
    for k in (10, 50, 100, 200):
        exponential = LocalSearch(graph, gamma=50, growth="exponential")
        linear = LocalSearch(
            graph, gamma=50, growth="linear", linear_increment=64
        )
        exp_t.add(k, measure_ms(lambda: exponential.search(k), repeat=3))
        lin_t.add(k, measure_ms(lambda: linear.search(k), repeat=3))
        exp_w.add(k, float(exponential.search(k).stats.total_work))
        lin_w.add(k, float(linear.search(k).stats.total_work))
    report.add_series("arabic", exp_t)
    report.add_series("arabic", lin_t)
    report.add_series("arabic (work)", exp_w)
    report.add_series("arabic (work)", lin_w)
    report.note(
        "Expected shape: fixed increments re-peel h times for h rounds - "
        "total work grows quadratically vs the geometric series of "
        "exponential growth, validating the Remark of Section 3.3."
    )
    return report


# ----------------------------------------------------------------------
# Ablation: index-based vs online (Section 1 motivation)
# ----------------------------------------------------------------------
def run_index_ablation(quick: bool = False) -> ExperimentReport:
    """IndexAll build cost vs online LocalSearch query cost."""
    report = ExperimentReport(
        "index", "Index-based (IndexAll/ICP) vs online LocalSearch",
    )
    report.header = ["quantity", "value"]
    graph = load_dataset("email" if quick else "wiki")
    index = ICPIndex(graph)
    build_ms = measure_ms(lambda: index.build(), repeat=1)
    query_ms = measure_ms(lambda: index.query(10, 10), repeat=3)
    online_ms = _ls_p_ms(graph, 10, 10)
    agree = [c.influence for c in index.query(10, 10)] == (
        LocalSearchP(graph, gamma=10).run(k=10).influences
    )
    if online_ms > query_ms:
        amortise = f"{build_ms / (online_ms - query_ms):,.0f}"
    else:
        amortise = "never (online query is faster per query)"
    report.rows = [
        ["index build (all gammas)", f"{build_ms:,.1f} ms"],
        ["index entries stored", f"{index.index_entries():,}"],
        ["index query (k=10, gamma=10)", f"{query_ms:.3f} ms"],
        ["online LocalSearch-P query", f"{online_ms:.3f} ms"],
        ["answers agree", str(agree)],
        ["queries to amortise build", amortise],
    ]
    report.note(
        "The index costs a full multi-gamma materialisation up front and "
        "is locked to one weight vector; at reproduction scale the online "
        "LocalSearch-P query even beats the index lookup, so the index "
        "never amortises - the paper's motivation for index-free search."
    )
    return report


# ----------------------------------------------------------------------
# registry / CLI
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[bool], ExperimentReport]] = {
    "table1": run_table1,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "case": run_case_study,
    "access": run_access_fraction,
    "growth": run_growth_ablation,
    "index": run_index_ablation,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentReport:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'"
        )
    return runner(quick)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run and print experiments."""
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "--eval", default="all",
        help="experiment id (table1, fig8..fig19, case, access, growth, "
             "index) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sweeps / fewer datasets (CI-friendly)",
    )
    parser.add_argument(
        "--out", default=None, help="also append reports to this file"
    )
    args = parser.parse_args(argv)

    ids = list(EXPERIMENTS) if args.eval == "all" else [args.eval]
    outputs: List[str] = []
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(experiment_id, quick=args.quick)
        text = format_report(report)
        elapsed = time.perf_counter() - started
        text += f"\n\n(completed in {elapsed:.1f}s)\n"
        print(text)
        sys.stdout.flush()
        outputs.append(text)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write("\n".join(outputs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
