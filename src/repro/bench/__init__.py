"""Benchmark harness and experiment drivers (DESIGN.md S21).

* :mod:`~repro.bench.harness` — measurement protocol + report containers;
* :mod:`~repro.bench.reporting` — plain-text figure/table rendering;
* :mod:`~repro.bench.experiments` — one driver per paper table/figure,
  runnable via ``python -m repro.bench.experiments --eval <id>``.
"""

from .harness import ExperimentReport, Series, measure_ms
from .reporting import format_report, format_series_group, format_table

__all__ = [
    "ExperimentReport",
    "Series",
    "measure_ms",
    "format_report",
    "format_series_group",
    "format_table",
]
