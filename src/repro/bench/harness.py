"""Measurement harness shared by the experiment drivers and benchmarks.

Keeps the experiment code declarative: a :class:`Series` is one line of a
paper figure (algorithm name + x/y pairs), an :class:`ExperimentReport`
is one figure/table (id, title, the series or rows, free-form notes), and
:func:`measure_ms` is the paper's measurement protocol — run the query a
few times, report the average CPU time in milliseconds ("we run an
algorithm ... three times and report the average CPU time in
milliseconds", Section 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["measure_ms", "Series", "ExperimentReport"]


def measure_ms(
    fn: Callable[[], Any],
    repeat: int = 3,
    warmup: int = 0,
) -> float:
    """Average wall-clock milliseconds of ``fn()`` over ``repeat`` runs.

    ``warmup`` extra unmeasured runs precede the measured ones (used for
    the tiny sub-millisecond local searches where interpreter warm-up
    noise would otherwise dominate).
    """
    for _ in range(warmup):
        fn()
    total = 0.0
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total * 1000.0 / max(1, repeat)


@dataclass
class Series:
    """One line of a figure: ``(x, y)`` pairs for one algorithm."""

    label: str
    x_values: List[Any] = field(default_factory=list)
    y_values: List[Optional[float]] = field(default_factory=list)

    def add(self, x: Any, y: Optional[float]) -> None:
        """Append one measured point (``None`` = omitted, like the paper's
        out-of-memory entries)."""
        self.x_values.append(x)
        self.y_values.append(y)

    def ratio_to(self, other: "Series") -> List[Optional[float]]:
        """Pointwise ``other / self`` speedup ratios (None-safe)."""
        out: List[Optional[float]] = []
        for mine, theirs in zip(self.y_values, other.y_values):
            if mine is None or theirs is None or mine == 0:
                out.append(None)
            else:
                out.append(theirs / mine)
        return out


@dataclass
class ExperimentReport:
    """One reproduced figure or table."""

    experiment_id: str
    title: str
    x_label: str = "k"
    y_label: str = "time (ms)"
    groups: Dict[str, List[Series]] = field(default_factory=dict)
    rows: List[List[str]] = field(default_factory=list)
    header: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, group: str, series: Series) -> None:
        """Attach a measured series under a group (e.g. a dataset name)."""
        self.groups.setdefault(group, []).append(series)

    def note(self, text: str) -> None:
        """Attach a free-form observation to the report."""
        self.notes.append(text)
