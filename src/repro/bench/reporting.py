"""Plain-text rendering of experiment reports (paper-style series/tables).

The paper presents results as log-scale line plots; in a terminal we render
each figure as a table of milliseconds per (x, algorithm) with per-point
speedup ratios, which preserves exactly the information the reproduction
cares about: who wins, by what factor, and how the trend moves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .harness import ExperimentReport, Series

__all__ = ["format_table", "format_report", "format_series_group"]


def _fmt_cell(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    if value >= 0.01:
        return f"{value:.3f}"
    return f"{value:.2e}"


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))

    sep = "  ".join("-" * w for w in widths)
    out = [line(header), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_series_group(
    group: str, series_list: List[Series], x_label: str
) -> str:
    """Render one figure panel (one dataset) as a table of milliseconds."""
    if not series_list:
        return f"[{group}] (no data)"
    xs = series_list[0].x_values
    header = [x_label] + [s.label for s in series_list]
    rows = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for s in series_list:
            y = s.y_values[i] if i < len(s.y_values) else None
            row.append(_fmt_cell(y))
        rows.append(row)
    return f"[{group}]\n" + format_table(header, rows)


def format_report(report: ExperimentReport) -> str:
    """Render a full experiment report."""
    parts = [f"== {report.experiment_id}: {report.title} =="]
    if report.header and report.rows:
        parts.append(format_table(report.header, report.rows))
    for group, series_list in report.groups.items():
        parts.append(format_series_group(group, series_list, report.x_label))
    if report.notes:
        parts.append("notes:")
        parts.extend(f"  - {note}" for note in report.notes)
    return "\n\n".join(parts)
