"""ReproClient — a minimal asyncio client for the server line protocol.

Speaks the framing of :mod:`repro.server.transport`: one command line
out, a block of response lines back, terminated by a single ``.`` line
(dot-stuffed payload lines are unescaped transparently).  Used by the
test suite, the concurrency benchmark, and ``examples/server_client.py``
— and small enough to copy into any application that wants to talk to a
running ``repro serve --tcp`` process.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import replace
from typing import Any, Dict, List, Optional, Union

from ..api.spec import QuerySpec
from ..service.model import QueryResult
from .transport import TERMINATOR, dot_unstuff

__all__ = ["ReproClient"]


class ReproClient:
    """One connection to a :class:`~repro.server.transport.ReproServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.greeting: List[str] = []

    #: Response lines can be long (a `members` line lists every vertex of
    #: a community), far beyond asyncio's 64 KiB default read limit.
    READ_LIMIT = 16 * 1024 * 1024

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        limit: int = READ_LIMIT,
    ) -> "ReproClient":
        """Open a TCP (``host``/``port``) or unix-socket connection."""
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                unix_path, limit=limit
            )
        elif port is not None:
            reader, writer = await asyncio.open_connection(
                host, port, limit=limit
            )
        else:
            raise ValueError("need either port= or unix_path=")
        client = cls(reader, writer)
        client.greeting = await client._read_block()
        return client

    # ------------------------------------------------------------------
    async def request(self, line: str) -> List[str]:
        """Send one protocol line; return the response block's lines."""
        self._writer.write((line.rstrip("\n") + "\n").encode("utf-8"))
        await self._writer.drain()
        return await self._read_block()

    async def query(
        self,
        graph: str,
        *,
        k: int = 10,
        gamma: int = 10,
        algorithm: Optional[str] = None,
        delta: Optional[float] = None,
        members: bool = False,
        mode: str = "text",
    ) -> Union[List[str], Dict[str, Any]]:
        """Convenience wrapper around the ``query`` command.

        ``mode="text"`` (default) returns the rendered response lines;
        ``mode="json"`` requests the structured wire mode and returns
        the parsed :meth:`QueryResult.to_dict` payload — no text
        scraping required.
        """
        if mode not in ("text", "json"):
            raise ValueError(f"unknown query mode {mode!r} (text/json)")
        parts = [f"query {graph}", f"k={k}", f"gamma={gamma}"]
        if algorithm is not None:
            parts.append(f"algorithm={algorithm}")
        if delta is not None:
            parts.append(f"delta={delta}")
        if members:
            parts.append("members")
        if mode == "json":
            parts.append("json")
        lines = await self.request(" ".join(parts))
        if mode == "text":
            return lines
        return self._decode_json_response(lines)

    async def execute(
        self, spec: QuerySpec, members: bool = True
    ) -> QueryResult:
        """Run one :class:`~repro.api.spec.QuerySpec` remotely.

        Ships the spec's versioned wire document (``mode`` forced to
        ``json`` so the response is structured) and decodes the reply
        into the same :class:`~repro.service.model.QueryResult` shape
        the in-process engine returns — this is what backs a
        remote :class:`~repro.api.resultset.ResultSet`.
        """
        doc = replace(spec, mode="json").to_wire_dict()
        doc["members"] = bool(members)
        lines = await self.request(
            "query " + json.dumps(doc, sort_keys=True, separators=(",", ":"))
        )
        return QueryResult.from_dict(self._decode_json_response(lines))

    @staticmethod
    def _decode_json_response(lines: List[str]) -> Dict[str, Any]:
        if len(lines) != 1 or lines[0].startswith("error:"):
            raise ValueError(
                "server did not return a JSON response: "
                + (" / ".join(lines) or "(empty)")
            )
        return json.loads(lines[0])

    async def close(self) -> None:
        """Say ``quit`` (best effort) and close the connection."""
        with contextlib.suppress(Exception):
            self._writer.write(b"quit\n")
            await self._writer.drain()
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    # ------------------------------------------------------------------
    async def _read_block(self) -> List[str]:
        lines: List[str] = []
        while True:
            raw = await self._reader.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            text = raw.decode("utf-8").rstrip("\n")
            if text == TERMINATOR:
                return lines
            lines.append(dot_unstuff(text))
