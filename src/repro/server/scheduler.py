"""BatchScheduler — coalesce concurrent queries onto shared engine passes.

The paper's progressive order is what makes coalescing *correct*: the
result sequence for a ``(graph, gamma, algorithm, delta)`` family does
not depend on ``k`` — ``k`` only truncates it.  So when N queries of the
same family are in flight at once, ONE engine pass at ``max(k)``
satisfies all of them; every waiter gets its own prefix slice, byte-for-
byte identical to what a serial execution would have returned.

Batching strategy is *batch-while-busy* (no artificial latency by
default): the first arrival for an idle family dispatches immediately;
queries arriving while that pass runs on the shard accumulate and are
flushed together the moment it finishes.  Under serial traffic every
batch has width 1 and nothing is delayed; under concurrent load batch
width grows with pressure and each engine pass (= at most one cursor
advance) amortises across the whole batch.  An optional ``window_s``
adds a deliberate collection pause for throughput-tuned deployments.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..api.spec import FamilyKey, QuerySpec
from ..obs.trace import Span, Tracer
from ..service.engine import QueryEngine
from ..service.metrics import ServiceMetrics, family_label
from ..service.model import QueryResult
from .shards import ShardPool

__all__ = ["BatchKey", "CoalesceStats", "BatchScheduler"]

#: Source tag for queries served by slicing another query's engine pass.
COALESCED = "coalesced"


@dataclass(frozen=True)
class BatchKey:
    """Deprecated pre-PR-4 coalescing identity.

    The scheduler now keys batches off the spec's canonical
    :meth:`~repro.api.spec.QuerySpec.cache_key` (a
    :class:`~repro.api.spec.FamilyKey`), which also folds in the
    resolved peel kernel — this shape ignored it, so a ``kernel=python``
    query could be sliced from a numpy cursor's pass with wrong
    provenance.  Kept only for external constructors.
    """

    graph: str
    gamma: int
    algorithm: str
    delta: float


@dataclass
class CoalesceStats:
    """Scheduler-side counters (``batches`` == engine passes, which for
    progressive plans bounds the number of cursor advances)."""

    batches: int = 0
    queries: int = 0
    max_width: int = 0

    @property
    def mean_width(self) -> float:
        return self.queries / self.batches if self.batches else 0.0

    def record(self, width: int) -> None:
        self.batches += 1
        self.queries += width
        if width > self.max_width:
            self.max_width = width


class BatchScheduler:
    """Funnel async query submissions into coalesced engine executions.

    Parameters
    ----------
    engine:
        The (thread-safe) query engine; executions run on ``shards``.
    shards:
        Worker pool routing by graph name.
    metrics:
        Optional shared metrics sink (batch widths, queue depth, and a
        per-waiter ``observe_query`` for coalesced followers).
    max_batch:
        Upper bound on queries flushed per engine pass.
    window_s:
        Optional collection pause before the first flush of an idle
        family (0 = dispatch immediately, coalescing only under load).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When the transport
        handed :meth:`submit` a span, the batch records a ``scheduler``
        child span under the *lead* waiter's trace, and every coalesced
        follower's own trace gets a ``coalesced`` span tagged with the
        leader's trace id — the cross-trace link that explains where a
        follower's latency actually went.
    """

    def __init__(
        self,
        engine: QueryEngine,
        shards: ShardPool,
        metrics: Optional[ServiceMetrics] = None,
        max_batch: int = 64,
        window_s: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        self.engine = engine
        self.shards = shards
        self.metrics = metrics
        self.max_batch = max_batch
        self.window_s = window_s
        self.tracer = tracer
        self.stats = CoalesceStats()
        self._pending: Dict[
            FamilyKey,
            List[
                Tuple[
                    QuerySpec,
                    "asyncio.Future[QueryResult]",
                    Optional[Span],
                ]
            ],
        ] = {}
        self._draining: Set[FamilyKey] = set()
        # Strong references: the event loop only holds weak refs to
        # fire-and-forget tasks, and a GC'd drain task would strand every
        # waiter of its family forever.
        self._drain_tasks: Set["asyncio.Task[None]"] = set()

    # ------------------------------------------------------------------
    def key_for(self, query: QuerySpec) -> FamilyKey:
        """The coalescing key: the spec's canonical cache identity
        (``auto`` algorithm and peel kernel both resolved — queries on
        different kernels never share a pass, so each waiter's
        ``QueryResult.kernel`` provenance is exact)."""
        return query.cache_key()

    @property
    def queue_depth(self) -> int:
        return sum(len(waiters) for waiters in self._pending.values())

    def set_batch_window(self, window_s: float) -> float:
        """Retune the collection pause at runtime; returns the new value.

        The adaptive controller's actuator: a plain attribute write
        (atomic under the GIL) that every *subsequent* ``_drain`` reads
        at its top — in-flight drains finish under the window they
        started with, so there is no torn state to lock against.
        """
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        self.window_s = float(window_s)
        return self.window_s

    def pending_by_family(self) -> Dict[str, int]:
        """Waiters per family label, for the history collector's gauges.

        Called from the collector's thread while the event loop mutates
        ``_pending``; ``list(dict.items())`` is atomic under the GIL, so
        this sees a coherent point-in-time copy without locking.
        """
        return {
            family_label(key): len(waiters)
            for key, waiters in list(self._pending.items())
        }

    async def submit(
        self, query: QuerySpec, span: Optional[Span] = None
    ) -> QueryResult:
        """Serve one query, sharing an engine pass with concurrent peers."""
        key = self.key_for(query)
        future: "asyncio.Future[QueryResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.setdefault(key, []).append((query, future, span))
        if self.metrics is not None:
            self.metrics.observe_queue_depth(self.queue_depth)
        if key not in self._draining:
            self._draining.add(key)
            task = asyncio.ensure_future(self._drain(key))
            self._drain_tasks.add(task)
            task.add_done_callback(self._drain_tasks.discard)
        return await future

    # ------------------------------------------------------------------
    async def _drain(self, key: FamilyKey) -> None:
        """Flush ``key``'s pending queries until none remain."""
        try:
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
            while True:
                waiters = self._pending.get(key)
                if not waiters:
                    break
                batch = waiters[: self.max_batch]
                self._pending[key] = waiters[self.max_batch:]
                if self.metrics is not None:
                    self.metrics.observe_queue_depth(self.queue_depth)
                await self._run_batch(key, batch)
        finally:
            # No awaits between the emptiness check above and here, so a
            # new arrival either saw us in _draining (and enqueued) or
            # will start its own drain after the discard.
            self._draining.discard(key)
            if not self._pending.get(key):
                self._pending.pop(key, None)

    async def _run_batch(
        self,
        key: FamilyKey,
        batch: List[
            Tuple[QuerySpec, "asyncio.Future[QueryResult]", Optional[Span]]
        ],
    ) -> None:
        k_max = max(query.k for query, _, _ in batch)
        lead, _, lead_span = next(
            entry for entry in batch if entry[0].k == k_max
        )
        tracer = self.tracer
        bspan = (
            tracer.start_span("scheduler", lead_span, width=len(batch))
            if tracer is not None and lead_span is not None
            else None
        )
        # Cross-trace links: each traced follower's own trace records a
        # "coalesced" span covering its wait on the lead's engine pass,
        # tagged with the leader's trace id — the follower's latency is
        # explained without dumping the leader's trace.
        coalesced: Dict[int, Span] = {}
        if tracer is not None:
            for idx, (query, _, span) in enumerate(batch):
                if query is not lead and span is not None:
                    coalesced[idx] = tracer.start_span(
                        "coalesced",
                        span,
                        leader=(
                            lead_span.trace_id
                            if lead_span is not None
                            else "untraced"
                        ),
                        width=len(batch),
                    )
        started = time.perf_counter()
        try:
            # The backend-neutral pool surface: thread shards run the
            # engine in-process, the cluster pool routes the spec to the
            # worker process holding the family's cursor.
            result = await self.shards.execute_spec(
                self.engine, lead, span=bspan if bspan is not None else lead_span
            )
        except Exception as exc:  # noqa: BLE001 — propagate to every waiter
            if bspan is not None:
                tracer.end(bspan, error=type(exc).__name__)
            for idx, (_, future, _) in enumerate(batch):
                cspan = coalesced.get(idx)
                if cspan is not None:
                    tracer.end(cspan, error=type(exc).__name__)
                if not future.done():
                    future.set_exception(exc)
            return
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if bspan is not None:
            tracer.end(bspan, k_max=k_max, source=result.source)
        self.stats.record(len(batch))
        if self.metrics is not None:
            self.metrics.observe_batch(len(batch))
        for idx, (query, future, span) in enumerate(batch):
            cspan = coalesced.get(idx)
            if cspan is not None:
                tracer.end(cspan, source=COALESCED)
            if future.done():  # waiter went away (connection dropped)
                continue
            if query is lead:
                future.set_result(result)
            else:
                future.set_result(self._slice(result, query))
                if self.metrics is not None:
                    self.metrics.observe_query(
                        result.algorithm,
                        elapsed_ms,
                        COALESCED,
                        kernel=result.kernel,
                        family=key,
                        backend=(
                            "process" if result.worker is not None else None
                        ),
                        worker=result.worker,
                    )

    @staticmethod
    def _slice(result: QueryResult, query: QuerySpec) -> QueryResult:
        """A follower's view of the lead's result: its own k-prefix."""
        views = result.communities[: query.k]
        return QueryResult(
            query=query,
            algorithm=result.algorithm,
            graph_version=result.graph_version,
            communities=views,
            source=COALESCED,
            elapsed_ms=result.elapsed_ms,
            complete=result.complete and query.k >= len(result.communities),
            plan_reason=(
                "coalesced onto a concurrent batch sharing "
                "(graph, gamma, algorithm, delta)"
            ),
            kernel=result.kernel,
            worker=result.worker,
        )
