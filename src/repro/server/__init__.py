"""The concurrent serving tier (DESIGN: server subsystem).

:mod:`repro.service` (PR 1) made repeated queries cheap; this package
makes *concurrent clients* cheap, turning the transport-agnostic service
stack into a real network server:

* :mod:`~repro.server.transport` — asyncio TCP / unix-socket server for
  the existing line protocol; many clients per process, per-connection
  session scoping, graceful shutdown;
* :mod:`~repro.server.scheduler` — batch coalescing: concurrent queries
  sharing ``(graph, gamma, algorithm, delta)`` ride one engine pass (at
  most one cursor advance) and are sliced to their own ``k`` — correct
  because the progressive order is independent of ``k``;
* :mod:`~repro.server.shards` — per-graph worker threads keeping
  CPU-bound peeling off the event loop, with replication for hot graphs;
* :mod:`~repro.server.warmstart` — result-cache snapshots (frozen,
  JSON-stable CommunityViews) saved on shutdown and restored on boot,
  keyed by graph version so stale snapshots boot cold;
* :mod:`~repro.server.client` — a minimal asyncio client for tests,
  benchmarks, and demos.

Quickstart (in-process; see ``repro serve --tcp`` for the CLI)::

    import asyncio
    from repro.server import ReproClient, ReproServer

    async def main():
        server = ReproServer(shards=2)
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        print(await client.query("email", k=5, gamma=5))
        await client.close()
        await server.stop()

    asyncio.run(main())
"""

from .client import ReproClient
from .scheduler import BatchKey, BatchScheduler, CoalesceStats
from .shards import ShardPool, create_pool
from .transport import ReproServer
from .warmstart import WarmStart

__all__ = [
    "BatchKey",
    "BatchScheduler",
    "CoalesceStats",
    "ReproClient",
    "ReproServer",
    "ShardPool",
    "WarmStart",
    "create_pool",
]
