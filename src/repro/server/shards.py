"""ShardPool — per-graph worker executors keeping the event loop free.

Cursor advances are CPU-bound Python; running them on the asyncio event
loop would stall *every* connection while one graph peels.  The pool
gives each shard a single-threaded executor and routes work by graph
name (stable CRC32 hash), so

* queries against one graph serialise on that graph's shard — the
  natural unit of contention, since a ``(graph, gamma)`` family shares
  one :class:`~repro.core.progressive.ProgressiveCursor` and its lock;
* queries against *different* graphs land on different shards and never
  block each other;
* **hot graphs** can be replicated onto several consecutive shards
  (:meth:`ShardPool.replicate`): cache-hit traffic — the dominant kind
  on a hot graph — is lock-free slicing and parallelises across
  replicas, round-robin.  Replicas share the one graph object, and with
  it the one immutable :class:`~repro.graph.csr.CSRAdjacency` the peel
  kernels run on — replication adds workers, not memory.

The pool is deliberately transport-agnostic: :meth:`run` is the only
async method, and it simply awaits ``run_in_executor`` on the routed
shard.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, TypeVar

__all__ = ["ShardPool"]

T = TypeVar("T")


class ShardPool:
    """Route CPU-bound graph work onto per-shard worker threads.

    Parameters
    ----------
    num_shards:
        Number of single-threaded executors.  One per expected
        concurrently-hot graph is plenty; shards are cheap (one thread).
    replication:
        Optional ``{graph_name: copies}`` seed — equivalent to calling
        :meth:`replicate` per entry.
    """

    def __init__(
        self,
        num_shards: int = 1,
        replication: Optional[Mapping[str, int]] = None,
        thread_name_prefix: str = "repro-shard",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{thread_name_prefix}-{i}"
            )
            for i in range(num_shards)
        ]
        self._replication: Dict[str, int] = {}
        self._rr: Dict[str, int] = defaultdict(int)
        self._depth = [0] * num_shards
        self._shut_down = False
        for name, copies in dict(replication or {}).items():
            self.replicate(name, copies)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._executors)

    def replicate(self, graph: str, copies: int) -> None:
        """Serve ``graph`` from ``copies`` consecutive shards, round-robin."""
        if not 1 <= copies <= self.num_shards:
            raise ValueError(
                f"replication for {graph!r} must be in [1, {self.num_shards}]"
            )
        self._replication[graph] = copies

    def replication_of(self, graph: str) -> int:
        return self._replication.get(graph, 1)

    def home_shard(self, graph: str) -> int:
        """The graph's base shard (stable across processes: CRC32)."""
        return zlib.crc32(graph.encode("utf-8")) % self.num_shards

    def route(self, graph: str) -> int:
        """The shard index the *next* unit of work for ``graph`` goes to."""
        base = self.home_shard(graph)
        copies = self._replication.get(graph, 1)
        if copies <= 1:
            return base
        turn = self._rr[graph]
        self._rr[graph] = turn + 1
        return (base + turn % copies) % self.num_shards

    # ------------------------------------------------------------------
    async def run(self, graph: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` on ``graph``'s shard; await the result."""
        if self._shut_down:
            raise RuntimeError("shard pool is shut down")
        index = self.route(graph)
        self._depth[index] += 1
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executors[index], fn
            )
        finally:
            self._depth[index] -= 1

    def depths(self) -> List[int]:
        """In-flight work per shard (event-loop-thread view)."""
        return list(self._depth)

    def shutdown(self, wait: bool = True) -> None:
        """Stop all shard executors (idempotent)."""
        self._shut_down = True
        for executor in self._executors:
            executor.shutdown(wait=wait)
