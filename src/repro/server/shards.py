"""ShardPool — per-graph worker executors keeping the event loop free.

Cursor advances are CPU-bound Python; running them on the asyncio event
loop would stall *every* connection while one graph peels.  The pool
gives each shard a single-threaded executor and routes work by graph
name (stable CRC32 hash), so

* queries against one graph serialise on that graph's shard — the
  natural unit of contention, since a ``(graph, gamma)`` family shares
  one :class:`~repro.core.progressive.ProgressiveCursor` and its lock;
* queries against *different* graphs land on different shards and never
  block each other;
* **hot graphs** can be replicated onto several consecutive shards
  (:meth:`ShardPool.replicate`): cache-hit traffic — the dominant kind
  on a hot graph — is lock-free slicing and parallelises across
  replicas.  Dispatch **prefers an idle replica**: the base rotation is
  round-robin, but when the rotation's choice is mid-job and a twin
  sits idle, the work is steered to the idle twin instead (counted in
  ``ServiceMetrics.replica_idle_dispatches``) — a hot family never
  queues behind a busy replica while another idles.  Replicas share the
  one graph object, and with it the one immutable
  :class:`~repro.graph.csr.CSRAdjacency` the peel kernels run on —
  replication adds workers, not memory.

Shards are *threads*: ideal for cache-hit traffic and for keeping the
loop responsive, GIL-bound for concurrent CPU-heavy peels.  For true
multi-core execution :func:`create_pool` swaps in the process-backed
:class:`~repro.cluster.pool.ClusterPool` behind the same
:meth:`execute_spec` surface (``repro serve --workers N``); threads
remain the default and the fallback when multiprocessing is
unavailable.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, TypeVar

from ..obs.trace import use_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.spec import QuerySpec
    from ..obs.trace import Span, Tracer
    from ..service.cache import ResultCache
    from ..service.engine import QueryEngine
    from ..service.metrics import ServiceMetrics
    from ..service.model import QueryResult
    from ..service.registry import GraphRegistry

__all__ = ["ShardPool", "create_pool"]

T = TypeVar("T")


class ShardPool:
    """Route CPU-bound graph work onto per-shard worker threads.

    Parameters
    ----------
    num_shards:
        Number of single-threaded executors.  One per expected
        concurrently-hot graph is plenty; shards are cheap (one thread).
    replication:
        Optional ``{graph_name: copies}`` seed — equivalent to calling
        :meth:`replicate` per entry.
    metrics:
        Optional sink for routing counters (idle-replica steals).
    """

    backend = "thread"

    def __init__(
        self,
        num_shards: int = 1,
        replication: Optional[Mapping[str, int]] = None,
        thread_name_prefix: str = "repro-shard",
        metrics: Optional["ServiceMetrics"] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{thread_name_prefix}-{i}"
            )
            for i in range(num_shards)
        ]
        self.metrics = metrics
        self._replication: Dict[str, int] = {}
        self._rr: Dict[str, int] = defaultdict(int)
        self._depth = [0] * num_shards
        self._shut_down = False
        for name, copies in dict(replication or {}).items():
            self.replicate(name, copies)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._executors)

    def replicate(self, graph: str, copies: int) -> None:
        """Serve ``graph`` from ``copies`` consecutive shards, round-robin."""
        if not 1 <= copies <= self.num_shards:
            raise ValueError(
                f"replication for {graph!r} must be in [1, {self.num_shards}]"
            )
        self._replication[graph] = copies

    def replication_of(self, graph: str) -> int:
        return self._replication.get(graph, 1)

    def replication_map(self) -> Dict[str, int]:
        """The explicit replication table (graphs at 1 copy are elided)."""
        return dict(self._replication)

    def add_replica(self, graph: str) -> int:
        """Widen ``graph``'s rotation by one shard; returns the new count.

        The adaptive controller's grow actuator — a no-op at the
        ``num_shards`` ceiling, so policies may call it optimistically.
        """
        copies = min(self._replication.get(graph, 1) + 1, self.num_shards)
        self._replication[graph] = copies
        return copies

    def remove_replica(self, graph: str) -> int:
        """Shrink ``graph``'s rotation by one shard; returns the new count.

        Drain-before-remove is structural here: shard executors are
        shared infrastructure that outlive any replication entry, so
        shrinking only narrows *future* routing — work already queued on
        the dropped shard runs to completion on its still-live executor.
        """
        copies = max(1, self._replication.get(graph, 1) - 1)
        self._replication[graph] = copies
        return copies

    def home_shard(self, graph: str) -> int:
        """The graph's base shard (stable across processes: CRC32)."""
        return zlib.crc32(graph.encode("utf-8")) % self.num_shards

    def route(self, graph: str) -> int:
        """The shard index the *next* unit of work for ``graph`` goes to.

        Unreplicated graphs stay pinned to their home shard.  Replicated
        graphs rotate round-robin, **except** when the rotation's choice
        is busy and another replica is idle: the dispatch then steals
        the first idle replica (in rotation order), so load skew from
        long advances cannot stack queued work behind one replica while
        its twin does nothing.
        """
        base = self.home_shard(graph)
        copies = self._replication.get(graph, 1)
        if copies <= 1:
            return base
        turn = self._rr[graph]
        self._rr[graph] = turn + 1
        candidates = [
            (base + (turn + i) % copies) % self.num_shards
            for i in range(copies)
        ]
        chosen = candidates[0]
        if self._depth[chosen] > 0:
            for candidate in candidates[1:]:
                if self._depth[candidate] == 0:
                    chosen = candidate
                    if self.metrics is not None:
                        self.metrics.observe_replica_idle_dispatch()
                    break
        return chosen

    # ------------------------------------------------------------------
    async def run(self, graph: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` on ``graph``'s shard; await the result."""
        if self._shut_down:
            raise RuntimeError("shard pool is shut down")
        index = self.route(graph)
        self._depth[index] += 1
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executors[index], fn
            )
        finally:
            self._depth[index] -= 1

    async def execute_spec(
        self,
        engine: "QueryEngine",
        spec: "QuerySpec",
        span: Optional["Span"] = None,
    ) -> "QueryResult":
        """Serve one spec on the spec graph's shard.

        The backend-neutral execution surface shared with
        :class:`~repro.cluster.pool.ClusterPool` — the scheduler only
        ever calls this.  The upstream span is re-entered on the shard
        thread explicitly (``run_in_executor`` does not copy
        contextvars); a ``None`` span still wraps the call in
        :data:`~repro.obs.trace.NO_TRACE` so an untraced server query
        never mints a second root inside the engine.
        """

        def traced() -> "QueryResult":
            with use_span(span):
                return engine.execute(spec)

        return await self.run(spec.graph, traced)

    def depths(self) -> List[int]:
        """In-flight work per shard (event-loop-thread view)."""
        return list(self._depth)

    def shutdown(self, wait: bool = True) -> None:
        """Stop all shard executors (idempotent)."""
        self._shut_down = True
        for executor in self._executors:
            executor.shutdown(wait=wait)


def create_pool(
    backend: str = "auto",
    *,
    shards: int = 1,
    workers: Optional[int] = None,
    replication: Optional[Mapping[str, int]] = None,
    registry: Optional["GraphRegistry"] = None,
    cache: Optional["ResultCache"] = None,
    metrics: Optional["ServiceMetrics"] = None,
    tracer: Optional["Tracer"] = None,
):
    """Build the execution pool for a server: threads or processes.

    ``backend="auto"`` (the default) selects the process-backed
    :class:`~repro.cluster.pool.ClusterPool` exactly when ``workers``
    was requested *and* this platform can actually run it — otherwise
    threads.  ``backend="process"`` insists (still falling back to
    threads, with the worker count as the shard count, when
    multiprocessing is unavailable — a degraded server beats no
    server); ``backend="thread"`` never promotes.
    """
    if backend not in ("auto", "thread", "process"):
        raise ValueError(
            f"unknown pool backend {backend!r} (auto/thread/process)"
        )
    want_process = backend == "process" or (
        backend == "auto" and workers is not None
    )
    if want_process:
        from ..cluster.pool import ClusterPool

        count = workers if workers is not None else max(shards, 1)
        if registry is not None and ClusterPool.available():
            return ClusterPool(
                count,
                registry,
                cache=cache,
                metrics=metrics,
                replication=replication,
                tracer=tracer,
            )
        # Fallback: same worker count, thread-backed.
        return ShardPool(count, replication=replication, metrics=metrics)
    return ShardPool(shards, replication=replication, metrics=metrics)
