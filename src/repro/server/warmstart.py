"""Warm-start persistence — ResultCache snapshots that survive restarts.

A long-lived server's value is its warm state: progressive prefixes
already peeled, static answers already computed.  CommunityViews are
frozen and JSON-stable by design (the cache's byte-identity contract
rests on that), so the cache contents — *views*, not live cursors — can
be written to disk on shutdown and rehydrated on boot.

Restored progressive entries carry no live cursor; they serve any
``k <= len(views)`` as a pure slice ("cache"), and a larger ``k``
rebuilds a cursor from the registry's graph and re-peels (the stream is
deterministic, so the recomputed prefix matches the restored views).

Staleness is handled two ways.  Each snapshot entry records the graph
*version* it was computed against (in-process reloads invalidate, same
as the live cache), plus a content fingerprint (vertex/edge counts) —
the version counter is process-local, so the fingerprint is what
catches the underlying *data* changing between runs.  A mismatch on
either simply boots cold for that graph.  (A data change that preserves
both counts exactly would still slip through; snapshots are a cache, so
delete the file after any such in-place edit.)
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..service.cache import CacheKey, ProgressiveEntry, ResultCache, StaticEntry
from ..service.engine import progressive_cursor_factory
from ..service.model import CommunityView
from ..service.registry import GraphHandle, GraphRegistry

__all__ = ["WarmStart", "SNAPSHOT_FORMAT"]

#: Bump when the snapshot schema changes; mismatched files boot cold.
#: v2 added the peel kernel to each entry's cache identity (PR 4); v1
#: snapshots predate kernel-keyed caching and boot cold.
SNAPSHOT_FORMAT = 2


class WarmStart:
    """Snapshot/restore a :class:`ResultCache` at ``path`` (JSON).

    Parameters
    ----------
    path:
        Snapshot file location (written atomically).
    snapshot_interval:
        When set, :meth:`start_periodic` runs a background thread that
        re-snapshots every this-many seconds, so a crash — not just a
        clean shutdown — leaves a recent snapshot behind.  ``None``
        (the default) keeps the original save-on-shutdown-only
        behaviour.
    """

    def __init__(
        self, path: str, snapshot_interval: Optional[float] = None
    ) -> None:
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        self.path = str(path)
        self.snapshot_interval = snapshot_interval
        self.periodic_snapshots = 0
        self.periodic_errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start_periodic(
        self, cache: ResultCache, registry: GraphRegistry
    ) -> bool:
        """Start the background snapshot thread (no-op without an
        interval, or when already running).  Returns True if started."""
        if self.snapshot_interval is None or self._thread is not None:
            return False
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._periodic_loop,
            args=(cache, registry),
            name="repro-warmstart",
            daemon=True,
        )
        self._thread.start()
        return True

    def _periodic_loop(
        self, cache: ResultCache, registry: GraphRegistry
    ) -> None:
        assert self.snapshot_interval is not None
        while not self._stop.wait(self.snapshot_interval):
            try:
                self.save(cache, registry)
                self.periodic_snapshots += 1
            except Exception:  # noqa: BLE001 — a failed snapshot must
                # never take the serving process down; the next tick
                # (or the shutdown save) retries.
                self.periodic_errors += 1

    def stop_periodic(self) -> None:
        """Stop the background thread (idempotent; joins briefly)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    # ------------------------------------------------------------------
    def save(self, cache: ResultCache, registry: GraphRegistry) -> int:
        """Write every serialisable cache entry to disk; returns the count.

        The write is atomic (temp file + rename), so a crash mid-save
        leaves the previous snapshot intact.
        """
        entries: List[Dict[str, Any]] = []
        # One handle read per graph, memoized.  A GraphHandle is one
        # immutable (version, graph) pair swapped atomically by the
        # registry, so every entry saved below is checked, versioned,
        # and fingerprinted against a single consistent generation —
        # a live-mutation flip racing this loop can never interleave
        # two generations inside one graph's snapshot rows (entries
        # keyed under any other version are simply skipped as stale).
        handles: Dict[str, Optional[GraphHandle]] = {}
        for key in cache.keys():
            entry = cache.get(key)
            if key.graph not in handles:
                handles[key.graph] = self._build(registry, key.graph)
            handle = handles[key.graph]
            if handle is None or handle.version != key.version:
                continue  # the entry is already stale in this process
            payload: Dict[str, Any]
            if isinstance(entry, ProgressiveEntry):
                views = entry.views
                payload = {"kind": "progressive", "exhausted": entry.exhausted}
            elif isinstance(entry, StaticEntry):
                views = entry.views
                payload = {"kind": "static", "complete": entry.complete}
            else:
                continue
            payload.update(
                graph=key.graph,
                version=key.version,
                # Content fingerprint: the version counter is process-
                # local (every fresh boot builds version 1), so shape
                # guards against the *data* changing between runs.
                vertices=handle.num_vertices,
                edges=handle.num_edges,
                gamma=key.gamma,
                algorithm=key.algorithm,
                delta=key.delta,
                kernel=key.kernel,
                views=[view.to_dict() for view in views],
            )
            entries.append(payload)
        document = {"format": SNAPSHOT_FORMAT, "entries": entries}
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp_path, self.path)
        return len(entries)

    # ------------------------------------------------------------------
    def load(self, cache: ResultCache, registry: GraphRegistry) -> int:
        """Rehydrate snapshot entries into ``cache``; returns the count.

        Entries are skipped (never errored) when the snapshot is missing
        or unreadable, the graph is no longer registered, the freshly
        built graph's version differs from the snapshot's, or a live
        cache entry already exists for the key.
        """
        document = self._read()
        if document is None:
            return 0
        restored = 0
        # Same single-read-per-graph discipline as save(): every entry
        # restored for a graph is validated against one atomically-read
        # handle, so a mutation flip mid-load cannot mix generations.
        handles: Dict[str, Optional[GraphHandle]] = {}
        for raw in document.get("entries", ()):
            try:
                name = raw["graph"]
                kind = raw["kind"]
                version = raw["version"]
                views = tuple(
                    CommunityView.from_dict(view) for view in raw["views"]
                )
                gamma, delta = int(raw["gamma"]), float(raw["delta"])
                algorithm = raw["algorithm"]
                kernel = raw.get("kernel")
            except (KeyError, TypeError, ValueError):
                continue  # one malformed entry must not spoil the rest
            if name not in handles:
                handles[name] = self._build(registry, name)
            handle = handles[name]
            if handle is None or handle.version != version:
                continue
            if (
                raw.get("vertices") != handle.num_vertices
                or raw.get("edges") != handle.num_edges
            ):
                continue  # same version counter but different data
            key = CacheKey(
                graph=name,
                version=handle.version,
                gamma=gamma,
                algorithm=algorithm,
                delta=delta,
                kernel=kernel,
            )
            if cache.get(key) is not None:
                continue  # never clobber state computed since boot
            if kind == "progressive":
                entry: object = ProgressiveEntry(
                    cursor_factory=progressive_cursor_factory(
                        handle.graph, gamma, delta, kernel=kernel
                    ),
                    views=views,
                    exhausted=bool(raw.get("exhausted", False)),
                    max_cached_k=cache.max_cached_k,
                )
            elif kind == "static":
                entry = StaticEntry.capped(
                    views,
                    bool(raw.get("complete", False)),
                    cache.max_cached_k,
                )
            else:
                continue
            cache.put(key, entry)
            restored += 1
        return restored

    # ------------------------------------------------------------------
    def _read(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != SNAPSHOT_FORMAT
        ):
            return None
        return document

    @staticmethod
    def _build(registry: GraphRegistry, name: str) -> Optional[GraphHandle]:
        """Build ``name``'s graph to learn its current version (or None)."""
        if name not in registry:
            return None
        try:
            return registry.get(name)
        except ReproError:
            return None
