"""ReproServer — asyncio transport for the service line protocol.

Serves the exact protocol of :class:`~repro.service.shell.ServiceShell`
over TCP and/or a unix domain socket, many clients per process:

* **framing** — one command per line in; each response is a block of
  lines terminated by a single ``.`` line (SMTP-style; payload lines
  starting with ``.`` are dot-stuffed), so programmatic clients know
  exactly where a response ends;
* **per-connection session scoping** — every connection gets its own
  :class:`~repro.service.sessions.SessionManager`; session ids are
  meaningless outside their connection, and a dropped connection closes
  its sessions;
* **query path** — ``query`` commands go through the
  :class:`~repro.server.scheduler.BatchScheduler` (coalescing) onto the
  :class:`~repro.server.shards.ShardPool` (CPU off the event loop);
  every other command reuses the ServiceShell dispatch on the default
  executor, so the two frontends can never drift apart;
* **graceful shutdown** — the shell's ``shutdown`` command (or a
  signal/`stop()` call) stops accepting, unblocks connected clients,
  waits for in-flight handlers, snapshots the result cache via
  :class:`~repro.server.warmstart.WarmStart`, and stops the shard pool.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import io
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..errors import ReproError, UnknownSessionError
from ..obs.history import SLO, MetricsHistory, parse_slo
from ..obs.profiling import OnDemandProfiler
from ..obs.trace import (
    DEFAULT_SLOW_MS,
    DEFAULT_TRACE_SAMPLE,
    Tracer,
)
from ..service.cache import ResultCache
from ..service.engine import QueryEngine
from ..service.metrics import ServiceMetrics
from ..service.registry import GraphRegistry
from ..service.sessions import SessionManager
from ..service.shell import ServiceShell
from .scheduler import BatchScheduler
from .shards import ShardPool, create_pool
from .warmstart import WarmStart

__all__ = ["ReproServer", "dot_stuff", "dot_unstuff"]

#: End-of-response sentinel line.
TERMINATOR = "."


def dot_stuff(line: str) -> str:
    """Escape a payload line so it can never read as the terminator."""
    return "." + line if line.startswith(".") else line


def dot_unstuff(line: str) -> str:
    """Inverse of :func:`dot_stuff` (client side)."""
    return line[1:] if line.startswith("..") else line


class ReproServer:
    """The concurrent serving tier over one shared service stack.

    Parameters
    ----------
    registry:
        Optional pre-built graph registry (a fresh one, with the
        stand-in datasets pre-registered, is created by default).
    cache_size / max_cached_k:
        Result cache geometry (see :class:`ResultCache`).
    session_ttl:
        Idle seconds before a progressive session expires.
    shards / replication:
        Worker pool geometry (see :class:`ShardPool`).
    workers / backend:
        Execution backend selection (see
        :func:`~repro.server.shards.create_pool`): ``workers=N``
        promotes the pool to N worker *processes* over shared-memory
        CSR segments (:class:`~repro.cluster.pool.ClusterPool`);
        threads remain the default and the fallback when
        multiprocessing is unavailable.
    max_batch / batch_window_ms:
        Coalescing knobs (see :class:`BatchScheduler`).
    warmstart_path:
        When set, the result cache is restored from this snapshot on
        :meth:`start` and saved back on :meth:`stop`.
    metrics_port / metrics_host:
        When ``metrics_port`` is set (0 = ephemeral), :meth:`start`
        additionally binds a zero-dep HTTP exporter
        (:class:`~repro.obs.export.MetricsServer`) serving
        ``/metrics`` (Prometheus text), ``/metrics.json``, ``/traces``,
        ``/healthz``, ``/readyz``, ``/dashboard``, ``/history.json``
        and ``/profile``; the bound address is ``metrics_address``.
    trace_sample / slow_ms:
        Tracing knobs.  Observability is enabled when any of
        ``metrics_port`` / ``trace_sample`` / ``slow_ms`` / ``slo`` is
        set; ``trace_sample`` defaults to
        :data:`~repro.obs.trace.DEFAULT_TRACE_SAMPLE` when enabled
        (first query is always traced — the sampler fires on tick 0),
        and ``slow_ms`` marks slower traces as retained exemplars.
        A pre-built ``tracer`` overrides both.
    slo:
        Optional SLO spec — a ``"p95_ms=50,err_rate=0.01"`` string (see
        :func:`~repro.obs.history.parse_slo`) or a pre-built
        :class:`~repro.obs.history.SLO`.  Evaluated by the history
        collector each tick; drives ``/readyz`` and the
        ``repro_slo_*`` exposition.
    history_interval:
        Seconds between history collector samples (default 1.0).  The
        collector starts whenever observability is enabled.
    adaptive / controller:
        The adaptive control plane (off by default).  ``adaptive=True``
        builds a default :class:`~repro.control.AdaptiveController`
        (all three policies plus saturation-backpressure admission);
        passing ``controller=`` supplies a pre-configured one (custom
        policies, tenant quotas, cadence) — either way the server binds
        it to its own history/scheduler/pool/metrics, starts its loop
        with the listeners, and gates every ``query`` line through its
        admission check.  With the control plane on,
        ``batch_window_ms`` and ``replication`` become *initial* values
        the controller retunes at runtime.  Enabling it implies
        observability (the controller reads the history collector).
    """

    def __init__(
        self,
        registry: Optional[GraphRegistry] = None,
        *,
        cache_size: int = 256,
        max_cached_k: Optional[int] = None,
        session_ttl: float = 300.0,
        shards: int = 1,
        workers: Optional[int] = None,
        backend: str = "auto",
        replication: Optional[Mapping[str, int]] = None,
        max_batch: int = 64,
        batch_window_ms: float = 0.0,
        warmstart_path: Optional[str] = None,
        warmstart_interval: Optional[float] = None,
        metrics: Optional[ServiceMetrics] = None,
        preload_datasets: bool = True,
        metrics_port: Optional[int] = None,
        metrics_host: str = "127.0.0.1",
        trace_sample: Optional[float] = None,
        slow_ms: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        slo: Optional[Union[str, SLO]] = None,
        history_interval: float = 1.0,
        adaptive: bool = False,
        controller=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        obs_enabled = (
            metrics_port is not None
            or trace_sample is not None
            or slow_ms is not None
            or slo is not None
            or tracer is not None
            or adaptive
            or controller is not None
        )
        if tracer is None:
            # Observability opts in via any of its knobs; the tracer
            # object always exists (sample=0 = off) so every layer can
            # hold a reference unconditionally.
            sample = (
                trace_sample
                if trace_sample is not None
                else (DEFAULT_TRACE_SAMPLE if obs_enabled else 0.0)
            )
            tracer = Tracer(
                sample=sample,
                slow_ms=slow_ms if slow_ms is not None else DEFAULT_SLOW_MS,
            )
        self.tracer = tracer
        self.slo: Optional[SLO] = (
            parse_slo(slo) if isinstance(slo, str) else slo
        )
        self.history: Optional[MetricsHistory] = (
            MetricsHistory(
                self.metrics,
                trace_store=self.tracer.store,
                interval_s=history_interval,
                slo=self.slo,
                gauges=self._history_gauges,
            )
            if obs_enabled
            else None
        )
        self.metrics_port = metrics_port
        self.metrics_host = metrics_host
        self.metrics_server = None
        self.metrics_address: Optional[Tuple[str, int]] = None
        self.registry = (
            registry
            if registry is not None
            else GraphRegistry(preload_datasets=preload_datasets)
        )
        self.cache = ResultCache(cache_size, max_cached_k=max_cached_k)
        self.engine = QueryEngine(
            self.registry,
            cache=self.cache,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.profiler: Optional[OnDemandProfiler] = (
            OnDemandProfiler() if obs_enabled else None
        )
        if self.profiler is not None:
            self.engine.profiler = self.profiler
        self.shards = create_pool(
            backend,
            shards=shards,
            workers=workers,
            replication=replication,
            registry=self.registry,
            cache=self.cache,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.scheduler = BatchScheduler(
            self.engine,
            self.shards,
            metrics=self.metrics,
            max_batch=max_batch,
            window_s=batch_window_ms / 1000.0,
            tracer=self.tracer,
        )
        self.controller = None
        if adaptive or controller is not None:
            from ..control import AdaptiveController, AdmissionController

            if controller is None:
                controller = AdaptiveController(
                    admission=AdmissionController(
                        max_queue_depth=max(64, 4 * max_batch),
                        metrics=self.metrics,
                    ),
                )
            controller.bind(
                history=self.history,
                scheduler=self.scheduler,
                pool=self.shards,
                metrics=self.metrics,
            )
            self.controller = controller
        self.session_ttl = session_ttl
        if warmstart_interval is not None and warmstart_path is None:
            raise ValueError("warmstart_interval requires warmstart_path")
        self.warmstart = (
            WarmStart(warmstart_path, snapshot_interval=warmstart_interval)
            if warmstart_path is not None
            else None
        )
        self.restored_entries = 0
        self.saved_entries = 0
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.unix_path: Optional[str] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: Dict["asyncio.Task[None]", asyncio.StreamWriter] = {}
        self._busy: Set["asyncio.Task[None]"] = set()
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = False

    # ------------------------------------------------------------------
    async def start(
        self,
        tcp: Optional[Tuple[str, int]] = None,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind listeners (TCP ``(host, port)`` — port 0 for ephemeral —
        and/or a unix socket path) and restore the warm-start snapshot."""
        if tcp is None and unix_path is None:
            raise ValueError("need at least one of tcp=(host, port), unix_path")
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        start_workers = getattr(self.shards, "start_workers", None)
        if start_workers is not None:
            # Worker process spawns block (especially under the spawn
            # start method): pay them at boot, off the event loop, not
            # on the first query.
            await self._loop.run_in_executor(None, start_workers)
        if self.warmstart is not None:
            # Graph builds during restore are CPU-bound: off the loop.
            self.restored_entries = await self._loop.run_in_executor(
                None, self.warmstart.load, self.cache, self.registry
            )
            # Periodic snapshots (when configured) keep the cache warm
            # across crashes, not just clean shutdowns; the thread is
            # the WarmStart's own and never touches the event loop.
            self.warmstart.start_periodic(self.cache, self.registry)
        if self.history is not None:
            self.history.start()
        if self.controller is not None:
            self.controller.start()
        if self.metrics_port is not None and self.metrics_server is None:
            from ..obs.export import MetricsServer

            self.metrics_server = MetricsServer(
                self.metrics,
                trace_store=self.tracer.store,
                host=self.metrics_host,
                port=self.metrics_port,
                history=self.history,
                readiness=self._readiness,
                profiler=self.profiler,
                control=(
                    self.controller.document
                    if self.controller is not None
                    else None
                ),
            )
            self.metrics_address = self.metrics_server.start()
        if tcp is not None:
            host, port = tcp
            server = await asyncio.start_server(self._handle, host, port)
            self._servers.append(server)
            self.tcp_address = server.sockets[0].getsockname()[:2]
        if unix_path is not None:
            await self._guard_live_socket(unix_path)
            server = await asyncio.start_unix_server(
                self._handle, path=unix_path
            )
            self._servers.append(server)
            self.unix_path = unix_path

    @staticmethod
    async def _guard_live_socket(path: str) -> None:
        """Refuse to bind over a unix socket a live server still answers.

        asyncio's unix bind *unconditionally* removes an existing socket
        file before binding — which conveniently clears the leftover of
        a ``kill -9``'d predecessor, but would also silently steal the
        path from a running server.  Probe first: a dead leftover is
        left for the bind to clear; a responding one is an error.
        """
        if not os.path.exists(path):
            return
        try:
            _, writer = await asyncio.open_unix_connection(path)
        except OSError:
            return  # stale leftover: the bind will remove and replace it
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
        raise OSError(
            errno.EADDRINUSE,
            f"unix socket {path!r} is in use by a live server",
        )

    def request_shutdown(self) -> None:
        """Ask for a graceful stop.  Thread-safe: the shell's ``shutdown``
        command runs on an executor thread, signal handlers on the loop."""
        loop, event = self._loop, self._shutdown_requested
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then stop gracefully."""
        assert self._shutdown_requested is not None, "call start() first"
        await self._shutdown_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful stop: close listeners, drain handlers, snapshot, halt."""
        if self._stopped:
            return
        self._stopped = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        # Unblock handlers parked on readline.  Handlers that are mid-
        # command keep their transports so the in-flight response still
        # reaches the client (e.g. the `shutdown` acknowledgement).
        current = asyncio.current_task()
        for task, writer in list(self._connections.items()):
            if task not in self._busy:
                writer.close()
        pending = [
            task
            for task in self._connections
            if task is not current and not task.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        for writer in self._connections.values():  # stragglers, if any
            writer.close()
        pending = [
            task
            for task in self._connections
            if task is not current and not task.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=2.0)
        if self.warmstart is not None and self._loop is not None:
            self.warmstart.stop_periodic()
            self.saved_entries = await self._loop.run_in_executor(
                None, self.warmstart.save, self.cache, self.registry
            )
        if self.controller is not None:
            self.controller.stop()
        self.shards.shutdown(wait=False)
        if self.history is not None:
            self.history.stop()
        if self.metrics_server is not None:
            self.metrics_server.stop()
        if self.unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.unix_path)

    # ------------------------------------------------------------------
    def _history_gauges(self) -> Dict[str, Any]:
        """Server-side gauges sampled into each history tick."""
        return {"pending_families": self.scheduler.pending_by_family()}

    def _readiness(self) -> Dict[str, Any]:
        """The ``/readyz`` document: worker liveness + SLO verdict.

        Liveness uses the cluster pool's non-mutating probe (thread
        pools have no processes to die and always read ready); dead
        workers and breached objectives each contribute a reason, and
        :meth:`~repro.cluster.pool.ClusterPool.health_check` (the
        mutating recovery path) flips the answer back once the worker
        is restarted.
        """
        reasons: List[str] = []
        doc: Dict[str, Any] = {"ready": True, "reasons": reasons}
        liveness = getattr(self.shards, "liveness", None)
        if liveness is not None:
            workers = liveness()
            doc["workers"] = workers
            dead = sorted(tag for tag, alive in workers.items() if not alive)
            if dead:
                reasons.append(f"dead workers: {', '.join(dead)}")
        if self.history is not None and self.slo is not None:
            status = self.history.slo_status()
            if status is not None:
                doc["slo"] = status
                if not status["ok"]:
                    breached = sorted(
                        name
                        for name, objective in status["objectives"].items()
                        if not objective["ok"]
                    )
                    reasons.append(f"slo breach: {', '.join(breached)}")
        doc["ready"] = not reasons
        return doc

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections[task] = writer
        self.metrics.connection_opened()
        sessions = SessionManager(
            self.registry, ttl_seconds=self.session_ttl, metrics=self.metrics
        )
        buffer = io.StringIO()
        shell = ServiceShell(
            self.engine,
            sessions,
            buffer,
            metrics=self.metrics,
            on_shutdown=self.request_shutdown,
            tracer=self.tracer,
        )
        loop = asyncio.get_running_loop()
        try:
            await self._send(
                writer,
                [
                    f"repro server: {len(self.registry.names())} graphs "
                    "registered; type 'help' for the protocol"
                ],
            )
            while not (
                self._shutdown_requested is not None
                and self._shutdown_requested.is_set()
            ):
                # readuntil (not readline) so an over-limit line leaves
                # the buffer intact: LimitOverrunError does not consume,
                # which makes the discard below deterministic whether the
                # oversized line is fully buffered or still arriving.
                try:
                    raw = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    raw = eof.partial  # final unterminated line, if any
                    if not raw:
                        break
                except asyncio.LimitOverrunError:
                    # The rest of the line is unrecoverable: consume it
                    # (closing with unread data would RST away our
                    # response), answer, and hang up.  If the peer is
                    # streaming beyond any reasonable line (discard cap
                    # hit), skip the courtesy reply — it could not
                    # survive the RST anyway.
                    if await self._discard_partial_line(reader):
                        with contextlib.suppress(Exception):
                            await self._send(
                                writer, ["error: protocol line too long"]
                            )
                    break
                # Busy = mid-command: stop() will let the response flush
                # before tearing this connection down.
                self._busy.add(task)
                try:
                    try:
                        line = raw.decode("utf-8")
                    except UnicodeDecodeError:
                        await self._send(writer, ["error: lines must be utf-8"])
                        continue
                    head = line.split(maxsplit=1)
                    command = head[0].lower() if head else ""
                    if command == "query":
                        await self._send(writer, await self._serve_query(line))
                    elif command in ("quit", "exit"):
                        await self._send(writer, ["bye"])
                        break
                    else:
                        # Everything else (load/session/metrics/help/
                        # shutdown) reuses the shell dispatch, off the
                        # event loop.
                        keep_going = await loop.run_in_executor(
                            None, shell.execute_line, line
                        )
                        await self._send(writer, self._drain(buffer))
                        if not keep_going:
                            break
                finally:
                    self._busy.discard(task)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.pop(task, None)
            self.metrics.connection_closed()
            self._close_sessions(sessions)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_query(self, line: str) -> List[str]:
        """Parse + schedule one ``query`` line; render shell-identical.

        The raw remainder goes straight into
        :meth:`ServiceShell.parse_query_line`, so the transport accepts
        exactly what the stdio shell does: the ``key=value`` token
        grammar *and* the versioned wire-JSON document
        (:meth:`~repro.api.spec.QuerySpec.from_wire`).  ``spec.mode``
        selects the structured one-line JSON response (same bytes as
        the stdio shell's).
        """
        # The trace root is minted here, at the serving edge, before the
        # line is even parsed — the sampling decision happens exactly
        # once per query and is threaded down explicitly (spans ride the
        # scheduler's waiter tuples; contextvars don't survive
        # run_in_executor hops).
        span = self.tracer.maybe_start("transport")
        try:
            parts = line.strip().split(maxsplit=1)
            rest = parts[1] if len(parts) > 1 else ""
            spec, members = ServiceShell.parse_query_line(rest)
            if span is not None:
                span.annotate(graph=spec.graph, k=spec.k, gamma=spec.gamma)
            if self.controller is not None:
                # Admission runs before the scheduler accepts the work:
                # a refusal must not consume the queue capacity it
                # protects.  Raises AdmissionRejected (a ServiceError),
                # rendered below as the typed 429-style error line.
                self.controller.admit(
                    spec.tenant, self.scheduler.queue_depth
                )
            result = await self.scheduler.submit(spec, span=span)
            # The trace is finalised before the response bytes leave, so
            # a client that queries then immediately scrapes /traces
            # always sees its own trace.
            self.tracer.end(span, source=result.source)
            return ServiceShell.render_result(
                result, members, spec.mode == "json"
            )
        except (ReproError, ValueError, OSError) as exc:
            self.tracer.end(span, error=type(exc).__name__)
            self.metrics.observe_error(kind=type(exc).__name__)
            return [f"error: {exc}"]

    # ------------------------------------------------------------------
    @staticmethod
    async def _discard_partial_line(
        reader: asyncio.StreamReader, cap: int = 8 * 1024 * 1024
    ) -> bool:
        """Swallow the remainder of an oversized line (bounded by ``cap``).

        Returns True when the line was fully consumed (newline or EOF
        reached) — i.e. a response sent now can actually be delivered —
        and False when the cap was exhausted with the peer still
        streaming.
        """
        discarded = 0
        while discarded < cap:
            chunk = await reader.read(64 * 1024)
            if not chunk or b"\n" in chunk:
                return True
            discarded += len(chunk)
        return False

    @staticmethod
    def _drain(buffer: io.StringIO) -> List[str]:
        text = buffer.getvalue()
        buffer.seek(0)
        buffer.truncate(0)
        if not text:
            return []
        return text.split("\n")[:-1] if text.endswith("\n") else text.split("\n")

    @staticmethod
    def _close_sessions(sessions: SessionManager) -> None:
        for row in sessions.active():
            with contextlib.suppress(UnknownSessionError):
                sessions.close(str(row["session_id"]))

    async def _send(
        self, writer: asyncio.StreamWriter, lines: Iterable[str]
    ) -> None:
        payload: List[str] = []
        for line in lines:
            for part in line.split("\n"):
                payload.append(dot_stuff(part))
        payload.append(TERMINATOR)
        writer.write(("\n".join(payload) + "\n").encode("utf-8"))
        await writer.drain()
