"""Definition-level reference implementations (correctness oracles).

These deliberately naive algorithms compute influential communities
directly from the definitions, with no shared machinery with the fast
paths, so the test suite can cross-validate every optimised algorithm
against an independent derivation:

* a vertex ``u`` is a keynode iff ``u`` belongs to the γ-core of
  ``G>=w(u)`` (equivalently: some min-degree-γ subgraph has influence
  exactly ``w(u)``);
* the influential γ-community with influence ``w(u)`` is the connected
  component containing ``u`` of the γ-core of ``G>=w(u)`` — connected and
  cohesive by construction, and maximal because the γ-core is maximal and
  any same-influence supergraph would live in the same threshold subgraph
  (Lemma 3.3 guarantees uniqueness);
* non-containment communities are those with no other community strictly
  inside (Definition 5.1);
* the truss analogue replaces the γ-core with the γ-truss.

Everything here is O(n · m) or worse — use only on small graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from ..graph.connectivity import component_of
from ..graph.core_decomposition import gamma_core
from ..graph.subgraph import PrefixView
from ..graph.truss_decomposition import gamma_truss
from ..graph.weighted_graph import WeightedGraph

__all__ = [
    "reference_keynodes",
    "reference_communities",
    "reference_top_k",
    "reference_noncontainment_communities",
    "reference_truss_communities",
    "reference_truss_top_k",
    "is_influential_community",
]


def reference_keynodes(graph: WeightedGraph, gamma: int) -> List[int]:
    """All keynode ranks, by definition, in increasing rank order."""
    out: List[int] = []
    for u in range(graph.num_vertices):
        view = PrefixView(graph, u + 1)
        alive, _ = gamma_core(view, gamma)
        if alive[u]:
            out.append(u)
    return out


def reference_communities(
    graph: WeightedGraph, gamma: int
) -> List[Tuple[float, FrozenSet[int]]]:
    """All influential γ-communities as ``(influence, member ranks)``.

    Sorted by decreasing influence.  O(n · m).
    """
    out: List[Tuple[float, FrozenSet[int]]] = []
    for u in range(graph.num_vertices):
        view = PrefixView(graph, u + 1)
        alive, _ = gamma_core(view, gamma)
        if not alive[u]:
            continue
        members = component_of(view, u, alive)
        out.append((graph.weight(u), frozenset(members)))
    out.sort(key=lambda pair: -pair[0])
    return out


def reference_top_k(
    graph: WeightedGraph, k: int, gamma: int
) -> List[Tuple[float, FrozenSet[int]]]:
    """The top-``k`` communities by the reference derivation."""
    return reference_communities(graph, gamma)[:k]


def reference_noncontainment_communities(
    graph: WeightedGraph, gamma: int
) -> List[Tuple[float, FrozenSet[int]]]:
    """All non-containment communities (Definition 5.1), decreasing influence.

    A community is non-containment iff no *other* community is a strict
    subset of it.  O(c² · size) over the c communities.
    """
    communities = reference_communities(graph, gamma)
    out = []
    for influence, members in communities:
        contains_other = any(
            other < members for _, other in communities if other != members
        )
        if not contains_other:
            out.append((influence, members))
    return out


def reference_truss_communities(
    graph: WeightedGraph, gamma: int
) -> List[Tuple[float, FrozenSet[Tuple[int, int]]]]:
    """All influential γ-truss communities as ``(influence, edge set)``.

    For each candidate keynode ``u``: compute the γ-truss of ``G>=w(u)``;
    if ``u`` survives with at least one edge, its community is the
    connected component of ``u`` in the truss subgraph.  Sorted by
    decreasing influence.
    """
    out: List[Tuple[float, FrozenSet[Tuple[int, int]]]] = []
    for u in range(graph.num_vertices):
        view = PrefixView(graph, u + 1)
        adj, _ = gamma_truss(view, gamma)
        if not adj[u]:
            continue
        # BFS over the truss subgraph from u; collect component edges.
        seen = {u}
        queue = deque([u])
        edges: Set[Tuple[int, int]] = set()
        while queue:
            x = queue.popleft()
            for y in adj[x]:
                edges.add((x, y) if x < y else (y, x))
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        out.append((graph.weight(u), frozenset(edges)))
    out.sort(key=lambda pair: -pair[0])
    return out


def reference_truss_top_k(
    graph: WeightedGraph, k: int, gamma: int
) -> List[Tuple[float, FrozenSet[Tuple[int, int]]]]:
    """The top-``k`` truss communities by the reference derivation."""
    return reference_truss_communities(graph, gamma)[:k]


def is_influential_community(
    graph: WeightedGraph, members: Set[int], gamma: int
) -> bool:
    """Check Definition 2.2 directly for an arbitrary member-rank set.

    Verifies connectivity, cohesiveness (min induced degree >= γ) and
    maximality (the set equals the component of its minimum-weight vertex
    in the γ-core of the corresponding threshold subgraph).
    """
    if not members:
        return False
    keynode = max(members)  # max rank = min weight
    view = PrefixView(graph, keynode + 1)
    if not all(r <= keynode for r in members):
        return False
    alive, _ = gamma_core(view, gamma)
    if not alive[keynode]:
        return False
    component = set(component_of(view, keynode, alive))
    return component == set(members)
