"""The paper's primary contribution (DESIGN.md S6–S11, S17).

* :mod:`~repro.core.count` — CountIC / ConstructCVS (Algorithms 2, 5);
* :mod:`~repro.core.enumerate` — EnumIC / EnumIC-P (Algorithm 3);
* :mod:`~repro.core.local_search` — LocalSearch (Algorithm 1), the
  instance-optimal top-k search;
* :mod:`~repro.core.progressive` — LocalSearch-P (Algorithm 4);
* :mod:`~repro.core.noncontainment` — non-containment search (§5.1);
* :mod:`~repro.core.truss_search` — the γ-truss instantiation of the
  general framework (Algorithms 6, 7; §5.2);
* :mod:`~repro.core.community` — the linked community-forest result
  objects;
* :mod:`~repro.core.reference` — definition-level correctness oracles.
"""

from .community import Community, GroupView, TrussCommunity
from .count import CVSRecord, construct_cvs, count_communities, peel_cvs
from .enumerate import (
    EnumerationState,
    enumerate_progressive,
    enumerate_top_k,
)
from .fastenum import EnumScratch, fast_build_community
from .fastpeel import (
    KERNELS,
    PeelScratch,
    fast_construct_cvs,
    numpy_available,
    resolve_kernel,
)
from .general import (
    CohesivenessMeasure,
    EdgeConnectivityMeasure,
    GeneralLocalSearch,
    MinDegreeMeasure,
    TrussMeasure,
)
from .local_search import (
    LocalSearch,
    SearchStats,
    TopKResult,
    top_k_influential_communities,
)
from .noncontainment import (
    noncontainment_communities_from_record,
    top_k_noncontainment_communities,
)
from .progressive import (
    LocalSearchP,
    ProgressiveCursor,
    progressive_influential_communities,
)
from .query_weighted import (
    closeness_weights,
    reweight,
    top_k_closest_communities,
)
from .truss_search import (
    LocalSearchTruss,
    TrussCVSRecord,
    TrussResult,
    construct_cvs_truss,
    enumerate_truss_top_k,
    global_search_truss,
    top_k_truss_communities,
)

__all__ = [
    "Community",
    "GroupView",
    "TrussCommunity",
    "CVSRecord",
    "construct_cvs",
    "count_communities",
    "peel_cvs",
    "EnumerationState",
    "enumerate_top_k",
    "enumerate_progressive",
    "KERNELS",
    "PeelScratch",
    "EnumScratch",
    "fast_build_community",
    "fast_construct_cvs",
    "numpy_available",
    "resolve_kernel",
    "CohesivenessMeasure",
    "MinDegreeMeasure",
    "TrussMeasure",
    "EdgeConnectivityMeasure",
    "GeneralLocalSearch",
    "LocalSearch",
    "SearchStats",
    "TopKResult",
    "top_k_influential_communities",
    "LocalSearchP",
    "ProgressiveCursor",
    "progressive_influential_communities",
    "closeness_weights",
    "reweight",
    "top_k_closest_communities",
    "top_k_noncontainment_communities",
    "noncontainment_communities_from_record",
    "LocalSearchTruss",
    "TrussCVSRecord",
    "TrussResult",
    "construct_cvs_truss",
    "enumerate_truss_top_k",
    "global_search_truss",
    "top_k_truss_communities",
]
