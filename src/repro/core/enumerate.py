"""EnumIC — influential γ-community enumeration (Algorithm 3).

Given the ``keys``/``cvs`` produced by the peel (:mod:`repro.core.count`),
EnumIC reconstructs the communities of the (up to) ``k`` highest-weight
keynodes in time **linear in the subgraph size** — independent of the total
(materialised) output size, because communities are returned as a linked
forest (:class:`~repro.core.community.Community`).

The reconstruction follows Lemma 3.6: processing keynodes in decreasing
weight order, the community of ``u`` is its ``cvs`` group ``gp(u)`` plus
every already-built community adjacent to the group.  "Already built and
adjacent" is decided by the ``v2key`` union-find
(:class:`~repro.graph.disjoint_set.KeyedDisjointSet`): the key of a
neighbour's set is the smallest-weight keynode whose community currently
contains it; after linking, the child's set is merged into ``u``'s
(Lines 11–13), which also deduplicates children for free.

:class:`EnumerationState` carries the union-find and the built communities
across calls — EnumIC-P (Section 4) shares one state over all progressive
rounds, so the incremental enumeration is exactly the non-progressive one
split into instalments.

This module is also the enumeration **kernel dispatcher**, mirroring
:func:`repro.core.count.construct_cvs`: ``kernel`` selects the
implementation (``python`` / ``array`` / ``numpy`` / ``auto``; ``None``
defers to ``REPRO_KERNEL``, then ``auto``), and ``scratch`` optionally
carries an :class:`~repro.core.fastenum.EnumScratch` across calls.  The
dict-based path below is the differential-testing oracle; passing an
explicit ``state`` always selects it (shared
:class:`~repro.graph.disjoint_set.KeyedDisjointSet` objects cannot feed
the flat kernels, and callers holding one are oracle callers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..graph.disjoint_set import KeyedDisjointSet
from ..graph.weighted_graph import WeightedGraph
from .community import Community, GroupView
from .count import CVSRecord
from .fastenum import EnumScratch, fast_build_community
from .fastpeel import resolve_kernel

__all__ = [
    "EnumerationState",
    "enumerate_top_k",
    "enumerate_progressive",
]


@dataclass
class EnumerationState:
    """Shared state of EnumIC-P: the global ``v2key`` and built communities.

    ``v2key`` is lazily initialised (vertices are touched only when their
    group is processed), exactly as Section 4 prescribes.
    """

    v2key: KeyedDisjointSet = field(default_factory=KeyedDisjointSet)
    communities: Dict[int, Community] = field(default_factory=dict)


def _build_community(
    graph: WeightedGraph,
    record: CVSRecord,
    index: int,
    state: EnumerationState,
) -> Community:
    """Process keynode ``record.keys[index]`` (Lines 4–14 of Algorithm 3)."""
    u = record.keys[index]
    start, stop = record.group_bounds(index)
    cvs = record.cvs
    v2key = state.v2key
    nbrs = record.nbrs

    # Lines 5-8: collect gp(u), set v2key(v) <- u for its vertices.
    for i in range(start, stop):
        v2key.assign(cvs[i], u)

    # Lines 9-13: scan neighbours of the group inside the peeled subgraph;
    # every foreign key encountered is a child community, then its set is
    # merged into u's so later lookups return u (deduplication for free).
    children: List[Community] = []
    communities = state.communities
    for i in range(start, stop):
        v = cvs[i]
        for w in nbrs[v]:
            key = v2key.key_of(w)
            if key is not None and key != u:
                children.append(communities[key])
                v2key.union_into(w, u)

    community = Community(
        graph,
        keynode=u,
        gamma=record.gamma,
        own_vertices=GroupView(cvs, start, stop),
        children=children,
    )
    communities[u] = community
    return community


def enumerate_top_k(
    graph: WeightedGraph,
    record: CVSRecord,
    k: Optional[int] = None,
    state: Optional[EnumerationState] = None,
    kernel: Optional[str] = None,
    scratch: Optional[EnumScratch] = None,
) -> List[Community]:
    """EnumIC: the top-``k`` communities of the peeled subgraph.

    Returns communities in **decreasing influence order** (top-1 first).
    With ``k=None`` every community of the subgraph is returned.  Runs in
    O(size of the peeled subgraph) regardless of output size.

    ``kernel`` selects the enumeration implementation (see the module
    docstring); an explicit ``state`` forces the oracle path.  A cold
    EnumIC starts from empty state, so a reused ``scratch`` is reset
    here (O(touched of its previous use)).
    """
    if record.nbrs is None:
        raise ValueError("record must carry its peel adjacency (nbrs)")
    keys = record.keys
    count = len(keys) if k is None else min(k, len(keys))
    out: List[Community] = []
    if state is None:
        resolved = resolve_kernel(kernel)
        if resolved != "python":
            sc = scratch if scratch is not None else EnumScratch()
            sc.begin(graph, record.p, resolved, fresh=True)
            for index in range(len(keys) - 1, len(keys) - 1 - count, -1):
                out.append(
                    fast_build_community(graph, record, index, sc, resolved)
                )
            return out
        state = EnumerationState()
    # keys is in increasing weight order; the last `count` are the top-k,
    # processed in decreasing weight order (Line 3 of Algorithm 3).
    for index in range(len(keys) - 1, len(keys) - 1 - count, -1):
        out.append(_build_community(graph, record, index, state))
    return out


def enumerate_progressive(
    graph: WeightedGraph,
    record: CVSRecord,
    state: Optional[EnumerationState] = None,
    kernel: Optional[str] = None,
    scratch: Optional[EnumScratch] = None,
) -> Iterator[Community]:
    """EnumIC-P: yield this round's communities, highest influence first.

    ``record`` is the output of the round's ConstructCVS (with its
    ``stop_rank`` set).  The cross-round state — ``state`` for the
    oracle kernel, ``scratch`` for the flat ones — must be shared across
    all rounds of one progressive query; the scratch is deliberately
    *not* reset here, which is exactly what makes EnumIC-P the
    non-progressive enumeration split into instalments.  Communities of
    earlier rounds appear as children of this round's communities when
    nested.
    """
    if record.nbrs is None:
        raise ValueError("record must carry its peel adjacency (nbrs)")
    if state is None:
        resolved = resolve_kernel(kernel)
        if resolved != "python":
            sc = scratch if scratch is not None else EnumScratch()
            sc.begin(graph, record.p, resolved, fresh=False)
            for index in range(len(record.keys) - 1, -1, -1):
                yield fast_build_community(graph, record, index, sc, resolved)
            return
        state = EnumerationState()
    for index in range(len(record.keys) - 1, -1, -1):
        yield _build_community(graph, record, index, state)
