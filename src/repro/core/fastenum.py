"""Flat-array EnumIC kernels — allocation-free community enumeration.

:mod:`repro.core.enumerate` (the *python* kernel) is the readable,
line-by-line transcription of Algorithm 3 over the dict-based
:class:`~repro.graph.disjoint_set.KeyedDisjointSet` and stays the
differential-testing oracle.  This module provides the drop-in
replacement that made the peel fast (:mod:`repro.core.fastpeel`) for the
enumeration side: the ``v2key`` union-find becomes flat ``parent`` /
``size`` / ``key`` / ``anchor`` stores addressed by CSR vertex rank,
with path-halving find loops inlined into the group scan.

* the ``array`` kernel — pure stdlib.  Working state lives in plain
  Python lists (CPython's fastest scalar substrate); the neighbour scan
  iterates the two row parts of the shared
  :class:`~repro.graph.csr.PrefixAdjacency` buffers directly, so the
  per-row list concatenation of ``nbrs[v]`` never happens.  The whole
  group lands in ``u``'s set as one star rooted at the keynode — a bulk
  write that is byte-identical to the oracle's per-vertex ``assign``
  (singletons union into the first vertex, which always wins the
  union-by-size tie);
* the ``numpy`` kernel — the same scalar union-find on an ``int64``
  parent array, with the two group-local bulk phases vectorised for
  large groups: the group assignment is one fancy-index write, and the
  neighbour scan gathers every row of the group at once, deduplicates
  to *first occurrences* (exact: once a vertex's key is ``u`` or
  ``null`` it stays so within one group scan, so every non-first
  occurrence is a no-op) and pre-filters the candidates down to tracked
  foreign vertices before a short scalar union loop.

All state lives in a reusable :class:`EnumScratch` mirroring
:class:`~repro.core.fastpeel.PeelScratch`: buffers grow and never
shrink, reset between queries is O(touched) (only vertices and keys
actually written are rolled back to the virgin ``-1`` state), and one
scratch shared across the rounds of a progressive query makes EnumIC-P
exactly the non-progressive enumeration split into instalments — the
``parent`` forest, labels and built communities persist, just as
Section 4's shared ``v2key`` prescribes.

Kernel selection reuses :func:`repro.core.fastpeel.resolve_kernel`
(explicit argument, then ``REPRO_KERNEL``, then ``auto``), so one
environment variable pins the peel and the enumeration together.

Equivalence argument (tested exhaustively in ``tests/test_fastenum.py``):
group vertices are always fresh when their group is processed (groups
partition the peeled vertices, and the scan's ``union_into`` never
touches untracked vertices), so the bulk group assignment reaches the
oracle's exact state; the scan then visits rows in the oracle's order
(group position ascending, up-part then in-prefix down-part), and the
key of a set does not depend on which root survived a union, so
children are appended in the identical sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..graph.csr import PrefixAdjacency
from .community import Community, GroupView
from .fastpeel import _gather_rows, _get_numpy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.weighted_graph import WeightedGraph
    from .count import CVSRecord

__all__ = [
    "ENUM_NUMPY_MIN_GROUP",
    "EnumScratch",
    "fast_build_community",
]

#: Below this group size the ``numpy`` kernel processes the group with
#: the scalar (array-kernel) path: per-group numpy fixed costs (fancy
#: indexing, unique) exceed the vectorisation win on small groups.
#: Tests pin this to 0 to force the vectorised path onto tiny graphs.
ENUM_NUMPY_MIN_GROUP = 48


class EnumScratch:
    """Reusable working state of the fast enumeration.

    The flat mirror of :class:`~repro.graph.disjoint_set.KeyedDisjointSet`,
    addressed by CSR vertex rank:

    * ``parent[v]`` — union-find parent; ``-1`` marks an untracked
      vertex (``v2key(v) = null``);
    * ``size[v]`` — set size, valid at live roots;
    * ``key[v]`` — the set's key, valid at live roots (a root always
      receives its key in the same operation that makes it a root, so
      stale values on dead slots are never read);
    * ``anchor[key]`` — some member vertex of the key's set, ``-1``
      when the key has no set (the oracle's ``_anchor`` dict).

    ``touched`` / ``touched_chunks`` / ``anchored`` record exactly which
    slots were written, so :meth:`reset` rolls back in O(touched) —
    never O(capacity).  ``communities`` is EnumIC-P's global "already
    built" map, persisted across progressive rounds.

    One scratch belongs to one graph at a time (keyed on graph object
    identity); binding it to a different graph resets it, so accidental
    reuse degrades to a cold enumeration instead of corrupting state.
    """

    __slots__ = (
        "mode",
        "parent",
        "size",
        "key",
        "anchor",
        "touched",
        "touched_chunks",
        "anchored",
        "communities",
        "graph",
        "_cvs_src",
        "_cvs_np",
    )

    def __init__(self) -> None:
        self.mode = "array"
        self.parent: List[int] = []  # ndarray in "numpy" mode
        self.size: List[int] = []
        self.key: List[int] = []
        self.anchor: List[int] = []
        self.touched: List[int] = []
        self.touched_chunks: list = []  # ndarray slices (numpy bulk writes)
        self.anchored: List[int] = []
        self.communities: Dict[int, object] = {}
        self.graph: Optional["WeightedGraph"] = None
        self._cvs_src: Optional[list] = None
        self._cvs_np = None

    # ------------------------------------------------------------------
    def begin(self, graph: "WeightedGraph", p: int, kernel: str, fresh: bool) -> None:
        """Bind the scratch to one enumeration pass.

        ``fresh`` resets the union-find (a cold EnumIC starts from an
        empty state, like a new :class:`EnumerationState`); progressive
        rounds pass ``False`` so EnumIC-P's state persists.  A graph or
        storage-mode switch always resets.
        """
        mode = "numpy" if kernel == "numpy" else "array"
        if self.graph is not graph or mode != self.mode:
            self.reset()
            self._set_mode(mode)
            self.graph = graph
        elif fresh:
            self.reset()
        self.ensure(p)

    def _set_mode(self, mode: str) -> None:
        if mode == self.mode:
            return
        if mode == "numpy":
            np = _get_numpy()
            self.parent = np.array(self.parent, dtype=np.int64)
        else:
            self.parent = list(self.parent)
        self.mode = mode

    def ensure(self, n: int) -> None:
        """Grow (never shrink) every store to at least ``n`` slots."""
        cap = len(self.parent)
        if cap >= n:
            return
        target = max(n, 2 * cap)
        if self.mode == "numpy":
            np = _get_numpy()
            grown = np.full(target, -1, dtype=np.int64)
            grown[:cap] = self.parent
            self.parent = grown
        else:
            self.parent.extend([-1] * (target - cap))
        self.size.extend([0] * (target - cap))
        self.key.extend([-1] * (target - cap))
        self.anchor.extend([-1] * (target - cap))

    def reset(self) -> None:
        """Roll every written slot back to virgin state — O(touched).

        ``size`` and ``key`` need no rollback: they are only read at
        live roots, and a vertex becomes a root only through operations
        that write both.
        """
        parent = self.parent
        for v in self.touched:
            parent[v] = -1
        chunks = self.touched_chunks
        if chunks:
            for chunk in chunks:
                parent[chunk] = -1
            del chunks[:]
        anchor = self.anchor
        for k in self.anchored:
            anchor[k] = -1
        del self.touched[:]
        del self.anchored[:]
        self.communities.clear()
        self._cvs_src = None
        self._cvs_np = None

    # ------------------------------------------------------------------
    # scalar operations, mirroring KeyedDisjointSet exactly (used by the
    # truss enumeration and as the fallback for untypical group states;
    # the vertex-kernel hot loops inline these).
    # ------------------------------------------------------------------
    def find(self, v: int) -> int:
        """Root of ``v``'s set (path halving); ``v`` must be tracked."""
        parent = self.parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def key_of(self, v: int) -> int:
        """Key of ``v``'s set, or ``-1`` when ``v`` is untracked."""
        if self.parent[v] == -1:
            return -1
        return self.key[self.find(v)]

    def assign(self, v: int, key: int) -> None:
        """``v2key(v) <- key`` for a fresh vertex (tracked ones merge)."""
        if self.parent[v] != -1:
            self.union_into(v, key)
            return
        self.parent[v] = v
        self.size[v] = 1
        self.touched.append(v)
        a = self.anchor[key]
        if a == -1:
            self.key[v] = key
            self.anchor[key] = v
            self.anchored.append(key)
        else:
            self._link(self.find(a), v, key)

    def union_into(self, v: int, key: int) -> None:
        """``Union(v, key)``: merge ``v``'s set into the key's set."""
        v_root = self.find(v)
        anchor = self.anchor
        a = anchor[key]
        if a == -1:
            # The key has no set yet: v's set simply takes this key, and
            # the old key's anchor is dropped if it pointed here.
            old_key = self.key[v_root]
            if old_key >= 0:
                oa = anchor[old_key]
                if oa != -1 and self.find(oa) == v_root:
                    anchor[old_key] = -1
            self.key[v_root] = key
            anchor[key] = v_root
            self.anchored.append(key)
            return
        k_root = self.find(a)
        if k_root == v_root:
            self.key[v_root] = key
            return
        self._link(k_root, v_root, key)

    def _link(self, root_a: int, root_b: int, key: int) -> None:
        """Union two roots by size; the survivor gets ``key``."""
        size = self.size
        if size[root_a] < size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        size[root_a] += size[root_b]
        self.key[root_a] = key
        self.anchor[key] = root_a


# ----------------------------------------------------------------------
# the array kernel (also the numpy kernel's small-group path)
# ----------------------------------------------------------------------
def _build_array(
    graph: "WeightedGraph",
    record: "CVSRecord",
    index: int,
    scratch: EnumScratch,
) -> Community:
    """One keynode's community (Lines 4-14 of Algorithm 3), flat state."""
    u = record.keys[index]
    start, stop = record.group_bounds(index)
    cvs = record.cvs
    parent = scratch.parent
    size = scratch.size
    key_arr = scratch.key
    anchor = scratch.anchor

    # Lines 5-8: gp(u) joins u's set.  Group vertices are fresh when the
    # group is processed (groups partition the peeled vertices and the
    # scan never tracks new ones), so the group lands as one star rooted
    # at the keynode — the exact state per-vertex assign would build.
    if anchor[u] == -1 and parent[u] == -1 and cvs[start] == u:
        touched = scratch.touched
        parent[u] = u
        touched.append(u)
        i = start + 1
        while i < stop:
            v = cvs[i]
            if parent[v] != -1:
                break  # untypical state: finish via the scalar path
            parent[v] = u
            touched.append(v)
            i += 1
        size[u] = i - start
        key_arr[u] = u
        anchor[u] = u
        scratch.anchored.append(u)
        for j in range(i, stop):
            scratch.assign(cvs[j], u)
    else:
        for i in range(start, stop):
            scratch.assign(cvs[i], u)

    # Lines 9-13: scan the group's rows; every foreign key met is a
    # child, then its set merges into u's (deduplication for free).
    children: List[Community] = []
    communities = scratch.communities
    nbrs = record.nbrs
    if type(nbrs) is PrefixAdjacency:
        up_off, up_tgt, down_off, down_tgt, cuts = nbrs.flat()
        for i in range(start, stop):
            v = cvs[i]
            a, b = up_off[v], up_off[v + 1]
            if a != b:
                for w in up_tgt[a:b]:
                    if parent[w] != -1:
                        while parent[w] != w:  # find(w), path halving
                            parent[w] = parent[parent[w]]
                            w = parent[w]
                        if key_arr[w] != u:
                            children.append(communities[key_arr[w]])
                            ka = anchor[u]
                            while parent[ka] != ka:  # find(anchor[u])
                                parent[ka] = parent[parent[ka]]
                                ka = parent[ka]
                            # ka != w (same root would mean key u); link
                            # by size, the key root winning ties.
                            if size[ka] < size[w]:
                                ka, w = w, ka
                            parent[w] = ka
                            size[ka] += size[w]
                            key_arr[ka] = u
                            anchor[u] = ka
            a, b = down_off[v], cuts[v]
            if a != b:
                for w in down_tgt[a:b]:
                    if parent[w] != -1:
                        while parent[w] != w:
                            parent[w] = parent[parent[w]]
                            w = parent[w]
                        if key_arr[w] != u:
                            children.append(communities[key_arr[w]])
                            ka = anchor[u]
                            while parent[ka] != ka:
                                parent[ka] = parent[parent[ka]]
                                ka = parent[ka]
                            if size[ka] < size[w]:
                                ka, w = w, ka
                            parent[w] = ka
                            size[ka] += size[w]
                            key_arr[ka] = u
                            anchor[u] = ka
    else:
        # Materialised list-of-lists adjacency (python-kernel peel).
        for i in range(start, stop):
            for w in nbrs[cvs[i]]:
                if parent[w] != -1:
                    while parent[w] != w:
                        parent[w] = parent[parent[w]]
                        w = parent[w]
                    if key_arr[w] != u:
                        children.append(communities[key_arr[w]])
                        ka = anchor[u]
                        while parent[ka] != ka:
                            parent[ka] = parent[parent[ka]]
                            ka = parent[ka]
                        if size[ka] < size[w]:
                            ka, w = w, ka
                        parent[w] = ka
                        size[ka] += size[w]
                        key_arr[ka] = u
                        anchor[u] = ka

    community = Community(
        graph,
        keynode=u,
        gamma=record.gamma,
        own_vertices=GroupView(cvs, start, stop),
        children=children,
    )
    communities[u] = community
    return community


# ----------------------------------------------------------------------
# the numpy kernel
# ----------------------------------------------------------------------
def _build_numpy(
    graph: "WeightedGraph",
    record: "CVSRecord",
    index: int,
    scratch: EnumScratch,
    np,
    nstate,
    cvs_np,
) -> Community:
    """The array kernel with both group-local bulk phases vectorised."""
    u = record.keys[index]
    start, stop = record.group_bounds(index)
    if stop - start < ENUM_NUMPY_MIN_GROUP or nstate is None:
        return _build_array(graph, record, index, scratch)

    parent = scratch.parent  # int64 ndarray in this mode
    size = scratch.size
    key_arr = scratch.key
    anchor = scratch.anchor
    grp = cvs_np[start:stop]

    # Lines 5-8, vectorised: one fancy-index write builds the keynode
    # star — valid exactly when every group vertex is fresh (always, for
    # vertex EnumIC; checked anyway so untypical states fall back).
    r = -1
    if anchor[u] == -1 and cvs_np[start] == u and not (parent[grp] != -1).any():
        parent[grp] = u
        size[u] = stop - start
        key_arr[u] = u
        anchor[u] = u
        scratch.anchored.append(u)
        scratch.touched_chunks.append(grp)
        r = u
    else:
        cvs = record.cvs
        for i in range(start, stop):
            scratch.assign(cvs[i], u)

    # Lines 9-13, gathered then pruned: prune on the raw per-part
    # gathers FIRST (pre-scan parent state: untracked vertices are
    # no-ops, and direct children of the star's root are the group
    # itself), and only the few survivors are put back into the
    # oracle's exact scan order (group position ascending, up-part then
    # in-prefix down-part — children discovery order depends on it).
    # Duplicate survivors need no dedup: the first occurrence does the
    # union, which keys the merged set ``u``, so repeats are no-ops in
    # the scalar loop — as are vertices whose sets merge into ``u``'s
    # mid-scan, which the pre-scan filter deliberately keeps.
    up_off, up_tgt, down_off, down_tgt, cuts = nstate
    up_starts = up_off[grp]
    up_lens = up_off[grp + 1] - up_starts
    down_starts = down_off[grp]
    down_lens = cuts[grp] - down_starts
    children: List[Community] = []
    communities = scratch.communities
    cand_parts = []
    rank_parts = []
    for part, starts, lens, tgt in (
        (0, up_starts, up_lens, up_tgt),
        (1, down_starts, down_lens, down_tgt),
    ):
        if not int(lens.sum()):
            continue
        gathered = _gather_rows(np, tgt, starts, lens)
        pc = parent[gathered]
        mask = pc != -1
        if r != -1:
            mask &= pc != r
        hits = np.nonzero(mask)[0]
        if hits.size:
            # Scan rank of each survivor: source-vertex group position
            # doubled, +1 for the down-part (rows stay in gather order).
            src = np.searchsorted(np.cumsum(lens), hits, side="right")
            cand_parts.append(gathered[hits])
            rank_parts.append(2 * src + part)
    if cand_parts:
        cand = np.concatenate(cand_parts)
        order = np.argsort(np.concatenate(rank_parts), kind="stable")
        for w in cand[order].tolist():
            while parent[w] != w:
                parent[w] = parent[parent[w]]
                w = parent[w]
            if key_arr[w] != u:
                children.append(communities[key_arr[w]])
                ka = anchor[u]
                while parent[ka] != ka:
                    parent[ka] = parent[parent[ka]]
                    ka = parent[ka]
                if size[ka] < size[w]:
                    ka, w = w, ka
                parent[w] = ka
                size[ka] += size[w]
                key_arr[ka] = u
                anchor[u] = ka

    community = Community(
        graph,
        keynode=u,
        gamma=record.gamma,
        own_vertices=GroupView(record.cvs, start, stop),
        children=children,
    )
    communities[u] = community
    return community


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def fast_build_community(
    graph: "WeightedGraph",
    record: "CVSRecord",
    index: int,
    scratch: EnumScratch,
    kernel: str,
) -> Community:
    """Build keynode ``record.keys[index]``'s community on flat state.

    The caller owns the scratch lifecycle: :meth:`EnumScratch.begin`
    once per enumeration pass (``fresh=True`` for a cold EnumIC,
    ``False`` for EnumIC-P rounds), then one call per keynode in
    decreasing weight order.
    """
    if kernel == "numpy":
        if scratch._cvs_src is not record.cvs:
            np = _get_numpy()
            scratch._cvs_np = np.array(record.cvs, dtype=np.int64)
            scratch._cvs_src = record.cvs
        nbrs = record.nbrs
        nstate = nbrs.numpy_state() if type(nbrs) is PrefixAdjacency else None
        return _build_numpy(
            graph,
            record,
            index,
            scratch,
            _get_numpy(),
            nstate,
            scratch._cvs_np,
        )
    return _build_array(graph, record, index, scratch)
