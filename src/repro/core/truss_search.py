"""Influential γ-truss community search (Section 5.2, Algorithms 6 and 7).

The general framework (Algorithm 6) applies to any cohesiveness measure
with the two monotonicity properties of Section 5.2; this module
instantiates it for the **γ-truss** measure: a subgraph has cohesiveness γ
when every edge participates in at least γ − 2 triangles.

* :func:`construct_cvs_truss` — CountICC (Algorithm 7): peel the
  minimum-weight vertex and cascade *edge* removals via triangle-support
  maintenance; ``cvs`` is an edge sequence.
* :func:`enumerate_truss_top_k` — EnumICC: rebuild communities from the
  edge groups, linking a group to already-built communities through shared
  vertices with the same keyed union-find as EnumIC.
* :class:`LocalSearchTruss` — Algorithm 6's doubling loop.
* :func:`global_search_truss` — the GlobalSearch-Truss baseline of
  Eval-VIII (CountICC + EnumICC on the entire graph).
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import QueryParameterError
from ..graph.disjoint_set import KeyedDisjointSet
from ..graph.subgraph import PrefixView
from ..graph.truss_decomposition import edge_key, edge_supports
from ..graph.weighted_graph import WeightedGraph
from .community import TrussCommunity
from .fastenum import EnumScratch
from .fastpeel import resolve_kernel
from .local_search import SearchStats

__all__ = [
    "TrussCVSRecord",
    "construct_cvs_truss",
    "enumerate_truss_top_k",
    "LocalSearchTruss",
    "top_k_truss_communities",
    "global_search_truss",
    "TrussResult",
]

Edge = Tuple[int, int]


@dataclass
class TrussCVSRecord:
    """Output of the truss keynode peel (edge-sequence ``cvs``)."""

    keys: List[int]
    cvs: List[Edge]
    starts: List[int]
    p: int
    gamma: int
    stop_rank: int = 0

    @property
    def num_communities(self) -> int:
        """Number of influential γ-truss communities in the peeled graph."""
        return len(self.keys)

    def group(self, i: int) -> List[Edge]:
        """Edge group of keynode ``keys[i]``."""
        start = self.starts[i]
        stop = self.starts[i + 1] if i + 1 < len(self.starts) else len(self.cvs)
        return self.cvs[start:stop]


def construct_cvs_truss(
    view: PrefixView, gamma: int, stop_rank: int = 0
) -> TrussCVSRecord:
    """CountICC (Algorithm 7): keynodes + edge ``cvs`` of the view.

    1. Reduce the view to its γ-truss (initial removals recorded nowhere).
    2. Repeatedly take the minimum-weight vertex ``u`` (max alive rank),
       append it to ``keys`` and remove all its edges; each removal
       cascades through triangle-support maintenance (``RemoveEdge``),
       appending removed edges to ``cvs``.

    Complexity matches γ-truss computation: O(m · α) triangle work
    (Section 5.2), dominated by the initial support computation.
    """
    if gamma < 2:
        raise QueryParameterError("truss gamma must be at least 2")
    p = view.p
    threshold = gamma - 2

    # --- Line 1: gamma-truss of the view (no recording) -------------------
    adj: List[Set[int]] = [set() for _ in range(p)]
    for u, v in view.iter_edges():
        adj[u].add(v)
        adj[v].add(u)
    support = edge_supports(view, adj)

    removal: deque = deque(e for e, s in support.items() if s < threshold)
    pending: Set[Edge] = set(removal)

    def remove_edges(record_to: Optional[List[Edge]]) -> None:
        """Drain the removal queue, cascading support updates."""
        while removal:
            e = removal.popleft()
            pending.discard(e)
            x, y = e
            if y not in adj[x]:
                continue  # already gone via another cascade
            adj[x].discard(y)
            adj[y].discard(x)
            del support[e]
            if record_to is not None:
                record_to.append(e)
            small, large = (
                (adj[x], adj[y]) if len(adj[x]) <= len(adj[y]) else (adj[y], adj[x])
            )
            for z in small:
                if z in large:
                    for other in (edge_key(x, z), edge_key(y, z)):
                        s = support.get(other)
                        if s is None:
                            continue
                        support[other] = s - 1
                        if s - 1 < threshold and other not in pending:
                            pending.add(other)
                            removal.append(other)

    remove_edges(None)

    # --- main peel ---------------------------------------------------------
    keys: List[int] = []
    cvs: List[Edge] = []
    starts: List[int] = []
    ptr = p - 1
    while True:
        while ptr >= stop_rank and not adj[ptr]:
            ptr -= 1
        if ptr < stop_rank:
            break
        u = ptr
        keys.append(u)
        starts.append(len(cvs))
        # Remove every adjacent edge of u (Lines 7-8 of Algorithm 7).
        for w in list(adj[u]):
            e = edge_key(u, w)
            if e not in pending:
                pending.add(e)
                removal.append(e)
        remove_edges(cvs)

    return TrussCVSRecord(
        keys=keys, cvs=cvs, starts=starts, p=p, gamma=gamma, stop_rank=stop_rank
    )


def enumerate_truss_top_k(
    graph: WeightedGraph,
    record: TrussCVSRecord,
    k: Optional[int] = None,
    state: Optional[KeyedDisjointSet] = None,
    built: Optional[Dict[int, TrussCommunity]] = None,
    kernel: Optional[str] = None,
    scratch: Optional[EnumScratch] = None,
) -> List[TrussCommunity]:
    """EnumICC: top-``k`` truss communities from the edge ``cvs``.

    Processing keynodes in decreasing weight order, the community of ``u``
    is its edge group plus every already-built community sharing a vertex
    with the group — decided by the same keyed union-find as EnumIC, with
    edge endpoints taking the role of group members.  O(size) time.

    ``kernel`` selects the union-find implementation: the flat
    :class:`~repro.core.fastenum.EnumScratch` for ``array``/``numpy``
    (edge groups are too small and irregular to vectorise, so both
    resolve to the same scalar flat path — the win over the dict oracle
    is the flat stores and inline path-halving), the dict-based oracle
    for ``python`` or whenever an explicit ``state``/``built`` is
    passed.  Unlike vertex groups, an edge group's endpoints may already
    be tracked under a foreign key before any assignment under ``u``
    happens, so this path exercises the union-find's dangling-anchor
    takeover branch.
    """
    keys = record.keys
    count = len(keys) if k is None else min(k, len(keys))
    out: List[TrussCommunity] = []
    if state is None and built is None and resolve_kernel(kernel) != "python":
        sc = scratch if scratch is not None else EnumScratch()
        sc.begin(graph, record.p, "array", fresh=True)
        communities = sc.communities
        for index in range(len(keys) - 1, len(keys) - 1 - count, -1):
            u = keys[index]
            group = record.group(index)
            children: List[TrussCommunity] = []
            for a, b in group:
                for w in (a, b):
                    key = sc.key_of(w)
                    if key == -1:
                        sc.assign(w, u)
                    elif key != u:
                        children.append(communities[key])
                        sc.union_into(w, u)
            community = TrussCommunity(
                graph, keynode=u, gamma=record.gamma, own_edges=group,
                children=children,
            )
            communities[u] = community
            out.append(community)
        return out
    v2key = state if state is not None else KeyedDisjointSet()
    communities: Dict[int, TrussCommunity] = built if built is not None else {}
    for index in range(len(keys) - 1, len(keys) - 1 - count, -1):
        u = keys[index]
        group = record.group(index)
        children: List[TrussCommunity] = []
        for a, b in group:
            for w in (a, b):
                key = v2key.key_of(w)
                if key is None:
                    v2key.assign(w, u)
                elif key != u:
                    children.append(communities[key])
                    v2key.union_into(w, u)
        community = TrussCommunity(
            graph, keynode=u, gamma=record.gamma, own_edges=group,
            children=children,
        )
        communities[u] = community
        out.append(community)
    return out


@dataclass
class TrussResult:
    """Result of a truss top-k query: communities plus instrumentation."""

    communities: List[TrussCommunity]
    stats: SearchStats

    @property
    def influences(self) -> List[float]:
        """Influence values in reported (decreasing) order."""
        return [c.influence for c in self.communities]

    def __iter__(self):
        return iter(self.communities)

    def __len__(self) -> int:
        return len(self.communities)


class LocalSearchTruss:
    """Algorithm 6 instantiated for the γ-truss measure.

    The truss peel has no flat-kernel variant (its cascade is
    triangle-support maintenance over sets), but the enumeration does:
    ``kernel`` picks the union-find implementation of EnumICC, resolved
    through the same ``REPRO_KERNEL`` chain as the vertex kernels.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        gamma: int,
        delta: float = 2.0,
        kernel: Optional[str] = None,
    ) -> None:
        if gamma < 2:
            raise QueryParameterError("truss gamma must be at least 2")
        if delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        self.graph = graph
        self.gamma = gamma
        self.delta = delta
        self.kernel = kernel

    def search(self, k: int) -> TrussResult:
        """Top-``k`` influential γ-truss communities via the doubling loop."""
        if k < 1:
            raise QueryParameterError("k must be at least 1")
        graph, gamma = self.graph, self.gamma
        started = time.perf_counter()
        kernel = resolve_kernel(self.kernel)
        stats = SearchStats(
            gamma=gamma, k=k, delta=self.delta, graph_size=graph.size,
            kernel=kernel,
        )
        n = graph.num_vertices
        p = min(n, k + gamma)
        while True:
            view = PrefixView(graph, p)
            record = construct_cvs_truss(view, gamma)
            stats.prefixes.append(p)
            stats.prefix_sizes.append(view.size)
            stats.counts.append(record.num_communities)
            if record.num_communities >= k or view.is_whole_graph:
                break
            target = int(math.ceil(self.delta * view.size))
            p = max(graph.grow_prefix(p, target), min(p + 1, n))
        communities = enumerate_truss_top_k(graph, record, k, kernel=kernel)
        stats.elapsed_seconds = time.perf_counter() - started
        return TrussResult(communities=communities, stats=stats)


def top_k_truss_communities(
    graph: WeightedGraph,
    k: int,
    gamma: int,
    delta: float = 2.0,
    kernel: Optional[str] = None,
) -> TrussResult:
    """Top-``k`` influential γ-truss communities (LocalSearch-Truss)."""
    return LocalSearchTruss(
        graph, gamma=gamma, delta=delta, kernel=kernel
    ).search(k)


def global_search_truss(
    graph: WeightedGraph, k: int, gamma: int, kernel: Optional[str] = None
) -> TrussResult:
    """GlobalSearch-Truss (Eval-VIII): CountICC on the whole graph + EnumICC."""
    started = time.perf_counter()
    kernel = resolve_kernel(kernel)
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size, kernel=kernel)
    view = PrefixView.whole(graph)
    record = construct_cvs_truss(view, gamma)
    stats.prefixes.append(view.p)
    stats.prefix_sizes.append(view.size)
    stats.counts.append(record.num_communities)
    communities = enumerate_truss_top_k(graph, record, k, kernel=kernel)
    stats.elapsed_seconds = time.perf_counter() - started
    return TrussResult(communities=communities, stats=stats)
