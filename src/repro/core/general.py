"""The general local-search framework (Section 5.2, Algorithm 6).

Definition 5.2 parameterises influential communities by an arbitrary
cohesiveness measure; Algorithm 6 keeps the doubling loop and swaps in a
measure-specific ``CountICC``/``EnumICC``.  Any measure satisfying the two
monotonicity properties of Section 5.2 qualifies:

* **Property I** — every influential γ-cohesive community of ``G>=tau2``
  is one of ``G>=tau1`` for ``tau1 <= tau2``;
* **Property II** — a community of ``G>=tau1`` with influence ≥ ``tau2``
  is a community of ``G>=tau2``.

Both hold whenever the measure admits a unique **maximal γ-cohesive
subgraph** that is monotone under subgraphs — true for minimum degree
(γ-core), triangle support (γ-truss) and edge connectivity, the three
measures the paper names.

This module provides:

* :class:`CohesivenessMeasure` — the interface: compute the maximal
  γ-cohesive subgraph of a vertex subset;
* :class:`MinDegreeMeasure`, :class:`TrussMeasure`,
  :class:`EdgeConnectivityMeasure` — the paper's three instantiations
  (edge connectivity via recursive global-min-cut splitting — correct and
  simple, usable at small scale);
* :func:`count_cohesive_communities` — the paper's *naive* CountICC
  ("iteratively (1) computing the maximal γ-cohesive subgraph ... and
  (2) removing the minimum-weight vertex"), generic over any measure;
* :class:`GeneralLocalSearch` — Algorithm 6.

The optimised, measure-specific implementations live in
:mod:`repro.core.count` (min degree) and :mod:`repro.core.truss_search`
(truss); the test suite cross-validates them against this generic path.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import QueryParameterError
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from .local_search import SearchStats

__all__ = [
    "CohesivenessMeasure",
    "MinDegreeMeasure",
    "TrussMeasure",
    "EdgeConnectivityMeasure",
    "GeneralCommunity",
    "count_cohesive_communities",
    "all_cohesive_communities",
    "GeneralLocalSearch",
    "GeneralResult",
]


class CohesivenessMeasure:
    """Interface: the maximal γ-cohesive subgraph of a vertex subset.

    Implementations return the **adjacency structure** of the maximal
    subgraph (within the induced subgraph on ``members``) whose
    cohesiveness value is at least γ — an adjacency is required rather
    than a vertex set because for non-hereditary measures (truss, edge
    connectivity) the maximal cohesive subgraph is *not* vertex-induced:
    an edge may connect two surviving vertices yet belong to no cohesive
    subgraph, and connectivity must not travel across it.  An empty dict
    means no γ-cohesive subgraph exists.
    """

    name = "abstract"

    def maximal_cohesive(
        self, graph: WeightedGraph, members: Set[int], gamma: int
    ) -> Dict[int, Set[int]]:
        """Adjacency of the maximal γ-cohesive subgraph of ``members``.

        Every key is a member vertex with at least one cohesive edge;
        values are its cohesive-subgraph neighbours.
        """
        raise NotImplementedError

    def cohesive_vertices(
        self, graph: WeightedGraph, members: Set[int], gamma: int
    ) -> Set[int]:
        """Convenience: just the vertex set of :meth:`maximal_cohesive`."""
        adj = self.maximal_cohesive(graph, members, gamma)
        return {u for u, nbrs in adj.items() if nbrs}

    def validate_gamma(self, gamma: int) -> None:
        """Raise :class:`QueryParameterError` on an invalid γ."""
        if gamma < 1:
            raise QueryParameterError(
                f"{self.name}: gamma must be at least 1"
            )


def _induced_adjacency(
    graph: WeightedGraph, members: Set[int]
) -> Dict[int, Set[int]]:
    adj: Dict[int, Set[int]] = {u: set() for u in members}
    for u in members:
        for w in graph.iter_neighbors(u):
            if w in members:
                adj[u].add(w)
    return adj


class MinDegreeMeasure(CohesivenessMeasure):
    """k-core cohesiveness: minimum degree ≥ γ (the paper's default).

    The γ-core is vertex-induced, so the returned adjacency is simply the
    induced adjacency of the surviving vertices.
    """

    name = "min-degree"

    def maximal_cohesive(
        self, graph: WeightedGraph, members: Set[int], gamma: int
    ) -> Dict[int, Set[int]]:
        adj = _induced_adjacency(graph, members)
        alive = set(members)
        queue = deque(u for u in alive if len(adj[u]) < gamma)
        removed = set(queue)
        while queue:
            u = queue.popleft()
            alive.discard(u)
            for w in adj[u]:
                if w in alive and w not in removed:
                    adj[w].discard(u)
                    if len(adj[w]) < gamma:
                        removed.add(w)
                        queue.append(w)
        return {u: adj[u] & alive for u in alive}


class TrussMeasure(CohesivenessMeasure):
    """k-truss cohesiveness: every edge in ≥ γ − 2 triangles (§5.2)."""

    name = "truss"

    def validate_gamma(self, gamma: int) -> None:
        if gamma < 2:
            raise QueryParameterError("truss: gamma must be at least 2")

    def maximal_cohesive(
        self, graph: WeightedGraph, members: Set[int], gamma: int
    ) -> Dict[int, Set[int]]:
        adj = _induced_adjacency(graph, members)
        threshold = gamma - 2
        changed = True
        while changed:
            changed = False
            for u in list(adj):
                for v in list(adj.get(u, ())):
                    if v < u:
                        continue
                    common = len(adj[u] & adj[v])
                    if common < threshold:
                        adj[u].discard(v)
                        adj[v].discard(u)
                        changed = True
        return {u: nbrs for u, nbrs in adj.items() if nbrs}


class EdgeConnectivityMeasure(CohesivenessMeasure):
    """Edge-connectivity cohesiveness: the subgraph is γ-edge-connected.

    The maximal γ-edge-connected subgraphs are found by recursive
    splitting: compute a global minimum cut of each connected component
    (Stoer–Wagner); if its value is ≥ γ the component qualifies, else
    split along the cut and recurse [6, 40].  O(n³)-ish per component —
    strictly a small-graph instantiation, which is all the generic
    framework needs for cross-validation.
    """

    name = "edge-connectivity"

    def maximal_cohesive(
        self, graph: WeightedGraph, members: Set[int], gamma: int
    ) -> Dict[int, Set[int]]:
        adj = _induced_adjacency(graph, members)
        result: Set[int] = set()
        pieces: List[Set[int]] = []
        for component in _components(adj):
            for piece in self._qualify_pieces(adj, component, gamma):
                pieces.append(piece)
                result |= piece
        # Each maximal gamma-edge-connected subgraph keeps only its own
        # internal edges; cross edges between two pieces belong to neither.
        out: Dict[int, Set[int]] = {}
        for piece in pieces:
            for u in piece:
                out[u] = adj[u] & piece
        return out

    def _qualify_pieces(
        self, adj: Dict[int, Set[int]], component: Set[int], gamma: int
    ) -> List[Set[int]]:
        """Maximal γ-edge-connected vertex sets within ``component``."""
        if len(component) < 2:
            return []
        # Vertices with induced degree < gamma can never be in a
        # gamma-edge-connected subgraph: peel first (cheap pre-filter).
        core = set(component)
        queue = deque(
            u for u in core if len(adj[u] & core) < gamma
        )
        while queue:
            u = queue.popleft()
            if u not in core:
                continue
            core.discard(u)
            for w in adj[u] & core:
                if len(adj[w] & core) < gamma:
                    queue.append(w)
        if len(core) < 2:
            return []
        out: List[Set[int]] = []
        for sub in _components({u: adj[u] & core for u in core}):
            if len(sub) < 2:
                continue
            cut_value, side = _stoer_wagner(adj, sub)
            if cut_value >= gamma:
                out.append(sub)
            else:
                out.extend(self._qualify_pieces(adj, side, gamma))
                out.extend(self._qualify_pieces(adj, sub - side, gamma))
        return out


def _components(adj: Dict[int, Set[int]]) -> List[Set[int]]:
    seen: Set[int] = set()
    out: List[Set[int]] = []
    for start in adj:
        if start in seen:
            continue
        comp = {start}
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if w in adj and w not in seen:
                    seen.add(w)
                    comp.add(w)
                    queue.append(w)
        out.append(comp)
    return out


def _stoer_wagner(
    adj: Dict[int, Set[int]], members: Set[int]
) -> Tuple[int, Set[int]]:
    """Global minimum cut of the induced subgraph (unit edge weights).

    Returns ``(cut_value, one_side)``.  Classic Stoer–Wagner with vertex
    merging; O(n³) on the component size.
    """
    nodes = sorted(members)
    weights: Dict[Tuple[int, int], int] = {}
    for u in nodes:
        for v in adj[u]:
            if v in members and u < v:
                weights[(u, v)] = 1

    def w(a: int, b: int) -> int:
        return weights.get((a, b) if a < b else (b, a), 0)

    groups: Dict[int, Set[int]] = {u: {u} for u in nodes}
    best_value = math.inf
    best_side: Set[int] = set()
    active = list(nodes)
    while len(active) > 1:
        # Maximum-adjacency ordering.
        order = [active[0]]
        candidates = set(active[1:])
        attach = {u: w(u, active[0]) for u in candidates}
        while candidates:
            nxt = max(candidates, key=lambda u: (attach[u], -u))
            order.append(nxt)
            candidates.discard(nxt)
            for u in candidates:
                attach[u] += w(u, nxt)
        s, t = order[-2], order[-1]
        cut_of_phase = attach.get(t, 0) if len(order) > 1 else 0
        if cut_of_phase < best_value:
            best_value = cut_of_phase
            best_side = set(groups[t])
        # Merge t into s.
        groups[s] |= groups[t]
        for u in active:
            if u in (s, t):
                continue
            merged = w(u, s) + w(u, t)
            key = (u, s) if u < s else (s, u)
            if merged:
                weights[key] = merged
            else:
                weights.pop(key, None)
            weights.pop((u, t) if u < t else (t, u), None)
        weights.pop((s, t) if s < t else (t, s), None)
        active.remove(t)
        del groups[t]
    value = 0 if math.isinf(best_value) else int(best_value)
    return value, best_side


class GeneralCommunity:
    """One influential γ-cohesive community under an arbitrary measure."""

    __slots__ = ("graph", "keynode", "influence", "gamma", "members",
                 "measure")

    def __init__(
        self,
        graph: WeightedGraph,
        keynode: int,
        gamma: int,
        members: FrozenSet[int],
        measure: str,
    ) -> None:
        self.graph = graph
        self.keynode = keynode
        self.influence = graph.weight(keynode)
        self.gamma = gamma
        self.members = members
        self.measure = measure

    @property
    def vertices(self) -> List:
        """Member labels."""
        return [self.graph.label(r) for r in sorted(self.members)]

    @property
    def num_vertices(self) -> int:
        """Number of members."""
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GeneralCommunity(measure={self.measure}, "
            f"influence={self.influence:.6g}, n={self.num_vertices})"
        )


def all_cohesive_communities(
    graph: WeightedGraph,
    view_p: int,
    gamma: int,
    measure: CohesivenessMeasure,
) -> List[GeneralCommunity]:
    """The naive CountICC/EnumICC of Section 5.2 over a rank prefix.

    Iteratively (1) reduce to the maximal γ-cohesive subgraph, (2) record
    the component of the minimum-weight vertex as the next community and
    remove that vertex.  Returns communities in decreasing influence
    order.  Intended for validation and small graphs: the optimised
    per-measure algorithms in :mod:`repro.core` replace it at scale.
    """
    measure.validate_gamma(gamma)
    members: Set[int] = set(range(view_p))
    communities: List[GeneralCommunity] = []
    while True:
        adj = measure.maximal_cohesive(graph, members, gamma)
        members = {u for u, nbrs in adj.items() if nbrs}
        if not members:
            break
        u = max(members)  # minimum weight = maximum rank
        # Walk the *cohesive subgraph's* edges only: for non-hereditary
        # measures an induced edge may connect two separate cohesive
        # pieces without belonging to either (see CohesivenessMeasure).
        component: Set[int] = {u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for y in adj[x]:
                if y not in component:
                    component.add(y)
                    queue.append(y)
        communities.append(
            GeneralCommunity(
                graph, u, gamma, frozenset(component), measure.name
            )
        )
        members.discard(u)
    communities.reverse()
    return communities


def count_cohesive_communities(
    graph: WeightedGraph,
    view_p: int,
    gamma: int,
    measure: CohesivenessMeasure,
) -> int:
    """Naive CountICC: the number of influential γ-cohesive communities."""
    return len(all_cohesive_communities(graph, view_p, gamma, measure))


class GeneralResult:
    """Result of a general top-k query."""

    def __init__(
        self, communities: List[GeneralCommunity], stats: SearchStats
    ) -> None:
        self.communities = communities
        self.stats = stats

    @property
    def influences(self) -> List[float]:
        """Influence values in reported (decreasing) order."""
        return [c.influence for c in self.communities]

    def __iter__(self):
        return iter(self.communities)

    def __len__(self) -> int:
        return len(self.communities)


class GeneralLocalSearch:
    """Algorithm 6: the doubling local search over any measure.

    >>> from repro.graph.builder import graph_from_arrays
    >>> g = graph_from_arrays(
    ...     4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    ... )
    >>> search = GeneralLocalSearch(g, gamma=3, measure=MinDegreeMeasure())
    >>> search.search(1).communities[0].num_vertices
    4
    """

    def __init__(
        self,
        graph: WeightedGraph,
        gamma: int,
        measure: CohesivenessMeasure,
        delta: float = 2.0,
    ) -> None:
        measure.validate_gamma(gamma)
        if delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        self.graph = graph
        self.gamma = gamma
        self.measure = measure
        self.delta = delta

    def search(self, k: int) -> GeneralResult:
        """Top-``k`` influential γ-cohesive communities."""
        if k < 1:
            raise QueryParameterError("k must be at least 1")
        graph = self.graph
        started = time.perf_counter()
        stats = SearchStats(
            gamma=self.gamma, k=k, delta=self.delta, graph_size=graph.size
        )
        n = graph.num_vertices
        p = min(n, k + self.gamma)
        while True:
            communities = all_cohesive_communities(
                graph, p, self.gamma, self.measure
            )
            stats.prefixes.append(p)
            stats.prefix_sizes.append(graph.prefix_size(p))
            stats.counts.append(len(communities))
            if len(communities) >= k or p == n:
                break
            target = int(math.ceil(self.delta * graph.prefix_size(p)))
            p = max(graph.grow_prefix(p, target), min(p + 1, n))
        stats.elapsed_seconds = time.perf_counter() - started
        return GeneralResult(communities[:k], stats)
