"""Query-dependent vertex weights (the paper's stated future work).

Footnote 1 and the Conclusion sketch an extension: "the techniques
proposed in this paper can be extended to the case that the weights of
vertices are computed online based on a query, e.g., the weight of a
vertex is the reciprocal of the shortest distance to query vertices as
studied in closest community search [23]".

This module implements that extension:

* :func:`closeness_weights` — the weight vector of [23]: for query vertex
  set ``Q``, ``w(v) = 1 / (1 + dist(v, Q))`` (multi-source BFS), with
  deterministic tie-breaking so weights stay distinct; unreachable
  vertices get weight ~0 (they can never join a community with the
  query).
* :func:`reweight` — rebuild a :class:`WeightedGraph` under any new
  weight vector.  This is exactly the operation the index-based approach
  cannot support (its materialisation is locked to one weight vector,
  Section 1) and the online LocalSearch handles by construction: rebuild
  the rank order in O(n log n + m), then query as usual.
* :func:`top_k_closest_communities` — the end-to-end query: re-weight by
  closeness to ``Q``, then run LocalSearch-P.  Reported communities are
  cohesive subgraphs whose *least-close* member is as close to the query
  as possible — the closest-community semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, List, Optional, Sequence

from ..errors import QueryParameterError, UnknownVertexError
from ..graph.builder import GraphBuilder
from ..graph.weighted_graph import WeightedGraph
from .local_search import TopKResult
from .progressive import LocalSearchP

__all__ = [
    "closeness_weights",
    "reweight",
    "top_k_closest_communities",
]


def closeness_weights(
    graph: WeightedGraph,
    query_vertices: Sequence[Hashable],
    unreachable_weight: float = 0.0,
) -> List[float]:
    """``w(v) = 1 / (1 + dist(v, Q))`` per rank, deterministically de-tied.

    Multi-source BFS from the query set over the whole graph; O(n + m).
    Query vertices themselves get weight 1.  Ties (same distance) are
    broken by the graph's existing rank order, scaled far below the
    smallest distance gap, so the resulting vector is strictly totalised
    as the paper requires.
    """
    if not query_vertices:
        raise QueryParameterError("at least one query vertex is required")
    n = graph.num_vertices
    dist = [-1] * n
    queue: deque = deque()
    for label in query_vertices:
        rank = graph.rank_of(label)  # raises UnknownVertexError if absent
        if dist[rank] == -1:
            dist[rank] = 0
            queue.append(rank)
    while queue:
        u = queue.popleft()
        for w in graph.iter_neighbors(u):
            if dist[w] == -1:
                dist[w] = dist[u] + 1
                queue.append(w)

    # Tie-break epsilon: n·eps must stay below the smallest distance gap
    # 1/((1+d)(2+d)) >= 1/(n(n+1)), so eps < 1/(n^2 (n+1)).
    eps = 1.0 / (4.0 * (n + 1) ** 3)
    weights = []
    for rank in range(n):
        if dist[rank] < 0:
            base = unreachable_weight
        else:
            base = 1.0 / (1.0 + dist[rank])
        weights.append(base + eps * (n - rank))
    return weights


def reweight(
    graph: WeightedGraph, weights: Sequence[float]
) -> WeightedGraph:
    """Rebuild the graph under a new per-rank weight vector.

    The adjacency is preserved; only the rank order changes.  O(n log n +
    m).  This is the operation that forces index-based approaches into a
    full index rebuild and that online search supports natively.
    """
    n = graph.num_vertices
    if len(weights) != n:
        raise QueryParameterError(
            "weights must provide one value per vertex"
        )
    builder = GraphBuilder(ties="rank")
    for rank in range(n):
        builder.add_vertex(graph.label(rank), float(weights[rank]))
    for u, v in graph.iter_edges():
        builder.add_edge(graph.label(u), graph.label(v))
    return builder.build()


def top_k_closest_communities(
    graph: WeightedGraph,
    query_vertices: Sequence[Hashable],
    k: int,
    gamma: int,
    delta: float = 2.0,
) -> TopKResult:
    """Top-``k`` influential γ-communities under query-closeness weights.

    The influence value of a reported community is the closeness weight
    of its farthest-from-query member, so the top-1 community is the
    cohesive subgraph "closest" to the query set overall.  Communities
    that contain a query vertex have influence > 1/(1+ecc) where ecc is
    the member eccentricity w.r.t. ``Q``.

    >>> from repro.graph.builder import graph_from_arrays
    >>> g = graph_from_arrays(
    ...     6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
    ... )
    >>> result = top_k_closest_communities(g, [0], k=1, gamma=2)
    >>> sorted(result.communities[0].vertices)
    [0, 1, 2]
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    weights = closeness_weights(graph, query_vertices)
    reweighted = reweight(graph, weights)
    return LocalSearchP(reweighted, gamma=gamma, delta=delta).run(k=k)
