"""LocalSearch — the instance-optimal top-k search (Algorithm 1).

The framework rests on Theorem 3.1: if ``G>=tau`` contains at least ``k``
influential γ-communities, its top-k are the global top-k.  LocalSearch
therefore looks for the *largest* such threshold by growing a rank prefix
geometrically:

1. start from the ``(k + γ)``-th largest weight (any k communities span at
   least ``k + γ`` distinct vertices — Line 1's heuristic);
2. while ``CountIC`` reports fewer than ``k`` communities and the prefix is
   not the whole graph, grow the prefix until its ``size`` (vertices +
   edges) is at least ``δ`` times the current one (Line 4);
3. run ``EnumIC`` on the final prefix and return its top-k.

With the doubling growth the total work is a geometric series dominated by
the final prefix, which itself is at most ``2δ`` times ``size(G>=tau*)``
(Lemma 3.8) — hence the ``O((2δ²/(δ−1)) · size(G>=tau*))`` bound of
Theorem 3.3, minimised at ``δ = 2``, and instance-optimality within the
class of index-free algorithms (Theorem 3.4).

The module also exposes the *linear growth* alternative discussed in the
Remark of Section 3.3 (used by the growth-strategy ablation benchmark:
fixed increments make the total work quadratic in the accessed subgraph)
and the **LocalSearch-OA** counting variant of Eval-III, which swaps
CountIC for an OnlineAll-based counter.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import QueryParameterError
from ..obs.trace import record_phase
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from .community import Community
from .count import CVSRecord, construct_cvs
from .enumerate import enumerate_top_k
from .fastenum import EnumScratch
from .fastpeel import PeelScratch, resolve_kernel

__all__ = [
    "SearchStats",
    "TopKResult",
    "LocalSearch",
    "top_k_influential_communities",
]


@dataclass
class SearchStats:
    """Instrumentation of one LocalSearch run.

    ``total_work`` is the sum of the sizes of all peeled prefixes — the
    quantity the time-complexity analysis bounds.  ``accessed_size`` is the
    size of the largest (final) prefix — the quantity instance-optimality
    compares against ``size(G>=tau*)``.
    """

    gamma: int = 0
    k: int = 0
    delta: float = 2.0
    prefixes: List[int] = field(default_factory=list)
    prefix_sizes: List[int] = field(default_factory=list)
    counts: List[int] = field(default_factory=list)
    graph_size: int = 0
    elapsed_seconds: float = 0.0
    #: Which kernel served the run (resolved name, never "auto").  One
    #: resolution covers both halves of the query: the peel
    #: (:mod:`repro.core.fastpeel`) and the enumeration
    #: (:mod:`repro.core.fastenum`) dispatch on the same name.
    kernel: Optional[str] = None
    #: Accumulated per-phase wall time in **milliseconds** (CSR build,
    #: gamma-core, peel, enumeration, cursor resume) — written through
    #: :func:`repro.obs.trace.record_phase`, so an active trace span
    #: receives the same increments.  For a cached progressive cursor
    #: the dict accumulates over the family's lifetime (each resume adds
    #: to it), while span phases stay per-query.
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Number of CountIC invocations."""
        return len(self.prefixes)

    @property
    def accessed_size(self) -> int:
        """Size of the largest subgraph accessed (the final prefix)."""
        return self.prefix_sizes[-1] if self.prefix_sizes else 0

    @property
    def total_work(self) -> int:
        """Sum of the sizes of all peeled prefixes."""
        return sum(self.prefix_sizes)

    @property
    def accessed_fraction(self) -> float:
        """``size(accessed) / size(G)`` — the locality claim of Section 3.1."""
        if not self.graph_size:
            return 0.0
        return self.accessed_size / self.graph_size


@dataclass
class TopKResult:
    """Result of a top-k query: communities plus instrumentation."""

    communities: List[Community]
    stats: SearchStats
    record: Optional[CVSRecord] = None

    @property
    def influences(self) -> List[float]:
        """Influence values in reported (decreasing) order."""
        return [c.influence for c in self.communities]

    def __iter__(self):
        return iter(self.communities)

    def __len__(self) -> int:
        return len(self.communities)


CountFunction = Callable[[PrefixView, int], int]


class LocalSearch:
    """Configured top-k influential γ-community searcher (Algorithm 1).

    Parameters
    ----------
    graph:
        The weighted graph to query.
    gamma:
        Minimum-degree cohesiveness parameter (γ >= 1).
    delta:
        Geometric growth ratio (> 1); the paper shows δ = 2 minimises the
        worst-case constant ``2δ²/(δ−1)`` (Section 3.3).
    growth:
        ``"exponential"`` (the paper's choice) or ``"linear"`` (the
        quadratic strawman of the Remark in Section 3.3, for ablations).
    linear_increment:
        Size increment per round under linear growth (defaults to the
        initial prefix size).
    counting:
        ``"countic"`` (Algorithm 2) or ``"onlineall"`` — the LocalSearch-OA
        variant of Eval-III that counts by running the OnlineAll peel
        (with its per-iteration component computation) on each prefix.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        gamma: int,
        delta: float = 2.0,
        growth: str = "exponential",
        linear_increment: Optional[int] = None,
        counting: str = "countic",
        kernel: Optional[str] = None,
    ) -> None:
        if gamma < 1:
            raise QueryParameterError("gamma must be at least 1")
        if delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        if growth not in ("exponential", "linear"):
            raise QueryParameterError(f"unknown growth strategy {growth!r}")
        if counting not in ("countic", "onlineall"):
            raise QueryParameterError(f"unknown counting mode {counting!r}")
        self.graph = graph
        self.gamma = gamma
        self.delta = delta
        self.growth = growth
        self.linear_increment = linear_increment
        self.counting = counting
        self.kernel = kernel

    # ------------------------------------------------------------------
    def initial_prefix(self, k: int) -> int:
        """Line 1 heuristic: the ``(k + γ)``-th largest weight's prefix."""
        return min(self.graph.num_vertices, k + self.gamma)

    def _next_prefix(self, p: int, current_size: int, initial_size: int) -> int:
        """Line 4: the next (larger) prefix according to the growth policy."""
        if self.growth == "exponential":
            target = int(math.ceil(self.delta * current_size))
        else:
            increment = self.linear_increment or max(initial_size, 1)
            target = current_size + increment
        q = self.graph.grow_prefix(p, target)
        # Guarantee progress even for degenerate targets.
        return max(q, min(p + 1, self.graph.num_vertices))

    def _count(self, view: PrefixView, gamma: int) -> int:
        if self.counting == "onlineall":
            from ..baselines.online_all import online_all_count

            return online_all_count(view, gamma)
        return construct_cvs(view, gamma).num_communities

    # ------------------------------------------------------------------
    def search(self, k: int) -> TopKResult:
        """Run Algorithm 1 and return the top-``k`` communities.

        If the whole graph contains fewer than ``k`` influential
        γ-communities, all of them are returned (the paper's Theorem 3.1
        presumes at least ``k`` exist; we degrade gracefully).
        """
        if k < 1:
            raise QueryParameterError("k must be at least 1")
        graph, gamma = self.graph, self.gamma
        started = time.perf_counter()
        kernel = resolve_kernel(self.kernel)
        stats = SearchStats(
            gamma=gamma, k=k, delta=self.delta, graph_size=graph.size,
            kernel=kernel,
        )

        p = self.initial_prefix(k)
        initial_size = graph.prefix_size(p)
        record: Optional[CVSRecord] = None
        # One scratch pair and one chained view family per search: every
        # growth round reuses the previous round's buffers and down-cuts,
        # and the final enumeration runs on the query's enum scratch.
        scratch = PeelScratch() if kernel != "python" else None
        enum_scratch = EnumScratch() if kernel != "python" else None
        view: Optional[PrefixView] = None
        while True:
            view = PrefixView(graph, p) if view is None else view.extend(p)
            if self.counting == "countic":
                record = construct_cvs(
                    view,
                    gamma,
                    kernel=kernel,
                    scratch=scratch,
                    phases=stats.phases,
                )
                count = record.num_communities
            else:
                record = None
                count = self._count(view, gamma)
            stats.prefixes.append(p)
            stats.prefix_sizes.append(view.size)
            stats.counts.append(count)
            if count >= k or view.is_whole_graph:
                break
            p = self._next_prefix(p, view.size, initial_size)

        if record is None:
            # LocalSearch-OA still enumerates through keys/cvs at the end.
            record = construct_cvs(
                PrefixView(graph, p),
                gamma,
                kernel=kernel,
                scratch=scratch,
                phases=stats.phases,
            )
        enum_started = time.perf_counter()
        communities = enumerate_top_k(
            graph, record, k, kernel=kernel, scratch=enum_scratch
        )
        record_phase(
            "enumerate", time.perf_counter() - enum_started, stats.phases
        )
        stats.elapsed_seconds = time.perf_counter() - started
        return TopKResult(communities=communities, stats=stats, record=record)


def top_k_influential_communities(
    graph: WeightedGraph,
    k: int,
    gamma: int,
    delta: float = 2.0,
    kernel: Optional[str] = None,
) -> TopKResult:
    """Top-``k`` influential γ-communities of ``graph`` via LocalSearch.

    The primary public entry point of the library.

    >>> from repro.graph.builder import graph_from_arrays
    >>> g = graph_from_arrays(
    ...     5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)]
    ... )
    >>> result = top_k_influential_communities(g, k=1, gamma=2)
    >>> result.communities[0].influence > 0
    True
    """
    return LocalSearch(graph, gamma=gamma, delta=delta, kernel=kernel).search(k)
