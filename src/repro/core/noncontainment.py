"""Non-containment influential community search (Section 5.1).

An influential γ-community is *non-containment* (Definition 5.1) when none
of its subgraphs is itself an influential γ-community.  The set of all
non-containment communities is pairwise disjoint.

The paper's adaptation of the framework: a keynode ``u`` is a
**non-containment keynode** iff every vertex removed by ``Remove(u)``
(Algorithm 2) ends the procedure with no surviving neighbour; the
corresponding community is then exactly the group ``gp(u)`` — no child
links.  The peel (:func:`repro.core.count.peel_cvs`) computes these flags
when ``track_noncontainment`` is set; this module wraps the LocalSearch
doubling loop around the NC count.

The subgraph ``G>=tau*`` needed for ``k`` NC communities is never smaller
than the one for ``k`` ordinary communities (NC keynodes are a subset of
keynodes), so NC queries are expected to be somewhat slower — Eval-VII.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from ..errors import QueryParameterError
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from .community import Community
from .count import CVSRecord, construct_cvs
from .fastpeel import PeelScratch, resolve_kernel
from .local_search import SearchStats, TopKResult

__all__ = [
    "noncontainment_communities_from_record",
    "top_k_noncontainment_communities",
]


def noncontainment_communities_from_record(
    graph: WeightedGraph, record: CVSRecord, k: Optional[int] = None
) -> List[Community]:
    """Extract the top-``k`` NC communities from a tracked peel record.

    Communities are returned in decreasing influence order; each is its
    keynode's group with no children.
    """
    if record.noncontainment is None:
        raise QueryParameterError(
            "record was peeled without track_noncontainment=True"
        )
    out: List[Community] = []
    flags = record.noncontainment
    for i in range(len(record.keys) - 1, -1, -1):
        if not flags[i]:
            continue
        out.append(
            Community(
                graph,
                keynode=record.keys[i],
                gamma=record.gamma,
                own_vertices=record.group(i),
                children=[],
            )
        )
        if k is not None and len(out) >= k:
            break
    return out


def top_k_noncontainment_communities(
    graph: WeightedGraph,
    k: int,
    gamma: int,
    delta: float = 2.0,
    kernel: Optional[str] = None,
) -> TopKResult:
    """Top-``k`` non-containment influential γ-communities (LocalSearch loop).

    Same doubling framework as Algorithm 1, with CountIC replaced by the
    NC-keynode count; time complexity ``O(size(G>=tau*_NC))`` where
    ``tau*_NC`` is the largest threshold whose subgraph holds ``k`` NC
    communities (Section 5.1).
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    if delta <= 1.0:
        raise QueryParameterError("delta must be greater than 1")

    started = time.perf_counter()
    resolved = resolve_kernel(kernel)
    stats = SearchStats(
        gamma=gamma, k=k, delta=delta, graph_size=graph.size, kernel=resolved
    )
    n = graph.num_vertices
    p = min(n, k + gamma)
    scratch = PeelScratch() if resolved != "python" else None
    view: Optional[PrefixView] = None
    while True:
        view = PrefixView(graph, p) if view is None else view.extend(p)
        record = construct_cvs(
            view,
            gamma,
            track_noncontainment=True,
            kernel=resolved,
            scratch=scratch,
        )
        count = record.num_noncontainment
        stats.prefixes.append(p)
        stats.prefix_sizes.append(view.size)
        stats.counts.append(count)
        if count >= k or view.is_whole_graph:
            break
        target = int(math.ceil(delta * view.size))
        p = max(graph.grow_prefix(p, target), min(p + 1, n))

    communities = noncontainment_communities_from_record(graph, record, k)
    stats.elapsed_seconds = time.perf_counter() - started
    return TopKResult(communities=communities, stats=stats, record=record)
