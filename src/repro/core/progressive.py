"""LocalSearch-P — progressive top-k search (Algorithm 4, Section 4).

LocalSearch (Algorithm 1) only reports communities after its final round;
global algorithms (OnlineAll, Forward) only at the very end.  The
progressive variant exploits the *suffix property* (the ``keys``/``cvs`` of
``G>=tau_i`` is a suffix of those of ``G>=tau_{i+1}``, Lemma 3.1/3.2) to

* peel each round only down to the previous round's threshold
  (ConstructCVS, Algorithm 5 — our ``stop_rank``), and
* enumerate incrementally with a *shared* ``v2key`` union-find
  (EnumIC-P), so each community is built exactly once,

yielding communities in **strictly decreasing influence order** as soon as
they are known.  The user needs no ``k``: iterate :meth:`LocalSearchP.stream`
and stop whenever enough communities have been seen.  Terminating after the
``k``-th community costs ``O(size(G>=tau*_k))`` — the instance-optimality
of LocalSearch carries over (Section 4, "Time Complexity of
LocalSearch-P").
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterator, List, Optional, Tuple

from ..errors import QueryParameterError
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from ..obs.trace import record_phase
from .community import Community
from .count import construct_cvs
from .enumerate import EnumerationState, enumerate_progressive
from .fastenum import EnumScratch
from .fastpeel import PeelScratch, resolve_kernel
from .local_search import SearchStats, TopKResult

__all__ = [
    "LocalSearchP",
    "ProgressiveCursor",
    "progressive_influential_communities",
]


class LocalSearchP:
    """Progressive influential γ-community searcher (Algorithm 4).

    Parameters
    ----------
    graph:
        The weighted graph to query.
    gamma:
        Minimum-degree cohesiveness parameter (γ >= 1).
    delta:
        Geometric growth ratio between rounds (the paper fixes 2 in
        Algorithm 4; configurable here for the δ ablation of Eval-IV).
    noncontainment:
        When true, only *non-containment* communities are yielded
        (Section 5.1): communities containing no other influential
        γ-community; each is exactly its keynode's ``cvs`` group.
    kernel:
        Peel kernel (``python`` / ``array`` / ``numpy`` / ``auto``);
        ``None`` defers to ``REPRO_KERNEL`` / ``auto`` (see
        :mod:`repro.core.fastpeel`).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        gamma: int,
        delta: float = 2.0,
        noncontainment: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        if gamma < 1:
            raise QueryParameterError("gamma must be at least 1")
        if delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        self.graph = graph
        self.gamma = gamma
        self.delta = delta
        self.noncontainment = noncontainment
        self.kernel = kernel
        self.stats = SearchStats(gamma=gamma, delta=delta, graph_size=graph.size)

    # ------------------------------------------------------------------
    def initial_prefix(self) -> int:
        """Line 1: smallest prefix that could hold one community (γ+1)."""
        return min(self.graph.num_vertices, self.gamma + 1)

    def stream(self) -> Iterator[Community]:
        """Yield communities in decreasing influence order, progressively.

        The generator may be abandoned at any time ("the user can terminate
        the algorithm once having seen enough results"); the work done is
        proportional to the largest prefix peeled so far.
        """
        graph, gamma = self.graph, self.gamma
        n = graph.num_vertices
        p_prev = 0
        p = self.initial_prefix()
        if n == 0:
            return
        # One resolved kernel, one reusable scratch pair and one chained
        # view family per stream: round i+1 reuses round i's buffers and
        # down-cuts (allocation-free steady state for the fast kernels,
        # seeded bisects for the python one).  The enumeration state —
        # the oracle's EnumerationState or the flat kernels' EnumScratch
        # — is EnumIC-P's shared ``v2key``: it must persist across every
        # round of this stream (and only this stream).
        kernel = resolve_kernel(self.kernel)
        self.stats.kernel = kernel
        scratch = PeelScratch() if kernel != "python" else None
        state = EnumerationState() if kernel == "python" else None
        enum_scratch = EnumScratch() if kernel != "python" else None
        view: Optional[PrefixView] = None
        while True:
            view = PrefixView(graph, p) if view is None else view.extend(p)
            record = construct_cvs(
                view,
                gamma,
                stop_rank=p_prev,
                track_noncontainment=self.noncontainment,
                kernel=kernel,
                scratch=scratch,
                phases=self.stats.phases,
            )
            self.stats.prefixes.append(p)
            self.stats.prefix_sizes.append(view.size)
            self.stats.counts.append(record.num_communities)
            if self.noncontainment:
                flags = record.noncontainment or []
                # Yield only NC keynodes; their community is gp(u).
                for i in range(len(record.keys) - 1, -1, -1):
                    if not flags[i]:
                        continue
                    yield Community(
                        graph,
                        keynode=record.keys[i],
                        gamma=gamma,
                        own_vertices=record.group(i),
                        children=[],
                    )
            else:
                # An explicit next() loop (not yield-from) so the timed
                # window covers only generator-internal enumeration work
                # — never the consumer's time between pulls.
                enum = enumerate_progressive(
                    graph, record, state, kernel=kernel, scratch=enum_scratch
                )
                while True:
                    t0 = time.perf_counter()
                    try:
                        community = next(enum)
                    except StopIteration:
                        record_phase(
                            "enumerate",
                            time.perf_counter() - t0,
                            self.stats.phases,
                        )
                        break
                    record_phase(
                        "enumerate",
                        time.perf_counter() - t0,
                        self.stats.phases,
                    )
                    yield community
            if view.is_whole_graph:
                return
            p_prev = p
            target = int(math.ceil(self.delta * view.size))
            p = graph.grow_prefix(p, target)
            p = max(p, min(p_prev + 1, n))

    def stream_with_timestamps(
        self,
    ) -> Iterator[Tuple[Community, float]]:
        """Like :meth:`stream`, yielding ``(community, seconds_since_start)``.

        The latency series of Eval-V (Figure 14): the elapsed time from
        query start until the top-``i`` community is reported.
        """
        started = time.perf_counter()
        for community in self.stream():
            yield community, time.perf_counter() - started

    def cursor(self) -> "ProgressiveCursor":
        """A resumable handle over :meth:`stream` (see ProgressiveCursor)."""
        return ProgressiveCursor(self)

    # ------------------------------------------------------------------
    def run(self, k: Optional[int] = None) -> TopKResult:
        """Collect the first ``k`` communities (all of them if ``None``)."""
        started = time.perf_counter()
        communities: List[Community] = []
        for community in self.stream():
            communities.append(community)
            if k is not None and len(communities) >= k:
                break
        self.stats.k = k or len(communities)
        self.stats.elapsed_seconds = time.perf_counter() - started
        return TopKResult(communities=communities, stats=self.stats)


class ProgressiveCursor:
    """Resumable, thread-safe cursor over :meth:`LocalSearchP.stream`.

    The progressive stream yields communities in strictly decreasing
    influence order, and the sequence does not depend on any ``k`` — a
    ``k`` only truncates it.  The cursor exploits that: it materialises
    communities as they are pulled and keeps them, so

    * ``take(k')`` with ``k' <=`` what has been seen is a slice (no
      recomputation at all), and
    * ``take(k')`` with a larger ``k'`` **resumes** the underlying
      generator exactly where the previous call stopped — the suffix
      property (Lemma 3.1/3.2) means no prefix is ever re-peeled.

    This is the primitive behind the service layer's result cache and
    progressive sessions: one cursor amortises a whole family of
    ``(gamma, k)`` queries over the same graph.
    """

    def __init__(self, searcher: LocalSearchP) -> None:
        self.searcher = searcher
        self._stream = searcher.stream()
        self._seen: List[Community] = []
        self._exhausted = False
        self._lock = threading.Lock()

    @property
    def materialized(self) -> int:
        """Number of communities pulled from the stream so far."""
        return len(self._seen)

    @property
    def exhausted(self) -> bool:
        """True once the stream has ended (all communities are known)."""
        return self._exhausted

    def _advance_to(self, k: int) -> None:
        if self._exhausted or len(self._seen) >= k:
            return
        # cursor_resume brackets the whole stream advance, so it
        # *overlaps* the csr_build/gamma_core/peel/enumerate phases the
        # advance triggers — it measures "time spent resuming a cached
        # cursor", not a disjoint slice of the total.
        t0 = time.perf_counter()
        while not self._exhausted and len(self._seen) < k:
            try:
                self._seen.append(next(self._stream))
            except StopIteration:
                self._exhausted = True
        record_phase(
            "cursor_resume",
            time.perf_counter() - t0,
            self.searcher.stats.phases,
        )

    def ensure(self, k: int) -> int:
        """Materialise at least ``k`` communities (fewer if exhausted).

        Returns the number of communities now materialised.
        """
        with self._lock:
            self._advance_to(k)
            return len(self._seen)

    def take(self, k: int) -> Tuple[Community, ...]:
        """The top-``k`` communities, resuming the stream if needed.

        Returns an immutable tuple.  The stream is append-only, so the
        returned slice can never change once ``k`` communities are
        materialised; the serving tier's repeat-hit path memoises these
        answers per ``k`` one level up, in
        :class:`~repro.service.cache.ProgressiveEntry`, which is where
        repeated same-``k`` requests actually land.
        """
        with self._lock:
            self._advance_to(k)
            return tuple(self._seen[:k])

    def peek_all(self) -> List[Community]:
        """All communities materialised so far (no stream advance)."""
        with self._lock:
            return list(self._seen)


def progressive_influential_communities(
    graph: WeightedGraph,
    gamma: int,
    delta: float = 2.0,
    kernel: Optional[str] = None,
) -> Iterator[Community]:
    """Convenience generator over :meth:`LocalSearchP.stream`.

    >>> from repro.graph.builder import graph_from_arrays
    >>> g = graph_from_arrays(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    >>> influences = [c.influence for c in
    ...               progressive_influential_communities(g, gamma=2)]
    >>> influences == sorted(influences, reverse=True)
    True
    """
    return LocalSearchP(graph, gamma=gamma, delta=delta, kernel=kernel).stream()
