"""Community result objects — the linked community forest of EnumIC.

Algorithm 3 is careful *not* to copy vertex sets: ``IC(u)`` is represented
as ``gp(u)`` plus links to child communities (Line 14: "we only link IC(v)
to IC(u) without actually copying"), because influential γ-communities
nest and their total materialised size can exceed the graph size.

:class:`Community` mirrors that representation: every instance owns its
``cvs`` group and a list of child communities; vertex sets are materialised
on demand (O(output) per call) and memoised sizes are maintained without
materialisation.  :class:`TrussCommunity` is the analogue for influential
γ-truss communities, whose groups are *edge* sequences (Section 5.2).
"""

from __future__ import annotations

from typing import Iterator, List, Hashable, Optional, Sequence, Set, Tuple

from ..graph.weighted_graph import WeightedGraph

__all__ = ["GroupView", "Community", "TrussCommunity"]


class GroupView(Sequence):
    """A lazily-materialised window over the shared ``cvs`` buffer.

    Enumeration hands every community its ``gp(keynode)`` group; copying
    the ``cvs`` slice per community re-materialises the whole buffer
    once per query even when the caller never looks at most groups.
    This view stores only ``(buffer, start, stop)`` — O(1) to build,
    O(1) ``len`` — and copies the slice once, on first element access,
    caching the result so repeated iteration costs a plain list walk.

    The underlying ``cvs`` is append-only within a query and never
    mutated in place, so the window's contents are stable.
    """

    __slots__ = ("_buf", "_start", "_stop", "_mat")

    def __init__(self, buf: Sequence[int], start: int, stop: int) -> None:
        self._buf = buf
        self._start = start
        self._stop = stop
        self._mat: Optional[List[int]] = None

    def _materialize(self) -> List[int]:
        mat = self._mat
        if mat is None:
            mat = list(self._buf[self._start:self._stop])
            self._mat = mat
        return mat

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[int]:
        return iter(self._materialize())

    def __getitem__(self, i):
        return self._materialize()[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, GroupView):
            other = other._materialize()
        if isinstance(other, (list, tuple)):
            return self._materialize() == list(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(tuple(self._materialize()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GroupView({self._materialize()!r})"


class Community:
    """One influential γ-community, lazily materialised.

    Attributes
    ----------
    keynode:
        The rank of the community's keynode — its minimum-weight vertex,
        which uniquely determines the community (Lemma 3.4).
    influence:
        ``f(g)``: the weight of the keynode (Definition 2.1).
    gamma:
        The cohesiveness parameter of the query that produced it.
    own_vertices:
        ``gp(keynode)``: the ranks in this community but in no child
        community (the keynode's ``cvs`` group).
    children:
        Child communities (``Ch(u)`` of Algorithm 3); pairwise disjoint,
        each entirely contained in this community, each with strictly
        larger influence.
    """

    __slots__ = (
        "graph",
        "keynode",
        "influence",
        "gamma",
        "own_vertices",
        "children",
        "_num_vertices",
    )

    def __init__(
        self,
        graph: WeightedGraph,
        keynode: int,
        gamma: int,
        own_vertices: Sequence[int],
        children: Optional[List["Community"]] = None,
    ) -> None:
        self.graph = graph
        self.keynode = keynode
        self.influence = graph.weight(keynode)
        self.gamma = gamma
        # A GroupView / tuple is kept as-is (no copy): enumeration hands
        # out zero-copy windows over the shared cvs buffer, and the
        # serving tier passes cached immutable groups.
        self.own_vertices: Sequence[int] = (
            own_vertices
            if isinstance(own_vertices, (GroupView, tuple))
            else list(own_vertices)
        )
        self.children: List[Community] = list(children or [])
        # Children are pairwise disjoint and disjoint from the own group,
        # so the total size is a plain sum — O(1) given child sizes.
        self._num_vertices = len(self.own_vertices) + sum(
            c.num_vertices for c in self.children
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, without materialising the vertex set."""
        return self._num_vertices

    def __len__(self) -> int:
        return self._num_vertices

    def iter_vertex_ranks(self) -> Iterator[int]:
        """All member ranks via a DFS over the community forest."""
        stack: List[Community] = [self]
        while stack:
            node = stack.pop()
            yield from node.own_vertices
            stack.extend(node.children)

    @property
    def vertex_ranks(self) -> List[int]:
        """All member ranks, materialised (O(output))."""
        return list(self.iter_vertex_ranks())

    @property
    def vertices(self) -> List[Hashable]:
        """All member vertices as user-facing labels."""
        graph = self.graph
        return [graph.label(r) for r in self.iter_vertex_ranks()]

    @property
    def keynode_label(self) -> Hashable:
        """User-facing label of the keynode."""
        return self.graph.label(self.keynode)

    def __contains__(self, rank: int) -> bool:
        return any(r == rank for r in self.iter_vertex_ranks())

    def edges(self) -> List[Tuple[int, int]]:
        """Induced edges of the community, as rank pairs (O(members · deg)).

        The paper's maximality proof (Lemma 3.9) notes a correct algorithm
        must be able to report all edges of each community; this reports
        the induced edge set of the member ranks.
        """
        return self.graph.induced_edges(self.iter_vertex_ranks())

    def num_edges(self) -> int:
        """Number of induced edges."""
        return self.graph.induced_edge_count(self.iter_vertex_ranks())

    def min_degree(self) -> int:
        """Minimum induced degree — always >= gamma for a valid community."""
        members: Set[int] = set(self.iter_vertex_ranks())
        best = None
        for u in members:
            d = sum(1 for w in self.graph.iter_neighbors(u) if w in members)
            best = d if best is None else min(best, d)
        return best if best is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Community(keynode={self.keynode_label!r}, "
            f"influence={self.influence:.6g}, n={self.num_vertices}, "
            f"gamma={self.gamma})"
        )

    # Ordering: by influence (communities are compared in ranking contexts).
    def __lt__(self, other: "Community") -> bool:
        return self.influence < other.influence


class TrussCommunity:
    """One influential γ-truss community (Section 5.2), edge-grouped.

    The ``cvs`` of Algorithm 7 is an *edge* sequence, so the forest groups
    are edge lists.  Unlike the vertex case, member vertex sets of parent
    and child groups may overlap (a vertex's edges can be split across
    groups), so the vertex count is computed on materialisation; the edge
    count is an exact sum (edge groups partition the community's edges).
    """

    __slots__ = (
        "graph",
        "keynode",
        "influence",
        "gamma",
        "own_edges",
        "children",
        "_num_edges",
        "_vertex_cache",
    )

    def __init__(
        self,
        graph: WeightedGraph,
        keynode: int,
        gamma: int,
        own_edges: Sequence[Tuple[int, int]],
        children: Optional[List["TrussCommunity"]] = None,
    ) -> None:
        self.graph = graph
        self.keynode = keynode
        self.influence = graph.weight(keynode)
        self.gamma = gamma
        self.own_edges: List[Tuple[int, int]] = list(own_edges)
        self.children: List[TrussCommunity] = list(children or [])
        self._num_edges = len(self.own_edges) + sum(
            c.num_edges for c in self.children
        )
        self._vertex_cache: Optional[List[int]] = None

    @property
    def num_edges(self) -> int:
        """Number of member edges (exact, O(1) given children)."""
        return self._num_edges

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """All member edges via DFS over the forest."""
        stack: List[TrussCommunity] = [self]
        while stack:
            node = stack.pop()
            yield from node.own_edges
            stack.extend(node.children)

    @property
    def edge_list(self) -> List[Tuple[int, int]]:
        """All member edges, materialised."""
        return list(self.iter_edges())

    @property
    def vertex_ranks(self) -> List[int]:
        """All member ranks (deduplicated endpoints), cached."""
        if self._vertex_cache is None:
            seen: Set[int] = set()
            for u, v in self.iter_edges():
                seen.add(u)
                seen.add(v)
            self._vertex_cache = sorted(seen)
        return self._vertex_cache

    @property
    def num_vertices(self) -> int:
        """Number of member vertices."""
        return len(self.vertex_ranks)

    @property
    def vertices(self) -> List[Hashable]:
        """Member vertices as labels."""
        graph = self.graph
        return [graph.label(r) for r in self.vertex_ranks]

    @property
    def keynode_label(self) -> Hashable:
        """User-facing label of the keynode."""
        return self.graph.label(self.keynode)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TrussCommunity(keynode={self.keynode_label!r}, "
            f"influence={self.influence:.6g}, n={self.num_vertices}, "
            f"m={self.num_edges}, gamma={self.gamma})"
        )

    def __lt__(self, other: "TrussCommunity") -> bool:
        return self.influence < other.influence
