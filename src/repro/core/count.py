"""CountIC / ConstructCVS — keynode peeling (Algorithms 2 and 5).

The number of influential γ-communities in a graph equals its number of
*keynodes* (Lemma 3.4): vertices ``u`` for which some subgraph with minimum
degree ≥ γ has influence value exactly ``w(u)``.  Algorithm 2 (CountIC)
computes all keynodes of a graph in **linear time** by iteratively

1. reducing the graph to its γ-core,
2. extracting the minimum-weight vertex ``u`` (a keynode), and
3. removing ``u`` and re-reducing to the γ-core (procedure ``Remove``),
   appending every removed vertex to the *community-aware vertex sequence*
   ``cvs``.

Algorithm 5 (ConstructCVS) is the same peel with an early stop used by the
progressive algorithm: stop as soon as the next minimum-weight vertex
already belonged to the previous (smaller) subgraph — its keynodes were
reported in earlier rounds (the suffix property of Section 4).

Rank encoding makes both trivial to implement in O(size): the
minimum-weight alive vertex is always the maximum alive rank, found with a
single descending scan pointer, and "belongs to the previous subgraph"
means "rank < previous prefix length".

The result is a :class:`CVSRecord`: ``keys`` (keynode ranks in extraction,
i.e. increasing-weight, order), ``cvs`` (vertex removal sequence) and the
group boundaries ``starts``, from which
:mod:`repro.core.enumerate` reconstructs the communities.  Vertices removed
by the *initial* γ-core reduction belong to no community of the graph and
are appended to neither sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.subgraph import PrefixView

__all__ = ["CVSRecord", "peel_cvs", "construct_cvs", "count_communities"]


@dataclass
class CVSRecord:
    """Output of the keynode peel over one (prefix) subgraph.

    Attributes
    ----------
    keys:
        Keynode ranks in extraction order — **increasing weight**
        (equivalently strictly decreasing rank).  ``keys[-1]`` is the
        highest-influence keynode: the top-1 community's keynode.
    cvs:
        The community-aware vertex sequence: every vertex removed by the
        main peel, in removal order.  ``cvs`` is partitioned into
        contiguous *groups*, one per keynode, each beginning with its
        keynode.
    starts:
        ``starts[i]`` = offset in ``cvs`` where keynode ``keys[i]``'s group
        begins.
    p:
        The prefix length (number of vertices) of the peeled subgraph.
    gamma:
        The cohesiveness parameter used.
    stop_rank:
        The progressive early-stop boundary that was applied (0 = none):
        only keynodes with rank >= ``stop_rank`` were extracted.
    nbrs:
        The prefix adjacency used by the peel — a materialised
        list-of-lists (python kernel) or a shared-buffer
        :class:`~repro.graph.csr.PrefixAdjacency` (array/numpy kernels);
        either way ``nbrs[v]`` is the in-prefix neighbour row EnumIC
        scans ("neighbours of v in g", Line 10 of Algorithm 3).
    noncontainment:
        When non-containment tracking was requested: one flag per keynode,
        true iff the keynode is a non-containment keynode (Section 5.1).
    """

    keys: List[int]
    cvs: List[int]
    starts: List[int]
    p: int
    gamma: int
    stop_rank: int = 0
    nbrs: Optional[Sequence[Sequence[int]]] = None
    noncontainment: Optional[List[bool]] = None
    #: Lazily-filled ``group(i)`` tuples; groups are immutable, so the
    #: slices are computed once and shared by every caller thereafter.
    _group_cache: Dict[int, Tuple[int, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_communities(self) -> int:
        """``CountIC``'s answer: |keys| (Lemma 3.4)."""
        return len(self.keys)

    @property
    def num_noncontainment(self) -> int:
        """Number of non-containment keynodes (requires tracking)."""
        if self.noncontainment is None:
            raise ValueError(
                "peel was run without track_noncontainment=True"
            )
        return sum(self.noncontainment)

    def group(self, i: int) -> Tuple[int, ...]:
        """The ``gp(keys[i])`` vertex group (keynode first).

        Returned as a cached, immutable tuple: the serving tier hands
        groups out per request, and groups never change once peeled, so
        repeat calls must not re-copy the ``cvs`` slice.
        """
        cached = self._group_cache.get(i)
        if cached is None:
            start = self.starts[i]
            stop = (
                self.starts[i + 1] if i + 1 < len(self.starts) else len(self.cvs)
            )
            cached = tuple(self.cvs[start:stop])
            self._group_cache[i] = cached
        return cached

    def group_bounds(self, i: int) -> Tuple[int, int]:
        """Half-open ``cvs`` bounds of group ``i``."""
        start = self.starts[i]
        stop = self.starts[i + 1] if i + 1 < len(self.starts) else len(self.cvs)
        return start, stop


def peel_cvs(
    nbrs: List[List[int]],
    gamma: int,
    stop_rank: int = 0,
    track_noncontainment: bool = False,
    p: Optional[int] = None,
) -> CVSRecord:
    """Run the keynode peel over an explicit adjacency (Algorithms 2/5).

    Parameters
    ----------
    nbrs:
        Adjacency lists of the subgraph over ranks ``0..len(nbrs)-1``;
        rank order must follow decreasing weight.  The lists are not
        modified.
    gamma:
        Minimum-degree cohesiveness parameter (γ >= 1).
    stop_rank:
        Stop extracting once the minimum-weight alive vertex has rank
        below this value (Algorithm 5's threshold; 0 disables).
    track_noncontainment:
        Also decide, per keynode, whether it is a non-containment keynode:
        true iff no vertex removed by its ``Remove`` call still has an
        alive neighbour afterwards (Section 5.1).

    Runs in O(p + m) time and space.
    """
    if gamma < 1:
        raise ValueError("gamma must be at least 1")
    if p is None:
        p = len(nbrs)
    deg = [len(row) for row in nbrs]
    alive = bytearray([1]) * p if p else bytearray()

    # --- Line 1: reduce to the gamma-core (removals recorded nowhere) ---
    stack = [u for u in range(p) if deg[u] < gamma]
    for u in stack:
        alive[u] = 0
    while stack:
        u = stack.pop()
        for w in nbrs[u]:
            if alive[w]:
                deg[w] -= 1
                if deg[w] == gamma - 1:
                    alive[w] = 0
                    stack.append(w)

    # --- main peel -------------------------------------------------------
    keys: List[int] = []
    cvs: List[int] = []
    starts: List[int] = []
    nc_flags: Optional[List[bool]] = [] if track_noncontainment else None

    queue: deque = deque()
    ptr = p - 1
    while True:
        while ptr >= stop_rank and not alive[ptr]:
            ptr -= 1
        if ptr < stop_rank:
            break
        u = ptr  # the minimum-weight alive vertex (Line 5 of Algorithm 2)
        keys.append(u)
        group_start = len(cvs)
        starts.append(group_start)

        # Procedure Remove(u, g, cvs): delete u, cascade gamma-core upkeep.
        alive[u] = 0
        queue.append(u)
        while queue:
            v = queue.popleft()
            cvs.append(v)
            for w in nbrs[v]:
                if alive[w]:
                    deg[w] -= 1
                    if deg[w] == gamma - 1:
                        alive[w] = 0
                        queue.append(w)

        if nc_flags is not None:
            # u is a non-containment keynode iff nothing removed in this
            # batch still touches a surviving vertex.
            is_nc = True
            for v in cvs[group_start:]:
                if any(alive[w] for w in nbrs[v]):
                    is_nc = False
                    break
            nc_flags.append(is_nc)

    return CVSRecord(
        keys=keys,
        cvs=cvs,
        starts=starts,
        p=p,
        gamma=gamma,
        stop_rank=stop_rank,
        nbrs=nbrs,
        noncontainment=nc_flags,
    )


def construct_cvs(
    view: PrefixView,
    gamma: int,
    stop_rank: int = 0,
    track_noncontainment: bool = False,
    kernel: Optional[str] = None,
    scratch=None,
    phases=None,
) -> CVSRecord:
    """ConstructCVS over a prefix view — the kernel dispatcher.

    This is the entry point used by LocalSearch (Algorithm 1, via
    ``CountIC``) and LocalSearch-P (Algorithm 4, with ``stop_rank`` set to
    the previous round's prefix length).

    ``kernel`` selects the peel implementation (``python`` / ``array`` /
    ``numpy`` / ``auto``); ``None`` defers to the ``REPRO_KERNEL``
    environment variable, then ``auto``.  All kernels produce identical
    records (:mod:`repro.core.fastpeel`); the ``python`` kernel — this
    module's :func:`peel_cvs` over a materialised adjacency — is the
    differential-testing oracle.  ``scratch`` optionally carries a
    :class:`~repro.core.fastpeel.PeelScratch` across the rounds of one
    progressive query so buffers and down-cuts are reused.  ``phases``
    optionally accumulates per-phase wall time in ms (see
    :func:`repro.obs.trace.record_phase`) — the python kernel reports
    ``adjacency``/``peel``, the fast kernels ``csr_build`` /
    ``gamma_core`` / ``peel``; :func:`peel_cvs` itself stays untouched
    (it is the differential-testing oracle).
    """
    from time import perf_counter

    from ..obs.trace import record_phase
    from .fastpeel import fast_construct_cvs, resolve_kernel

    resolved = resolve_kernel(kernel)
    if resolved != "python":
        return fast_construct_cvs(
            view,
            gamma,
            stop_rank=stop_rank,
            track_noncontainment=track_noncontainment,
            kernel=resolved,
            scratch=scratch,
            phases=phases,
        )
    t0 = perf_counter()
    nbrs = view.neighbor_lists()
    t1 = perf_counter()
    record = peel_cvs(
        nbrs,
        gamma,
        stop_rank=stop_rank,
        track_noncontainment=track_noncontainment,
    )
    t2 = perf_counter()
    record_phase("adjacency", t1 - t0, phases)
    record_phase("peel", t2 - t1, phases)
    return record


def count_communities(
    view: PrefixView, gamma: int, kernel: Optional[str] = None
) -> int:
    """``CountIC(g, gamma)`` — the number of influential γ-communities.

    Linear in ``size(view)`` (Theorem 3.2).
    """
    return construct_cvs(view, gamma, kernel=kernel).num_communities
