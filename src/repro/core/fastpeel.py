"""Flat-array peel kernels — allocation-free ConstructCVS / CountIC.

:func:`repro.core.count.peel_cvs` (the *python* kernel) is the readable,
line-by-line transcription of Algorithms 2/5 and stays the differential-
testing oracle.  This module provides two drop-in replacements that
produce **identical** :class:`~repro.core.count.CVSRecord` outputs while
cutting the constant factor:

* the ``array`` kernel — pure stdlib.  It peels directly over the
  graph's shared :class:`~repro.graph.csr.CSRAdjacency` buffers instead
  of materialising a per-call list-of-lists adjacency, and folds the
  alive flag into the degree array: removed vertices are parked at a
  large negative sentinel, so liveness is one sign test on the value
  already in hand and dead neighbours cost a single comparison.  Its
  working state lives in a reusable :class:`PeelScratch`, so the steady
  state of a progressive query allocates nothing proportional to the
  prefix beyond its outputs;
* the ``numpy`` kernel — the same sequential keynode extraction on top
  of a **vectorised** preparation: prefix degrees and the initial
  γ-core reduction (typically the bulk of a cold peel on a heavy-tailed
  graph) run as whole-array numpy operations before the Python loop
  takes over for the order-sensitive group peel.

Across the rounds of a progressive query the scratch also carries the
previous round's **down-cuts** forward.  The prefix grows monotonically,
so the next round's cuts are last round's plus one bump per edge into
the new rank region (enumerated from the new vertices' up-rows — the
mirror direction), plus fresh cuts for the new ranks themselves: cut
maintenance in time linear to the *growth*, the flat-array analogue of
the paper's "extract G>=tau incrementally" arrangement (Section 3.1)
and of :meth:`~repro.graph.subgraph.PrefixView.extend`.

Kernel selection (:func:`resolve_kernel`): an explicit argument wins,
then the ``REPRO_KERNEL`` environment variable (``python`` / ``array``
/ ``numpy`` / ``auto``), then ``auto`` — numpy when importable, the
stdlib ``array`` kernel otherwise.  A requested ``numpy`` silently
degrades to ``array`` when numpy is missing: the fast path must never
introduce a hard dependency.

Equivalence argument (tested exhaustively in ``tests/test_fastpeel.py``):
the initial γ-core reduction is recorded nowhere and its fixpoint (the
γ-core, with each survivor's degree restricted to survivors) is unique,
so any strategy that reaches the fixpoint yields the same state; the
main peel then uses the python kernel's exact queue discipline (FIFO per
``Remove``, rows iterated up-part-then-down-part ascending), so ``keys``
/ ``cvs`` / ``starts`` / non-containment flags match element for
element.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from time import perf_counter
from typing import List, Optional, Tuple

from ..graph.csr import CSRAdjacency, PrefixAdjacency
from ..graph.subgraph import PrefixView
from ..obs.trace import record_phase
from .count import CVSRecord

__all__ = [
    "KERNELS",
    "PeelScratch",
    "numpy_available",
    "resolve_kernel",
    "fast_construct_cvs",
]

#: Recognised kernel names (``auto`` resolves to one of the last two).
KERNELS = ("python", "array", "numpy")

#: Environment variable consulted when no explicit kernel is passed.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Below this prefix length the ``numpy`` kernel prepares its state with
#: the stdlib path: per-peel numpy fixed costs (buffer views, cumsums)
#: exceed the vectorisation win on tiny prefixes.  Tests pin this to 0
#: to force the vectorised path onto small graphs.
NUMPY_MIN_P = 2048

#: Dead-vertex degree sentinel.  Decrements only ever push it further
#: below zero (at most m < 2**30 times), so a parked vertex can never
#: re-trigger a removal test, and liveness is simply ``deg >= 0``.
_LOW = -(1 << 30)

_numpy_module = None
_numpy_checked = False


def numpy_available() -> bool:
    """Whether the vectorised kernel can run (numpy import succeeds)."""
    return _get_numpy() is not None


def _get_numpy():
    global _numpy_module, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve an explicit kernel name / env var / ``auto`` to a kernel.

    ``numpy`` degrades to ``array`` when numpy is not importable, so a
    deployment can pin ``REPRO_KERNEL=numpy`` without creating a hard
    dependency.
    """
    name = kernel if kernel is not None else os.environ.get(
        KERNEL_ENV_VAR, "auto"
    )
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "numpy" if numpy_available() else "array"
    if name not in KERNELS:
        raise ValueError(
            f"unknown peel kernel {name!r}; choose from "
            f"{', '.join(KERNELS)} or 'auto'"
        )
    if name == "numpy" and not numpy_available():
        return "array"
    return name


class PeelScratch:
    """Reusable working state of the fast peel, carried across rounds.

    A progressive query peels a monotonically growing prefix once per
    round.  The scratch keeps the flat degree buffer and the traversal
    stack alive between rounds (they only grow, by C-level ``extend``),
    and remembers the previous round's down-cuts so the next round
    advances them incrementally instead of re-searching every row.

    One scratch belongs to one graph at a time; the carried cuts are
    keyed on the CSR object identity, so accidentally reusing a scratch
    across graphs degrades to a cold round instead of corrupting state.
    """

    __slots__ = ("deg", "stack", "seed_cuts", "seed_p", "csr")

    def __init__(self) -> None:
        self.deg: List[int] = []
        self.stack: List[int] = []
        self.seed_cuts: Optional[List[int]] = None
        self.seed_p = 0
        self.csr: Optional[CSRAdjacency] = None

    def ensure_degree(self, p: int) -> List[int]:
        """The degree buffer, grown (never shrunk) to at least ``p``."""
        deg = self.deg
        if len(deg) < p:
            deg.extend([0] * (p - len(deg)))
        return deg

    def remember(self, csr: CSRAdjacency, p: int, cuts: List[int]) -> None:
        """Record this round's cuts as the seed for the next round."""
        self.csr = csr
        self.seed_cuts = cuts
        self.seed_p = p

    def invalidate(self) -> None:
        """Drop the warm cut state (buffers are kept)."""
        self.seed_cuts = None
        self.seed_p = 0
        self.csr = None


# ----------------------------------------------------------------------
# down-cut maintenance
# ----------------------------------------------------------------------
def _advance_cuts(
    csr: CSRAdjacency, p: int, scratch: PeelScratch
) -> List[int]:
    """Absolute end index of each vertex's in-prefix down-row part.

    Three regimes, cheapest first:

    * whole graph — every row is fully inside the prefix: the cuts are
      the row ends, one C-level slice of the offsets;
    * warm (the scratch carries cuts for a smaller prefix of the same
      graph) — copy and advance: an old row's cut moves only when the
      row gained in-prefix targets, i.e. once per edge ``(v, x)`` with
      ``x`` in the new region, enumerated from ``x``'s up-row (the
      mirror direction), so the work is linear in the growth;
    * cold — one guarded C bisect per vertex (rows entirely inside or
      outside the prefix — the vast majority — settle in two
      comparisons).
    """
    up_off, up_tgt, down_off, down_tgt = csr.lists()
    if p == csr.num_vertices:
        return down_off[1:p + 1]
    if (
        scratch.csr is csr
        and scratch.seed_cuts is not None
        and scratch.seed_p <= p
    ):
        seed_p = scratch.seed_p
        if seed_p == p:
            return scratch.seed_cuts  # identical prefix: reuse as-is
        cuts = scratch.seed_cuts[:seed_p]
        append_cut = cuts.append
        for x in range(seed_p, p):
            lo, hi = down_off[x], down_off[x + 1]
            if lo == hi or down_tgt[lo] >= p:
                append_cut(lo)
            elif down_tgt[hi - 1] < p:
                append_cut(hi)
            else:
                append_cut(bisect_left(down_tgt, p, lo, hi))
        for x in range(seed_p, p):
            a, b = up_off[x], up_off[x + 1]
            if a != b:
                for v in up_tgt[a:b]:
                    if v < seed_p:
                        cuts[v] += 1
        return cuts
    cuts = [0] * p
    for v in range(p):
        lo, hi = down_off[v], down_off[v + 1]
        if lo == hi or down_tgt[lo] >= p:
            cuts[v] = lo
        elif down_tgt[hi - 1] < p:
            cuts[v] = hi
        else:
            cuts[v] = bisect_left(down_tgt, p, lo, hi)
    return cuts


# ----------------------------------------------------------------------
# initial gamma-core reduction
# ----------------------------------------------------------------------
def _reduce_array(
    csr: CSRAdjacency,
    p: int,
    gamma: int,
    cuts: List[int],
    deg: List[int],
    stack: List[int],
) -> None:
    """Degrees + γ-core reduction, stdlib (Line 1 of Algorithm 2).

    Fills ``deg[:p]`` with the post-reduction state: survivor degrees
    restricted to survivors, removed vertices parked at the sentinel.
    """
    up_off, up_tgt, down_off, down_tgt = csr.lists()
    del stack[:]
    push = stack.append
    for v in range(p):
        d = up_off[v + 1] - up_off[v] + cuts[v] - down_off[v]
        if d < gamma:
            deg[v] = _LOW
            push(v)
        else:
            deg[v] = d
    while stack:
        v = stack.pop()
        a, b = up_off[v], up_off[v + 1]
        if a != b:
            for w in up_tgt[a:b]:
                d = deg[w]
                if d >= 0:  # dead vertices are parked at _LOW
                    if d == gamma:
                        deg[w] = _LOW
                        push(w)
                    else:
                        deg[w] = d - 1
        a, b = down_off[v], cuts[v]
        if a != b:
            for w in down_tgt[a:b]:
                d = deg[w]
                if d >= 0:
                    if d == gamma:
                        deg[w] = _LOW
                        push(w)
                    else:
                        deg[w] = d - 1


def _gather_rows(np, flat, starts, lens):
    """Ragged gather: concatenate ``flat[starts[i] : starts[i]+lens[i]]``."""
    total = int(lens.sum())
    if total == 0:
        return flat[:0]
    shifts = np.repeat(
        starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens
    )
    return flat[np.arange(total, dtype=np.int64) + shifts]


def _reduce_numpy(
    csr: CSRAdjacency,
    p: int,
    gamma: int,
    cuts: List[int],
    deg: List[int],
) -> None:
    """Degrees + γ-core reduction, vectorised.

    Same contract as :func:`_reduce_array`; the reduction runs
    wave-parallel (remove every sub-γ vertex of a wave at once, subtract
    the removals via one ``bincount``) — order-free, but the fixpoint it
    reaches is the same unique γ-core.
    """
    np = _get_numpy()
    up_off, up_tgt, down_off, down_tgt = csr.numpy_views()
    up_off_p = up_off[:p + 1]
    down_off_p = down_off[:p + 1]
    cuts_np = np.array(cuts, dtype=np.int64)
    deg_np = (
        (up_off_p[1:] - up_off_p[:p]) + (cuts_np - down_off_p[:p])
    ).astype(np.int64)

    alive = deg_np >= gamma
    frontier = np.flatnonzero(~alive)
    while frontier.size:
        up_nbrs = _gather_rows(
            np,
            up_tgt,
            up_off[frontier],
            up_off[frontier + 1] - up_off[frontier],
        )
        down_nbrs = _gather_rows(
            np,
            down_tgt,
            down_off[frontier],
            cuts_np[frontier] - down_off[frontier],
        )
        touched = np.concatenate((up_nbrs, down_nbrs))
        if touched.size:
            deg_np -= np.bincount(touched, minlength=p)[:p]
        newly = alive & (deg_np < gamma)
        frontier = np.flatnonzero(newly)
        alive[frontier] = False

    deg[:p] = np.where(alive, deg_np, _LOW).tolist()


# ----------------------------------------------------------------------
# the main keynode peel (shared by the array and numpy kernels)
# ----------------------------------------------------------------------
def _peel_groups(
    up_off: List[int],
    up_tgt: List[int],
    down_off: List[int],
    down_tgt: List[int],
    cuts: List[int],
    deg: List[int],
    p: int,
    gamma: int,
    stop_rank: int,
    track_noncontainment: bool,
) -> Tuple[List[int], List[int], List[int], Optional[List[bool]]]:
    """The main keynode peel (Lines 2-8 of Algorithm 2 / Algorithm 5).

    Identical discipline to :func:`repro.core.count.peel_cvs`: the
    minimum-weight alive vertex is the maximum alive rank (descending
    scan pointer); ``Remove`` is a FIFO cascade whose pop order *is* the
    ``cvs`` order, so ``cvs`` itself serves as the queue; rows are
    visited up-part then in-prefix down-part.
    """
    keys: List[int] = []
    cvs: List[int] = []
    starts: List[int] = []
    nc_flags: Optional[List[bool]] = [] if track_noncontainment else None
    cvs_append = cvs.append
    ptr = p - 1
    while True:
        while ptr >= stop_rank and deg[ptr] < 0:
            ptr -= 1
        if ptr < stop_rank:
            break
        u = ptr
        keys.append(u)
        group_start = len(cvs)
        starts.append(group_start)

        deg[u] = _LOW
        cvs_append(u)
        head = group_start
        while head < len(cvs):
            v = cvs[head]
            head += 1
            a, b = up_off[v], up_off[v + 1]
            if a != b:
                for w in up_tgt[a:b]:
                    d = deg[w]
                    if d >= 0:  # dead neighbours are parked at _LOW
                        if d == gamma:
                            deg[w] = _LOW
                            cvs_append(w)
                        else:
                            deg[w] = d - 1
            a, b = down_off[v], cuts[v]
            if a != b:
                for w in down_tgt[a:b]:
                    d = deg[w]
                    if d >= 0:
                        if d == gamma:
                            deg[w] = _LOW
                            cvs_append(w)
                        else:
                            deg[w] = d - 1

        if nc_flags is not None:
            # Non-containment iff no vertex of this batch still touches
            # a survivor (alive <=> deg >= 0 under the sentinel scheme).
            is_nc = True
            for v in cvs[group_start:]:
                for w in up_tgt[up_off[v]:up_off[v + 1]]:
                    if deg[w] >= 0:
                        is_nc = False
                        break
                if is_nc:
                    for w in down_tgt[down_off[v]:cuts[v]]:
                        if deg[w] >= 0:
                            is_nc = False
                            break
                if not is_nc:
                    break
            nc_flags.append(is_nc)

    return keys, cvs, starts, nc_flags


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def fast_construct_cvs(
    view: PrefixView,
    gamma: int,
    stop_rank: int = 0,
    track_noncontainment: bool = False,
    kernel: str = "array",
    scratch: Optional[PeelScratch] = None,
    phases=None,
) -> CVSRecord:
    """ConstructCVS over a prefix view via the flat-array kernels.

    Output-equivalent to the python kernel of
    :func:`repro.core.count.construct_cvs`; ``scratch`` (optional)
    carries buffers and down-cut seeds across the rounds of one
    progressive query.  ``phases`` optionally accumulates per-phase
    wall time in ms (``csr_build`` = the graph's one-time CSR
    materialisation, amortised to ~0 on later rounds; ``gamma_core`` =
    degree/cut maintenance + the γ-core reduction; ``peel`` = the
    ordered group peel) via :func:`repro.obs.trace.record_phase`.
    """
    if gamma < 1:
        raise ValueError("gamma must be at least 1")
    t0 = perf_counter()
    csr = view.graph.csr()
    t1 = perf_counter()
    p = view.p
    sc = scratch if scratch is not None else PeelScratch()
    if sc.csr is not csr:
        sc.invalidate()
    deg = sc.ensure_degree(p)
    cuts = _advance_cuts(csr, p, sc)
    if kernel == "numpy" and p >= NUMPY_MIN_P and numpy_available():
        _reduce_numpy(csr, p, gamma, cuts, deg)
    else:
        _reduce_array(csr, p, gamma, cuts, deg, sc.stack)
    sc.remember(csr, p, cuts)
    t2 = perf_counter()

    up_off, up_tgt, down_off, down_tgt = csr.lists()
    keys, cvs, starts, nc_flags = _peel_groups(
        up_off, up_tgt, down_off, down_tgt,
        cuts, deg, p, gamma, stop_rank, track_noncontainment,
    )
    t3 = perf_counter()
    record_phase("csr_build", t1 - t0, phases)
    record_phase("gamma_core", t2 - t1, phases)
    record_phase("peel", t3 - t2, phases)
    return CVSRecord(
        keys=keys,
        cvs=cvs,
        starts=starts,
        p=p,
        gamma=gamma,
        stop_rank=stop_rank,
        nbrs=PrefixAdjacency(csr, p, cuts),
        noncontainment=nc_flags,
    )
