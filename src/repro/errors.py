"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The hierarchy
distinguishes construction-time problems (bad input graphs, weight
collisions) from query-time problems (invalid parameters) and storage-layer
problems (the simulated disk-resident edge store).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "DuplicateWeightError",
    "SelfLoopError",
    "UnknownVertexError",
    "QueryParameterError",
    "StorageError",
    "DatasetError",
    "ServiceError",
    "AdmissionRejected",
    "ClusterWorkerError",
    "UnknownGraphError",
    "UnknownSessionError",
]


class ReproError(Exception):
    """Base class for every intentional error raised by :mod:`repro`."""


class GraphConstructionError(ReproError):
    """Raised when an input edge list or weight vector cannot form a graph."""


class DuplicateWeightError(GraphConstructionError):
    """Raised when two vertices share a weight and the policy is ``"error"``.

    The paper assumes distinct vertex weights (Section 2).  The
    :class:`~repro.graph.builder.GraphBuilder` offers tie-breaking policies;
    this error is raised only under the strict policy.
    """

    def __init__(self, weight: float, first, second) -> None:
        self.weight = weight
        self.first = first
        self.second = second
        super().__init__(
            f"vertices {first!r} and {second!r} share weight {weight!r}; "
            "the paper requires distinct weights "
            "(use ties='rank' or ties='jitter' to break ties automatically)"
        )


class SelfLoopError(GraphConstructionError):
    """Raised when a self-loop is supplied and the policy is ``"error"``."""

    def __init__(self, vertex) -> None:
        self.vertex = vertex
        super().__init__(
            f"self-loop on vertex {vertex!r}; influential-community search "
            "is defined on simple graphs (use drop_self_loops=True)"
        )


class UnknownVertexError(ReproError):
    """Raised when a vertex label is not part of the graph."""

    def __init__(self, vertex) -> None:
        self.vertex = vertex
        super().__init__(f"vertex {vertex!r} is not in the graph")


class QueryParameterError(ReproError):
    """Raised for invalid query parameters (``k``, ``gamma``, ``delta``...)."""


class StorageError(ReproError):
    """Raised by the disk-resident edge store on malformed files or reads."""


class DatasetError(ReproError):
    """Raised by the workload/dataset registry for unknown dataset names."""


class ServiceError(ReproError):
    """Base class for errors raised by the query-serving layer."""


class AdmissionRejected(ServiceError):
    """Raised when admission control refuses a query before execution.

    The serving-layer analogue of HTTP 429: the request was well-formed
    but the server chose not to run it — either the caller's tenant is
    over its token-bucket quota, or the whole server is saturated past
    its queue-depth threshold.  Carries ``tenant`` (``None`` for
    anonymous traffic) and a machine-readable ``reason`` (``"quota"``
    or ``"saturated"``) so transports and tests can branch without
    parsing the message.
    """

    def __init__(self, reason: str, tenant=None, detail: str = "") -> None:
        self.reason = reason
        self.tenant = tenant
        who = f"tenant {tenant!r}" if tenant else "request"
        tail = f": {detail}" if detail else ""
        super().__init__(
            f"admission rejected (429, {reason}): {who} refused{tail}"
        )


class UnknownGraphError(ServiceError):
    """Raised when a graph name is not registered with the GraphRegistry."""

    def __init__(self, name, available=()) -> None:
        self.name = name
        hint = f"; registered: {', '.join(sorted(map(str, available)))}" if available else ""
        super().__init__(f"graph {name!r} is not registered{hint}")


class ClusterWorkerError(ServiceError):
    """Raised when a cluster worker process fails to serve a job.

    Carries the worker-side error flattened to ``kind`` (the original
    exception class name) and message — exception *objects* with custom
    constructors do not round-trip a pickle pipe reliably, strings do.
    """

    def __init__(self, worker: str, kind: str, message: str) -> None:
        self.worker = worker
        self.kind = kind
        super().__init__(f"{worker}: {kind}: {message}")


class UnknownSessionError(ServiceError):
    """Raised for an unknown (or expired and evicted) session id."""

    def __init__(self, session_id) -> None:
        self.session_id = session_id
        super().__init__(
            f"session {session_id!r} does not exist (it may have expired)"
        )
