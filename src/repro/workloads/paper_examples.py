"""The paper's running-example graphs, reconstructed from the text.

Two small graphs appear throughout the paper and pin down exact expected
outputs, which makes them ideal correctness fixtures:

* **Figure 1** — 10 vertices; for γ = 3 there are exactly two influential
  γ-communities: ``{v0, v1, v5, v6}`` (influence 10) and
  ``{v3, v4, v7, v8, v9}`` (influence 13); ``{v3, v4, v7, v8}`` has the
  same influence 13 but is not maximal.
* **Figure 3** — 22 vertices (weights per Figure 4(a)); for γ = 3 the
  top-4 communities are ``{v3, v11, v12, v20}`` (18), ``{v1, v6, v7,
  v16}`` (14), ``{v3, v11, v12, v13, v20}`` (13) and ``{v1, v5, v6, v7,
  v16}`` (12); Examples 3.1–3.3 trace LocalSearch on it step by step
  (τ1 = 18, τ2 = 12, the ``keys``/``cvs`` of Figure 6, the groups of
  Figure 7).

The figure drawings do not list every edge explicitly; the edge sets below
are reconstructed to satisfy **every** stated fact simultaneously (the
community lists, the peel traces of Examples 3.1–3.3, the subgraph sizes
``size(G>=18) = 18`` and ``size(G>=12) = 36``, v7 being a keynode while v6
is not, and the g1/g2 discussion of Example 2.1).  The test suite asserts
all of those facts against these fixtures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.builder import GraphBuilder
from ..graph.weighted_graph import WeightedGraph

__all__ = [
    "figure1_graph",
    "figure3_graph",
    "FIGURE1_COMMUNITIES",
    "FIGURE3_TOP4",
]

#: Expected γ=3 communities of the Figure-1 graph: (influence, members).
FIGURE1_COMMUNITIES: List[Tuple[float, frozenset]] = [
    (13.0, frozenset({"v3", "v4", "v7", "v8", "v9"})),
    (10.0, frozenset({"v0", "v1", "v5", "v6"})),
]

#: Expected γ=3 top-4 of the Figure-3 graph, in decreasing influence.
FIGURE3_TOP4: List[Tuple[float, frozenset]] = [
    (18.0, frozenset({"v3", "v11", "v12", "v20"})),
    (14.0, frozenset({"v1", "v6", "v7", "v16"})),
    (13.0, frozenset({"v3", "v11", "v12", "v13", "v20"})),
    (12.0, frozenset({"v1", "v5", "v6", "v7", "v16"})),
]


def figure1_graph() -> WeightedGraph:
    """The example graph of Figure 1 (Section 1)."""
    weights = {
        "v0": 10.0,
        "v1": 11.0,
        "v2": 12.0,
        "v3": 13.0,
        "v4": 14.0,
        "v5": 15.0,
        "v6": 16.0,
        "v7": 17.0,
        "v8": 18.0,
        "v9": 19.0,
    }
    edges = [
        # K4 on {v0, v1, v5, v6}: the influence-10 community.
        ("v0", "v1"), ("v0", "v5"), ("v0", "v6"),
        ("v1", "v5"), ("v1", "v6"), ("v5", "v6"),
        # K4 on {v3, v4, v7, v8} (influence 13, NOT maximal) ...
        ("v3", "v4"), ("v3", "v7"), ("v3", "v8"),
        ("v4", "v7"), ("v4", "v8"), ("v7", "v8"),
        # ... plus v9 attached to three of them (including v3, so that no
        # all->=14-weight K4 sneaks in) -> the maximal community
        # {v3, v4, v7, v8, v9}, also influence 13.
        ("v9", "v3"), ("v9", "v4"), ("v9", "v8"),
        # v2 stays below degree 3: in no influential 3-community.
        ("v2", "v1"), ("v2", "v3"),
    ]
    builder = GraphBuilder()
    for label, weight in weights.items():
        builder.add_vertex(label, weight)
    builder.add_edges(edges)
    return builder.build()


def figure3_graph() -> WeightedGraph:
    """The example graph of Figure 3 (weights per Figure 4(a))."""
    weights = {
        "v18": 24.0, "v17": 23.0, "v3": 22.0, "v20": 21.0, "v9": 20.0,
        "v12": 19.0, "v11": 18.0, "v16": 17.0, "v1": 16.0, "v6": 15.0,
        "v7": 14.0, "v13": 13.0, "v5": 12.0, "v0": 11.0, "v15": 10.0,
        "v10": 9.0, "v8": 8.0, "v21": 7.0, "v19": 6.0, "v4": 5.0,
        "v2": 4.0, "v14": 3.0,
    }
    edges = [
        # K4 on {v3, v11, v12, v20}: the top-1 community (influence 18).
        ("v3", "v11"), ("v3", "v12"), ("v3", "v20"),
        ("v11", "v12"), ("v11", "v20"), ("v12", "v20"),
        # G>=18 (Figure 4(b)) has 7 vertices and 11 edges: the five edges
        # among/to {v9, v17, v18} keep them below degree 3 so the γ-core
        # reduction removes exactly {v9, v17, v18} (Example 3.2).
        ("v17", "v18"), ("v17", "v9"), ("v18", "v9"),
        ("v9", "v3"), ("v9", "v12"),
        # K4 on {v1, v6, v7, v16}: the top-2 community (influence 14).
        ("v1", "v6"), ("v1", "v7"), ("v1", "v16"),
        ("v6", "v7"), ("v6", "v16"), ("v7", "v16"),
        # v13 attaches to v3, v12, v20 (Example 3.3): top-3 community
        # {v3, v11, v12, v13, v20}, influence 13.
        ("v13", "v3"), ("v13", "v12"), ("v13", "v20"),
        # v5 attaches to exactly {v1, v6, v16}: top-4 community
        # {v1, v5, v6, v7, v16}, influence 12, and the growth trace of
        # Example 3.1 reaches size(G>=12) = 36 right after adding v5.
        ("v5", "v1"), ("v5", "v6"), ("v5", "v16"),
        # v10 attaches to v11, v12, v20 and v9: Example 2.1's g1 =
        # {v3, v10, v11, v12, v20} (influence 9, not maximal) and g2 =
        # {v3, v9, v10, v11, v12, v13, v20} (influence 9, maximal).
        ("v10", "v11"), ("v10", "v12"), ("v10", "v20"), ("v10", "v9"),
        # A lower-influence cluster: K4 on {v0, v15, v8, v21} plus v19,
        # giving communities with influences 7 and 6.
        ("v0", "v15"), ("v0", "v8"), ("v0", "v21"),
        ("v15", "v8"), ("v15", "v21"), ("v8", "v21"),
        ("v19", "v0"), ("v19", "v15"), ("v19", "v8"),
        # And the weakest cluster: K4 on {v19, v4, v2, v14} - influence 3.
        ("v4", "v2"), ("v4", "v14"), ("v2", "v14"),
        ("v19", "v4"), ("v19", "v2"), ("v19", "v14"),
    ]
    builder = GraphBuilder()
    for label, weight in weights.items():
        builder.add_vertex(label, weight)
    builder.add_edges(edges)
    return builder.build()
