"""Vertex-weight (influence) assignment schemes.

Section 2 of the paper: the weight of a vertex represents its influence —
"its PageRank value, centrality score, h-index, social status, etc."; the
experiments use PageRank with damping 0.85.  Every scheme below yields
strictly distinct weights (the paper's standing assumption), breaking ties
deterministically by vertex id.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = ["assign_weights", "SCHEMES"]

Edge = Tuple[int, int]

SCHEMES = ("pagerank", "degree", "random", "identity")


def assign_weights(
    n: int,
    edges: Sequence[Edge],
    scheme: str = "pagerank",
    seed: int = 0,
) -> List[float]:
    """Weights for vertices ``0..n-1`` under the chosen scheme.

    All schemes return strictly distinct values.
    """
    if scheme == "pagerank":
        from ..graph.pagerank import pagerank_weights

        return pagerank_weights(n, edges)
    if scheme == "degree":
        deg = [0] * n
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        # De-tie by id: higher id loses fractionally.
        return [d + (n - i) / (10.0 * n) for i, d in enumerate(deg)]
    if scheme == "random":
        rng = random.Random(seed)
        values = list(range(1, n + 1))
        rng.shuffle(values)
        return [float(v) for v in values]
    if scheme == "identity":
        return [float(n - i) for i in range(n)]
    raise ValueError(f"unknown weight scheme {scheme!r}; choose from {SCHEMES}")
