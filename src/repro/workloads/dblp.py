"""Synthetic DBLP-style co-author network for the case study (Eval-IX).

The paper's case study extracts a co-author graph from DBLP (1,743
researchers after filtering) and reports:

* the top-1 influential **5-community** — 14 researchers around
  "Xingfang Wang" (influence rank 215 of 1,743);
* the top-1 influential **6-truss community** — a smaller, denser subset
  of 6 researchers around "AnHai Doan" (influence rank 339);
* the 5-core *community* containing the top 5-community has 1,148
  vertices (Figure 21's point: plain cohesive communities blow up, the
  influence constraint refines them to core members).

DBLP itself is unavailable offline, so :func:`synthetic_dblp` plants the
same structure in a generated network of ~1,743 researchers with
deterministic human-readable names:

* a large, sparse 5-core "mainstream" blob (≈ 1,100+ researchers) —
  the Figure-21 blow-up;
* inside it, a 14-researcher tight collaboration cluster whose members
  have high (but not maximal) PageRank — the top 5-community;
* inside that, a 6-researcher near-clique — the top 6-truss community,
  with a slightly lower-ranked minimum member, mirroring the paper's
  observation that truss communities trade influence for density.

The test suite asserts the three qualitative relations (containment,
relative sizes, relative influence ranks) rather than the researchers'
names.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..graph.builder import GraphBuilder
from ..graph.weighted_graph import WeightedGraph
from ..graph.pagerank import pagerank_weights

__all__ = ["synthetic_dblp", "researcher_names"]

_FIRST = [
    "Wei", "Lei", "Jing", "Anna", "Marco", "Elena", "Rahul", "Mina",
    "Tomas", "Sofia", "Pedro", "Keiko", "Ivan", "Lucia", "Omar", "Grace",
    "Henrik", "Priya", "Diego", "Nadia", "Felix", "Aisha", "Viktor",
    "Clara", "Mateo", "Yuki", "Stefan", "Leila", "Bruno", "Hana",
]

_LAST = [
    "Wang", "Chen", "Liu", "Rossi", "Novak", "Sato", "Patel", "Garcia",
    "Silva", "Kim", "Nguyen", "Mueller", "Kowalski", "Haddad", "Olsen",
    "Ferrari", "Tanaka", "Costa", "Ivanov", "Dubois", "Schmidt", "Park",
    "Ali", "Johansson", "Moreau", "Ricci", "Yamamoto", "Petrov", "Weber",
    "Santos",
]


def researcher_names(count: int) -> List[str]:
    """``count`` distinct, deterministic researcher names."""
    names: List[str] = []
    i = 0
    while len(names) < count:
        first = _FIRST[i % len(_FIRST)]
        last = _LAST[(i // len(_FIRST)) % len(_LAST)]
        suffix = i // (len(_FIRST) * len(_LAST))
        name = f"{first} {last}" if suffix == 0 else f"{first} {last} {suffix}"
        names.append(name)
        i += 1
    return names


def synthetic_dblp(
    num_researchers: int = 1743, seed: int = 7
) -> Tuple[WeightedGraph, Dict[str, List[str]]]:
    """Build the case-study network.

    Returns ``(graph, planted)`` where ``planted`` records the planted
    ground truth: ``planted["top_core_cluster"]`` (the 14 tight
    collaborators), ``planted["top_truss_cluster"]`` (the 6-researcher
    near-clique) and ``planted["blob"]`` (the big sparse 5-core).
    """
    rng = random.Random(seed)
    n = num_researchers
    names = researcher_names(n)

    blob_size = max(1100, n * 2 // 3)
    blob = list(range(blob_size))

    # Tight 14-researcher cluster placed inside the blob, away from the
    # very top PageRank ranks (the paper's keynode ranks 215 of 1743).
    cluster = list(range(40, 54))
    # The 6-researcher clique lives elsewhere in the blob, with slightly
    # lower PageRank members (the paper's truss keynode ranks 339 vs 215).
    truss_cluster = list(range(90, 96))

    edges: List[Tuple[int, int]] = []

    # 1. The sparse 5-core blob: a 6-regular-ish random backbone.  Each
    # blob member gets ≥ 6 partners, so after PageRank weighting the
    # 5-core of the blob is essentially the whole blob (Figure 21).
    for u in blob:
        partners = set()
        while len(partners) < 6:
            v = rng.randrange(blob_size)
            if v != u:
                partners.add(v)
        for v in partners:
            edges.append((u, v))

    # 2. The tight collaboration cluster: complete *bipartite* K7,7 —
    # min degree 7 (a deep 5-core, the top influential 5-community) but
    # triangle-free, so no truss community hides inside it and the top
    # 6-truss stays the planted clique below.
    left, right = cluster[:7], cluster[7:]
    for u in left:
        for v in right:
            edges.append((u, v))

    # 3. The truss core: a full clique on 6 researchers (every edge in 4
    # triangles -> a 6-truss; also a 5-core, hence itself contained in an
    # influential 5-community of the same influence, as Section 6 notes).
    for i, u in enumerate(truss_cluster):
        for v in truss_cluster[i + 1:]:
            edges.append((u, v))

    # 4. The long tail: researchers outside the blob co-author with 1-3
    # mostly-blob partners (they will not survive a 5-core).
    for u in range(blob_size, n):
        for _ in range(rng.randint(1, 3)):
            v = rng.randrange(blob_size)
            edges.append((u, v))

    # Deduplicate / drop self loops.
    seen = set()
    clean: List[Tuple[int, int]] = []
    for u, v in edges:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in seen:
            seen.add(key)
            clean.append(key)

    # PageRank weights (damping 0.85) — the cluster members gain rank from
    # their dense interconnections but stay below the blob's top hubs.
    weights = pagerank_weights(n, clean)

    builder = GraphBuilder()
    for i in range(n):
        builder.add_vertex(names[i], weights[i])
    for u, v in clean:
        builder.add_edge(names[u], names[v])
    graph = builder.build()

    planted = {
        "top_core_cluster": [names[i] for i in cluster],
        "top_truss_cluster": [names[i] for i in truss_cluster],
        "blob": [names[i] for i in blob],
    }
    return graph, planted
