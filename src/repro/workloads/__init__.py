"""Workloads: generators, the Table-1 stand-in registry, case-study data.

* :mod:`~repro.workloads.generators` — synthetic graph families;
* :mod:`~repro.workloads.weights` — influence-weight assignment schemes;
* :mod:`~repro.workloads.datasets` — stand-ins for the paper's 8 graphs;
* :mod:`~repro.workloads.dblp` — the DBLP-style case-study network;
* :mod:`~repro.workloads.paper_examples` — the exact Figure-1/Figure-3
  example graphs with their paper-stated expected outputs.
"""

from .datasets import (
    DATASETS,
    PAPER_STATS,
    DatasetSpec,
    clear_cache,
    dataset_names,
    load_dataset,
)
from .dblp import researcher_names, synthetic_dblp
from .generators import (
    barabasi_albert,
    build_weighted_graph,
    chung_lu,
    erdos_renyi,
    planted_dense_blocks,
    planted_partition,
    rmat,
)
from .paper_examples import (
    FIGURE1_COMMUNITIES,
    FIGURE3_TOP4,
    figure1_graph,
    figure3_graph,
)
from .weights import SCHEMES, assign_weights

__all__ = [
    "DATASETS",
    "PAPER_STATS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "clear_cache",
    "synthetic_dblp",
    "researcher_names",
    "erdos_renyi",
    "barabasi_albert",
    "chung_lu",
    "rmat",
    "planted_partition",
    "planted_dense_blocks",
    "build_weighted_graph",
    "assign_weights",
    "SCHEMES",
    "figure1_graph",
    "figure3_graph",
    "FIGURE1_COMMUNITIES",
    "FIGURE3_TOP4",
]
