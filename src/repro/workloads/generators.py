"""Synthetic graph generators for the evaluation workloads.

The paper evaluates on eight real graphs (Table 1) that are unavailable
here (and at up to 1.47B edges, beyond a pure-Python run anyway — see the
substitution table in DESIGN.md).  These generators produce structurally
comparable stand-ins:

* :func:`erdos_renyi` — G(n, m) uniform random graphs (test baselines);
* :func:`barabasi_albert` — preferential attachment: heavy-tailed degrees,
  core numbers concentrated around the attachment parameter;
* :func:`chung_lu` — configurable power-law degree distribution (the
  signature of the SNAP/LAW web and social graphs);
* :func:`rmat` — recursive-matrix graphs (Graph500-style skew);
* :func:`planted_partition` — disjoint dense blocks in a sparse sea
  (ground-truth communities, used by the DBLP case study);
* :func:`planted_dense_blocks` — overlay dense blocks onto any edge list,
  raising ``γmax`` so the large-γ experiments (Figures 10, 11, 16) have
  non-empty answers, as the real graphs' deep cores do;
* :func:`delta_stream` — a deterministic stream of edge-mutation batches
  over an evolving model of the graph (``repro.live`` workloads): every
  op is *effective* (inserts of absent edges, deletes of present ones,
  reweights to fresh distinct values), so replaying the stream through
  ``GraphRegistry.apply`` and through a scratch rebuild exercises the
  overlay path rather than the no-op path.

All generators are deterministic given ``seed`` and return
``(num_vertices, edge_list)`` with self-loops and duplicates removed;
:func:`build_weighted_graph` attaches weights (PageRank by default — the
paper's setting) and produces a :class:`WeightedGraph`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.builder import graph_from_arrays
from ..graph.weighted_graph import WeightedGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "chung_lu",
    "rmat",
    "planted_partition",
    "planted_dense_blocks",
    "delta_stream",
    "build_weighted_graph",
]

Edge = Tuple[int, int]


def _dedupe(edges: Iterable[Edge]) -> List[Edge]:
    """Canonicalise, drop self-loops and duplicates, deterministic order."""
    seen: Set[Edge] = set()
    for u, v in edges:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        seen.add(key)
    return sorted(seen)


def erdos_renyi(n: int, m: int, seed: int = 0) -> Tuple[int, List[Edge]]:
    """A uniform random graph with ``n`` vertices and ~``m`` edges."""
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    max_edges = n * (n - 1) // 2
    target = min(m, max_edges)
    while len(edges) < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edges.add((u, v) if u < v else (v, u))
    return n, sorted(edges)


def barabasi_albert(
    n: int, attach: int, seed: int = 0
) -> Tuple[int, List[Edge]]:
    """Preferential attachment: each new vertex attaches to ``attach`` others.

    Produces a heavy-tailed degree distribution with degeneracy ≈ ``attach``.
    """
    if attach < 1:
        raise ValueError("attach must be at least 1")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Repeated-endpoint list: sampling from it is preferential attachment.
    targets: List[int] = list(range(min(attach + 1, n)))
    # Seed clique among the first attach+1 vertices.
    for i in range(len(targets)):
        for j in range(i + 1, len(targets)):
            edges.append((i, j))
    pool: List[int] = [v for e in edges for v in e]
    for u in range(len(targets), n):
        chosen: Set[int] = set()
        while len(chosen) < min(attach, u):
            chosen.add(pool[rng.randrange(len(pool))])
        for v in chosen:
            edges.append((v, u))
            pool.append(u)
            pool.append(v)
    return n, _dedupe(edges)


def chung_lu(
    n: int,
    avg_degree: float,
    exponent: float = 2.5,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """Chung-Lu power-law graph: P(edge u,v) ∝ w_u · w_v.

    Expected weights follow ``w_i ∝ (i + i0)^(-1/(exponent-1))``; edges are
    drawn by the m-sampling trick with an alias-free inversion, giving
    ~``n · avg_degree / 2`` distinct edges.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    i0 = 1.0
    ranks = np.arange(n, dtype=np.float64) + i0
    w = ranks ** (-1.0 / (exponent - 1.0))
    w *= (avg_degree * n) / w.sum()  # scale to the target degree sum
    prob = w / w.sum()
    target_edges = int(n * avg_degree / 2)
    # Oversample to compensate for dedupe losses, in one vector draw.
    draws = int(target_edges * 1.35) + 16
    us = rng.choice(n, size=draws, p=prob)
    vs = rng.choice(n, size=draws, p=prob)
    return n, _dedupe(zip(us.tolist(), vs.tolist()))


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """R-MAT recursive-matrix graph: ``2**scale`` vertices, skewed degrees."""
    n = 1 << scale
    m = n * edge_factor
    rng = random.Random(seed)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    edges: List[Edge] = []
    for _ in range(m):
        u = v = 0
        half = n >> 1
        while half:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        edges.append((u, v))
    return n, _dedupe(edges)


def planted_partition(
    num_blocks: int,
    block_size: int,
    p_in: float,
    p_out_edges: int,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """Disjoint dense blocks plus random inter-block edges.

    Each block is an Erdős–Rényi ``G(block_size, p_in)``; ``p_out_edges``
    random edges connect distinct blocks.  Ground-truth communities for
    tests and the DBLP-style case study.
    """
    rng = random.Random(seed)
    n = num_blocks * block_size
    edges: List[Edge] = []
    for block in range(num_blocks):
        base = block * block_size
        for i in range(block_size):
            for j in range(i + 1, block_size):
                if rng.random() < p_in:
                    edges.append((base + i, base + j))
    for _ in range(p_out_edges):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u // block_size != v // block_size:
            edges.append((u, v))
    return n, _dedupe(edges)


def planted_dense_blocks(
    n: int,
    edges: Sequence[Edge],
    num_blocks: int,
    block_size: int,
    p_in: float,
    seed: int = 0,
    spread: bool = True,
) -> List[Edge]:
    """Overlay dense random blocks onto an existing edge list.

    Raises the graph's degeneracy to ≈ ``block_size · p_in`` so queries
    with large γ remain satisfiable, mirroring the deep cores of the
    paper's web graphs (``γmax`` up to 3,247 on Arabic).  When ``spread``
    is true the blocks are placed at evenly-spaced vertex offsets
    (overlapping communities across the weight spectrum); otherwise they
    tile from vertex 0.
    """
    rng = random.Random(seed)
    out = list(edges)
    if n < block_size:
        raise ValueError("block_size exceeds the number of vertices")
    for block in range(num_blocks):
        if spread:
            base = (block * max(1, (n - block_size) // max(1, num_blocks - 1))
                    ) if num_blocks > 1 else 0
            base = min(base, n - block_size)
            members = list(range(base, base + block_size))
        else:
            base = block * block_size
            if base + block_size > n:
                break
            members = list(range(base, base + block_size))
        for i in range(block_size):
            for j in range(i + 1, block_size):
                if rng.random() < p_in:
                    out.append((members[i], members[j]))
    return _dedupe(out)


def influence_pockets(
    n: int,
    edges: Sequence[Edge],
    num_pockets: int,
    clique_size: int = 13,
    leaves_per_member: int = 20,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """Append isolated influential pockets: cliques with private followers.

    Each pocket is a clique of ``clique_size`` fresh vertices; every
    member additionally gets ``leaves_per_member`` private degree-1
    follower vertices.  The followers inflate the members' PageRank (they
    funnel teleport mass) while never surviving any γ-core, so the
    pocket's innermost community collapses with **no surviving
    neighbours** — exactly the structure that makes a community
    *non-containment* (Section 5.1).  Real social/web graphs contain many
    such "celebrity cliques with follower halos", which is why the
    paper's non-containment experiments (Eval-VII) find hundreds of
    disjoint NC communities; plain generative models produce almost none.

    Returns the new ``(num_vertices, edges)`` with pockets appended after
    the original ``n`` vertices.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    out = list(edges)
    next_vertex = n
    for _ in range(num_pockets):
        members = list(range(next_vertex, next_vertex + clique_size))
        next_vertex += clique_size
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                out.append((u, v))
        for u in members:
            for _ in range(leaves_per_member):
                out.append((u, next_vertex))
                next_vertex += 1
    return next_vertex, _dedupe(out)


def delta_stream(
    rng: random.Random,
    num_vertices: int,
    edges: Sequence[Edge],
    weights: Sequence[float],
    *,
    batches: Optional[int] = None,
    ops_per_batch: int = 4,
    mix: Tuple[float, float, float] = (0.5, 0.3, 0.2),
):
    """Yield deterministic edge-mutation batches over an evolving model.

    ``mix`` weighs ``(insert, delete, reweight)`` draws.  The generator
    tracks the graph's edge set and weight assignment as the stream it
    produced so far would leave them, so every emitted op changes the
    graph: inserts pick currently-absent vertex pairs, deletes pick
    present edges, and reweights draw a value no other vertex holds
    (distinct weights are a :class:`~repro.graph.builder.GraphBuilder`
    determinism requirement).  Yields label-level op tuples wrapped in
    :class:`~repro.graph.delta.EdgeBatch`; infinite when ``batches`` is
    ``None``.  All randomness flows through the caller's ``rng``.
    """
    from ..graph.delta import EdgeBatch

    if num_vertices < 2:
        raise ValueError("delta_stream needs at least two vertices")
    # Swap-pop edge list for O(1) uniform delete draws.
    edge_list: List[Edge] = []
    edge_pos: Dict[Edge, int] = {}
    for u, v in edges:
        key = (u, v) if u < v else (v, u)
        if key not in edge_pos:
            edge_pos[key] = len(edge_list)
            edge_list.append(key)
    weight_of: Dict[int, float] = {
        v: float(w) for v, w in enumerate(weights)
    }
    used: Set[float] = set(weight_of.values())
    lo, hi = (min(used), max(used)) if used else (1.0, float(num_vertices))
    p_ins, p_del, p_rew = mix
    total = p_ins + p_del + p_rew
    if total <= 0:
        raise ValueError("mix must have positive total mass")

    def _add(key: Edge) -> None:
        edge_pos[key] = len(edge_list)
        edge_list.append(key)

    def _remove(key: Edge) -> None:
        pos = edge_pos.pop(key)
        last = edge_list.pop()
        if last != key:
            edge_list[pos] = last
            edge_pos[last] = pos

    produced = 0
    while batches is None or produced < batches:
        ops: List[Tuple] = []
        for _ in range(ops_per_batch):
            draw = rng.random() * total
            if draw < p_ins + p_del and draw >= p_ins and edge_list:
                key = edge_list[rng.randrange(len(edge_list))]
                _remove(key)
                ops.append(("delete", key[0], key[1]))
                continue
            if draw < p_ins:
                inserted = False
                for _ in range(64):
                    u = rng.randrange(num_vertices)
                    v = rng.randrange(num_vertices)
                    if u == v:
                        continue
                    key = (u, v) if u < v else (v, u)
                    if key not in edge_pos:
                        _add(key)
                        ops.append(("insert", key[0], key[1]))
                        inserted = True
                        break
                if inserted:
                    continue
                # Near-complete graph: fall through to a reweight.
            vertex = rng.randrange(num_vertices)
            old = weight_of[vertex]
            while True:
                new = rng.uniform(lo * 0.5, hi * 1.5)
                if new not in used:
                    break
            used.discard(old)
            used.add(new)
            weight_of[vertex] = new
            ops.append(("reweight", vertex, new))
        if not ops:
            continue
        produced += 1
        yield EdgeBatch(ops=tuple(ops))


def build_weighted_graph(
    n: int,
    edges: Sequence[Edge],
    weights: str = "pagerank",
    seed: int = 0,
) -> WeightedGraph:
    """Attach vertex weights and build the :class:`WeightedGraph`.

    ``weights`` selects the assignment:

    * ``"pagerank"`` — PageRank with damping 0.85 (the paper's setting);
    * ``"degree"`` — vertex degree (deterministically de-tied);
    * ``"random"`` — a random permutation of ``1..n``;
    * ``"identity"`` — weight ``n - i`` for vertex ``i`` (tests).
    """
    from .weights import assign_weights

    weight_list = assign_weights(n, edges, scheme=weights, seed=seed)
    return graph_from_arrays(n, edges, weights=weight_list)
