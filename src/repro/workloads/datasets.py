"""Dataset registry: synthetic stand-ins for the eight graphs of Table 1.

The paper's evaluation uses Email, Youtube, Wiki, Livejournal, Orkut
(SNAP) and Arabic, UK, Twitter (LAW) — 184K to 1.47B edges.  Those are
unavailable offline and beyond pure-Python scale, so each gets a synthetic
stand-in (see the substitution table in DESIGN.md) that preserves what the
algorithms are sensitive to:

* heavy-tailed degree distributions (Chung-Lu / Barabási-Albert / R-MAT);
* deep cores — dense planted blocks lift ``γmax`` to ≥ 60 on the graphs
  the large-γ experiments use (the real Arabic has γmax 3,247);
* the relative size ordering of Table 1 (email < youtube < ... < twitter);
* PageRank vertex weights with damping 0.85 (the paper's setting).

Every stand-in is deterministic (fixed seed), built lazily and cached
in-process.  ``PAPER_STATS`` records the original Table-1 rows so the
Table-1 benchmark can print paper-vs-stand-in side by side.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DatasetError
from ..graph.weighted_graph import WeightedGraph
from . import generators

__all__ = [
    "DatasetSpec",
    "PAPER_STATS",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "clear_cache",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset."""

    name: str
    description: str
    build: Callable[[], WeightedGraph]
    #: Graphs used in each figure roughly follow the paper's groupings.
    paper_vertices: int = 0
    paper_edges: int = 0
    paper_gamma_max: int = 0


#: Table 1 of the paper (name -> (#vertices, #edges, dmax, davg, gammamax)).
PAPER_STATS: Dict[str, Tuple[int, int, int, float, int]] = {
    "email": (36_692, 183_831, 1_383, 10.02, 43),
    "youtube": (1_134_890, 2_987_624, 28_754, 5.27, 51),
    "wiki": (1_791_489, 25_446_040, 238_342, 28.41, 99),
    "livejournal": (3_997_962, 34_681_189, 14_815, 17.35, 360),
    "orkut": (3_072_627, 117_185_083, 33_313, 76.28, 253),
    "arabic": (22_744_080, 553_903_073, 575_628, 48.71, 3_247),
    "uk": (39_459_925, 783_027_125, 1_776_858, 39.69, 588),
    "twitter": (41_652_230, 1_468_365_182, 2_997_487, 70.51, 2_488),
}


def _with_blocks(
    n: int,
    edges,
    num_blocks: int,
    block_size: int,
    p_in: float,
    seed: int,
):
    """Overlay dense blocks (deep cores) onto a generated edge list."""
    return generators.planted_dense_blocks(
        n, edges, num_blocks=num_blocks, block_size=block_size, p_in=p_in,
        seed=seed,
    )


def _build_email() -> WeightedGraph:
    n, edges = generators.chung_lu(2_000, avg_degree=9.0, exponent=2.3, seed=11)
    edges = _with_blocks(n, edges, num_blocks=3, block_size=30, p_in=0.7, seed=11)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_youtube() -> WeightedGraph:
    n, edges = generators.chung_lu(6_000, avg_degree=6.0, exponent=2.2, seed=12)
    edges = _with_blocks(n, edges, num_blocks=4, block_size=40, p_in=0.6, seed=12)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_wiki() -> WeightedGraph:
    n, edges = generators.chung_lu(8_000, avg_degree=14.0, exponent=2.1, seed=13)
    edges = _with_blocks(n, edges, num_blocks=5, block_size=80, p_in=0.8, seed=13)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_livejournal() -> WeightedGraph:
    n, edges = generators.barabasi_albert(10_000, attach=8, seed=14)
    edges = _with_blocks(n, edges, num_blocks=6, block_size=90, p_in=0.75, seed=14)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_orkut() -> WeightedGraph:
    n, edges = generators.chung_lu(9_000, avg_degree=24.0, exponent=2.4, seed=15)
    edges = _with_blocks(n, edges, num_blocks=5, block_size=70, p_in=0.7, seed=15)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_arabic() -> WeightedGraph:
    n, edges = generators.rmat(scale=14, edge_factor=9, seed=16)
    edges = _with_blocks(n, edges, num_blocks=8, block_size=110, p_in=0.75, seed=16)
    # Isolated influential pockets (cliques + follower halos): they give
    # the graph a rich population of *non-containment* communities, the
    # structure Eval-VII queries; see generators.influence_pockets.
    n, edges = generators.influence_pockets(
        n, edges, num_pockets=110, clique_size=13, leaves_per_member=15,
        seed=116,
    )
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_uk() -> WeightedGraph:
    n, edges = generators.rmat(scale=14, edge_factor=11, seed=17)
    edges = _with_blocks(n, edges, num_blocks=8, block_size=90, p_in=0.7, seed=17)
    n, edges = generators.influence_pockets(
        n, edges, num_pockets=110, clique_size=13, leaves_per_member=15,
        seed=117,
    )
    return generators.build_weighted_graph(n, edges, weights="pagerank")


def _build_twitter() -> WeightedGraph:
    n, edges = generators.chung_lu(16_000, avg_degree=22.0, exponent=2.0, seed=18)
    edges = _with_blocks(n, edges, num_blocks=10, block_size=120, p_in=0.7, seed=18)
    return generators.build_weighted_graph(n, edges, weights="pagerank")


DATASETS: Dict[str, DatasetSpec] = {
    "email": DatasetSpec(
        "email", "Chung-Lu power-law + 3 dense blocks (Email stand-in)",
        _build_email, *PAPER_STATS["email"][:2], PAPER_STATS["email"][4],
    ),
    "youtube": DatasetSpec(
        "youtube", "Chung-Lu power-law + 4 dense blocks (Youtube stand-in)",
        _build_youtube, *PAPER_STATS["youtube"][:2], PAPER_STATS["youtube"][4],
    ),
    "wiki": DatasetSpec(
        "wiki", "Chung-Lu power-law + 5 dense blocks (Wiki stand-in)",
        _build_wiki, *PAPER_STATS["wiki"][:2], PAPER_STATS["wiki"][4],
    ),
    "livejournal": DatasetSpec(
        "livejournal", "Barabasi-Albert + 6 dense blocks (Livejournal stand-in)",
        _build_livejournal, *PAPER_STATS["livejournal"][:2],
        PAPER_STATS["livejournal"][4],
    ),
    "orkut": DatasetSpec(
        "orkut", "dense Chung-Lu + 5 dense blocks (Orkut stand-in)",
        _build_orkut, *PAPER_STATS["orkut"][:2], PAPER_STATS["orkut"][4],
    ),
    "arabic": DatasetSpec(
        "arabic", "R-MAT + 8 dense blocks (Arabic web-graph stand-in)",
        _build_arabic, *PAPER_STATS["arabic"][:2], PAPER_STATS["arabic"][4],
    ),
    "uk": DatasetSpec(
        "uk", "R-MAT + 8 dense blocks (UK web-graph stand-in)",
        _build_uk, *PAPER_STATS["uk"][:2], PAPER_STATS["uk"][4],
    ),
    "twitter": DatasetSpec(
        "twitter", "dense Chung-Lu + 10 dense blocks (Twitter stand-in)",
        _build_twitter, *PAPER_STATS["twitter"][:2], PAPER_STATS["twitter"][4],
    ),
}

_CACHE: Dict[str, WeightedGraph] = {}
#: Guards the cache dict itself; builds run outside it, under a
#: per-dataset lock, so concurrent loads of *different* stand-ins
#: proceed in parallel while the same stand-in is only built once.
_CACHE_LOCK = threading.RLock()
_BUILD_LOCKS: Dict[str, threading.Lock] = {}


def dataset_names() -> List[str]:
    """All registered stand-in names, in Table-1 order."""
    return list(DATASETS)


def load_dataset(name: str) -> WeightedGraph:
    """Build (or fetch from cache) the stand-in graph called ``name``.

    Thread-safe: the service layer's GraphRegistry loads stand-ins from
    concurrent queries; double-checked locking guarantees exactly one
    build per name even under contention.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    with _CACHE_LOCK:
        graph = _CACHE.get(name)
        if graph is not None:
            return graph
        build_lock = _BUILD_LOCKS.setdefault(name, threading.Lock())
    with build_lock:
        with _CACHE_LOCK:
            graph = _CACHE.get(name)
        if graph is None:
            graph = spec.build()
            with _CACHE_LOCK:
                _CACHE[name] = graph
    return graph


def clear_cache() -> None:
    """Drop all cached stand-in graphs (tests / memory control)."""
    with _CACHE_LOCK:
        _CACHE.clear()
