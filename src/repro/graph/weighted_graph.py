"""The vertex-weighted graph substrate (Section 3.1 "Graph Organization").

The paper's local-search framework relies on two pre-arrangements of the
input graph ``G = (V, E, w)``:

1. vertices are pre-sorted in **decreasing weight order**, and
2. the adjacency list ``N(u)`` of every vertex is pre-partitioned into
   ``N>=(u)`` (neighbours with weight no smaller than ``w(u)``) and
   ``N<(u)`` (neighbours with smaller weight),

so that the threshold-induced subgraph ``G>=tau`` can be extracted — and
grown incrementally — in time linear to its own size, never touching the
rest of the graph.

:class:`WeightedGraph` realises this by *re-ranking*: internally every
vertex is an integer **rank** in ``0..n-1`` assigned in decreasing weight
order (rank 0 = highest weight).  Consequences used throughout the library:

* ``V>=tau`` is always a rank **prefix** ``0..p-1``;
* ``N>=(u)`` is exactly the set of neighbours with rank **smaller** than
  ``u`` (stored as :meth:`neighbors_up`), ``N<(u)`` the larger ranks
  (:meth:`neighbors_down`), each sorted ascending so prefix-restricted
  degrees are a single :func:`bisect`;
* the minimum-weight alive vertex during a peel is simply the maximum alive
  rank — a descending scan pointer replaces a priority queue, keeping every
  peel linear.

Weights must be distinct (paper Section 2).  Construction through
:class:`~repro.graph.builder.GraphBuilder` offers tie-breaking policies;
this class itself accepts any strictly-decreasing weight sequence.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .csr import CSRAdjacency

from ..errors import GraphConstructionError, UnknownVertexError

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An immutable, vertex-weighted, undirected simple graph.

    Do not call the constructor directly with unchecked data; prefer
    :meth:`from_edges` (or :class:`~repro.graph.builder.GraphBuilder` for
    incremental construction with validation and tie policies).

    Parameters
    ----------
    weights:
        Vertex weights indexed by rank, **strictly decreasing**.
    adj_up:
        ``adj_up[u]`` = sorted list of neighbours of ``u`` with rank < u
        (the paper's ``N>=(u)``).
    adj_down:
        ``adj_down[u]`` = sorted list of neighbours with rank > u
        (the paper's ``N<(u)``).
    labels:
        Original (user-facing) vertex labels indexed by rank.
    validate:
        When True (default) the invariants above are checked, in O(n + m).
    """

    __slots__ = (
        "_weights",
        "_adj_up",
        "_adj_down",
        "_labels",
        "_rank_of",
        "_num_edges",
        "_prefix_sizes",
        "_csr",
    )

    def __init__(
        self,
        weights: Sequence[float],
        adj_up: Sequence[Sequence[int]],
        adj_down: Sequence[Sequence[int]],
        labels: Optional[Sequence[Hashable]] = None,
        validate: bool = True,
    ) -> None:
        n = len(weights)
        self._weights: List[float] = list(weights)
        self._adj_up: List[List[int]] = [list(a) for a in adj_up]
        self._adj_down: List[List[int]] = [list(a) for a in adj_down]
        if labels is None:
            self._labels: List[Hashable] = list(range(n))
        else:
            self._labels = list(labels)
        if len(self._adj_up) != n or len(self._adj_down) != n:
            raise GraphConstructionError(
                "adjacency arrays must have one entry per vertex"
            )
        if len(self._labels) != n:
            raise GraphConstructionError("labels must have one entry per vertex")
        self._rank_of: Dict[Hashable, int] = {
            label: rank for rank, label in enumerate(self._labels)
        }
        if len(self._rank_of) != n:
            raise GraphConstructionError("vertex labels must be unique")
        self._num_edges = sum(len(a) for a in self._adj_up)
        # Lazily-extended cumulative prefix sizes; see prefix_size().
        # _prefix_sizes[p] = size(G_p) = p + |edges among ranks < p|.
        self._prefix_sizes: List[int] = [0]
        # Lazily-built flat-array mirror of the adjacency; see csr().
        self._csr = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        weights: Mapping[Hashable, float],
        vertices: Optional[Iterable[Hashable]] = None,
    ) -> "WeightedGraph":
        """Build a graph from an edge list and a label -> weight mapping.

        Vertices are every key of ``weights`` plus everything mentioned in
        ``edges`` (and optionally ``vertices`` for isolated vertices without
        a weight entry — those get weight below all others, in label order).
        Parallel edges are merged; self-loops are rejected.

        >>> g = WeightedGraph.from_edges([("a", "b")], {"a": 2.0, "b": 1.0})
        >>> g.num_vertices, g.num_edges
        (2, 1)
        """
        from .builder import GraphBuilder  # local import to avoid a cycle

        builder = GraphBuilder()
        if vertices is not None:
            for v in vertices:
                builder.add_vertex(v)
        for label, weight in weights.items():
            builder.add_vertex(label, weight)
        for u, v in edges:
            builder.add_edge(u, v)
        return builder.build()

    @classmethod
    def from_csr(
        cls,
        csr: "CSRAdjacency",
        weights: Sequence[float],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "WeightedGraph":
        """Rebuild a graph from its CSR mirror (the cluster attach path).

        The CSR rows are exactly the ``N>=`` / ``N<`` partition in the
        canonical sorted order, so the reconstruction is a straight
        re-slicing — no validation pass is needed: the buffers came from
        a graph that already passed it.  The given ``csr`` is installed
        as the graph's cached mirror, so the peel kernels run directly
        on the original buffers (zero-copy when those live in a
        shared-memory segment); only the Python-level row lists are
        per-process.
        """
        up_off, up_tgt, down_off, down_tgt = csr.lists()
        n = csr.num_vertices
        graph = cls.__new__(cls)
        graph._weights = list(weights)
        if len(graph._weights) != n:
            raise GraphConstructionError(
                f"{len(graph._weights)} weights for {n} CSR vertices"
            )
        graph._adj_up = [
            up_tgt[up_off[u]:up_off[u + 1]] for u in range(n)
        ]
        graph._adj_down = [
            down_tgt[down_off[u]:down_off[u + 1]] for u in range(n)
        ]
        graph._labels = list(range(n)) if labels is None else list(labels)
        if len(graph._labels) != n:
            raise GraphConstructionError("labels must have one entry per vertex")
        graph._rank_of = {
            label: rank for rank, label in enumerate(graph._labels)
        }
        if len(graph._rank_of) != n:
            raise GraphConstructionError("vertex labels must be unique")
        graph._num_edges = csr.num_edges
        graph._prefix_sizes = [0]
        graph._csr = csr
        return graph

    def _validate(self) -> None:
        n = self.num_vertices
        for rank in range(1, n):
            if not self._weights[rank - 1] > self._weights[rank]:
                raise GraphConstructionError(
                    "weights must be strictly decreasing by rank "
                    f"(ranks {rank - 1} and {rank}: "
                    f"{self._weights[rank - 1]!r} vs {self._weights[rank]!r})"
                )
        seen_up = 0
        for u in range(n):
            up, down = self._adj_up[u], self._adj_down[u]
            if any(v >= u for v in up):
                raise GraphConstructionError(
                    f"adj_up[{u}] contains a rank >= {u}"
                )
            if any(v <= u for v in down):
                raise GraphConstructionError(
                    f"adj_down[{u}] contains a rank <= {u}"
                )
            if sorted(set(up)) != list(up):
                raise GraphConstructionError(
                    f"adj_up[{u}] must be sorted and duplicate-free"
                )
            if sorted(set(down)) != list(down):
                raise GraphConstructionError(
                    f"adj_down[{u}] must be sorted and duplicate-free"
                )
            seen_up += len(up)
        # Mirror consistency: (v in adj_up[u]) <=> (u in adj_down[v]).
        down_total = sum(len(a) for a in self._adj_down)
        if down_total != seen_up:
            raise GraphConstructionError(
                "adj_up and adj_down disagree on the number of edges"
            )
        for u in range(n):
            for v in self._adj_up[u]:
                row = self._adj_down[v]
                pos = bisect_left(row, u)
                if pos >= len(row) or row[pos] != u:
                    raise GraphConstructionError(
                        f"edge ({u}, {v}) present in adj_up but not adj_down"
                    )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._weights)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """``size(G) = |V| + |E|`` as defined in Section 2 of the paper."""
        return self.num_vertices + self._num_edges

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WeightedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"size={self.size})"
        )

    def weight(self, rank: int) -> float:
        """Weight of the vertex at ``rank``."""
        return self._weights[rank]

    def weight_of_label(self, label: Hashable) -> float:
        """Weight of the vertex with user-facing ``label``."""
        return self._weights[self.rank_of(label)]

    def label(self, rank: int) -> Hashable:
        """User-facing label of the vertex at ``rank``."""
        return self._labels[rank]

    def labels(self, ranks: Iterable[int]) -> List[Hashable]:
        """Map an iterable of ranks to their labels."""
        return [self._labels[r] for r in ranks]

    def rank_of(self, label: Hashable) -> int:
        """Rank (0 = highest weight) of the vertex with ``label``."""
        try:
            return self._rank_of[label]
        except KeyError:
            raise UnknownVertexError(label) from None

    def has_vertex(self, label: Hashable) -> bool:
        """Whether a vertex with this label exists."""
        return label in self._rank_of

    def has_edge_ranks(self, u: int, v: int) -> bool:
        """Whether the edge between ranks ``u`` and ``v`` exists (O(log d))."""
        if u == v:
            return False
        if u > v:
            u, v = v, u
        row = self._adj_up[v]  # neighbours of v with smaller rank
        pos = bisect_left(row, u)
        return pos < len(row) and row[pos] == u

    # ------------------------------------------------------------------
    # adjacency (the N>= / N< partition of Section 3.1)
    # ------------------------------------------------------------------
    def neighbors_up(self, u: int) -> List[int]:
        """``N>=(u)``: neighbours with rank < u (weight >= w(u)), sorted."""
        return self._adj_up[u]

    def neighbors_down(self, u: int) -> List[int]:
        """``N<(u)``: neighbours with rank > u (weight < w(u)), sorted."""
        return self._adj_down[u]

    def degree(self, u: int) -> int:
        """Degree of rank ``u`` in the full graph."""
        return len(self._adj_up[u]) + len(self._adj_down[u])

    def csr(self) -> "CSRAdjacency":
        """The flat-array CSR mirror of the adjacency, built once and cached.

        The peel kernels of :mod:`repro.core.fastpeel` run on this; the
        service registry pre-builds it at graph registration so the first
        query pays no flattening cost.  The graph is immutable, so the
        mirror never invalidates (a benign double-build can occur under
        concurrent first calls; both results are identical and one wins).
        """
        csr = self._csr
        if csr is None:
            from .csr import CSRAdjacency

            csr = CSRAdjacency.from_graph(self)
            self._csr = csr
        return csr

    def iter_neighbors(self, u: int) -> Iterator[int]:
        """All neighbours of rank ``u`` (up-part first)."""
        yield from self._adj_up[u]
        yield from self._adj_down[u]

    def neighbors_in_prefix(self, u: int, p: int) -> Iterator[int]:
        """Neighbours of ``u`` inside the rank prefix ``[0, p)``.

        ``u`` itself must lie in the prefix.  Runs in O(d_prefix + log d).
        """
        yield from self._adj_up[u]
        down = self._adj_down[u]
        cut = bisect_left(down, p)
        for i in range(cut):
            yield down[i]

    def degree_in_prefix(self, u: int, p: int) -> int:
        """Degree of ``u`` within the rank prefix ``[0, p)`` (O(log d))."""
        return len(self._adj_up[u]) + bisect_left(self._adj_down[u], p)

    def down_cut(self, u: int, p: int) -> int:
        """Index into ``neighbors_down(u)`` of the first rank >= ``p``."""
        return bisect_left(self._adj_down[u], p)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """All edges as rank pairs ``(u, v)`` with ``u > v``.

        The iteration order is by increasing ``u`` (i.e. decreasing edge
        weight, where the weight of an edge is the weight of its
        minimum-weight endpoint — the ordering used by the semi-external
        algorithms of [27]).
        """
        for u in range(self.num_vertices):
            for v in self._adj_up[u]:
                yield (u, v)

    def edges_as_labels(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """All edges as label pairs."""
        for u, v in self.iter_edges():
            yield (self._labels[u], self._labels[v])

    # ------------------------------------------------------------------
    # thresholds, prefixes and sizes
    # ------------------------------------------------------------------
    def prefix_for_threshold(self, tau: float) -> int:
        """Number of vertices with weight >= ``tau`` (``|V>=tau|``).

        Binary search over the decreasing weight array — O(log n).
        """
        # weights are strictly decreasing; find first index with w < tau.
        lo, hi = 0, self.num_vertices
        weights = self._weights
        while lo < hi:
            mid = (lo + hi) // 2
            if weights[mid] >= tau:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def threshold_for_prefix(self, p: int) -> float:
        """The weight ``tau`` such that ``V>=tau`` is exactly ranks ``< p``.

        This is the weight of rank ``p - 1``.  ``p`` must be >= 1.
        """
        if p <= 0:
            raise ValueError("prefix must contain at least one vertex")
        return self._weights[p - 1]

    @property
    def min_weight(self) -> float:
        """``tau_min``: the smallest vertex weight in the graph."""
        return self._weights[-1]

    @property
    def max_weight(self) -> float:
        """``tau_max``: the largest vertex weight in the graph."""
        return self._weights[0]

    def prefix_size(self, p: int) -> int:
        """``size(G_p) = p + |{edges among ranks < p}|`` — size of ``G>=tau``.

        Computed incrementally and memoised, so a sweep of growing prefixes
        costs O(p_max) in total and never touches ranks beyond the largest
        ``p`` requested (preserving the locality that instance-optimality
        relies on).
        """
        sizes = self._prefix_sizes
        while len(sizes) <= p:
            q = len(sizes)  # next prefix length to account for
            sizes.append(sizes[-1] + 1 + len(self._adj_up[q - 1]))
        return sizes[p]

    def grow_prefix(self, p: int, target_size: int) -> int:
        """Smallest prefix ``q >= p`` with ``size(G_q) >= target_size``.

        Implements Line 4 of Algorithm 1 (and Line 8 of Algorithm 4): grow
        the subgraph vertex by vertex — in decreasing weight order, adding
        each vertex together with its ``N>=`` edges — until the requested
        size is reached, or the whole graph is included (``tau_min``).
        Runs in time linear to the number of vertices/edges added.
        """
        n = self.num_vertices
        q = max(p, 0)
        while q < n and self.prefix_size(q) < target_size:
            q += 1
        return q

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def induced_edge_count(self, ranks: Iterable[int]) -> int:
        """Number of edges of ``G`` with both endpoints in ``ranks``."""
        member = set(ranks)
        count = 0
        for u in member:
            for v in self._adj_up[u]:
                if v in member:
                    count += 1
        return count

    def induced_edges(
        self, ranks: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """Edges of ``G`` with both endpoints in ``ranks`` (as rank pairs)."""
        member = set(ranks)
        out: List[Tuple[int, int]] = []
        for u in sorted(member):
            for v in self._adj_up[u]:
                if v in member:
                    out.append((u, v))
        return out

    def to_edge_list(self) -> List[Tuple[Hashable, Hashable]]:
        """The full edge list as label pairs (materialised)."""
        return list(self.edges_as_labels())

    def weights_by_label(self) -> Dict[Hashable, float]:
        """Mapping label -> weight for the whole graph."""
        return {
            self._labels[rank]: self._weights[rank]
            for rank in range(self.num_vertices)
        }
