"""Incremental, validating construction of :class:`WeightedGraph`.

The paper assumes every vertex has a distinct weight (Section 2) and works
on simple undirected graphs.  Real inputs rarely satisfy this, so the
builder exposes explicit policies:

* ``ties`` — what to do with equal weights:

  - ``"error"``: raise :class:`~repro.errors.DuplicateWeightError`;
  - ``"rank"`` (default): break ties deterministically by label order; the
    stored weights are untouched but the *rank order* (which is what every
    algorithm consumes) becomes a strict total order.  Lemma 3.9 of the
    paper notes instance-optimality survives a bounded number of
    duplicates;
  - ``"jitter"``: replace weights by their (dense) rank position so all
    stored weights are distinct floats.

* ``drop_self_loops`` — silently drop self-loops instead of raising.
* parallel edges are always merged (the graph is simple).

Example
-------
>>> b = GraphBuilder()
>>> b.add_vertex("a", 3.0)
>>> b.add_vertex("b", 1.0)
>>> b.add_edge("a", "b")
>>> g = b.build()
>>> g.num_edges
1
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import (
    DuplicateWeightError,
    GraphConstructionError,
    SelfLoopError,
)
from .weighted_graph import WeightedGraph

__all__ = ["GraphBuilder", "graph_from_arrays"]


class GraphBuilder:
    """Accumulates vertices and edges, then builds a :class:`WeightedGraph`.

    Vertices mentioned only in edges receive an automatic weight of
    ``None`` and are placed, in insertion order, *below* every vertex with
    an explicit weight (they are the least influential).  This mirrors how
    one would load an edge file without a weight file.
    """

    def __init__(
        self,
        ties: str = "rank",
        drop_self_loops: bool = False,
    ) -> None:
        if ties not in ("error", "rank", "jitter"):
            raise ValueError(f"unknown tie policy {ties!r}")
        self._ties = ties
        self._drop_self_loops = drop_self_loops
        self._weights: Dict[Hashable, Optional[float]] = {}
        self._insertion: Dict[Hashable, int] = {}
        self._edges: Set[Tuple[Hashable, Hashable]] = set()
        self._dropped_loops = 0
        self._merged_parallel = 0

    # ------------------------------------------------------------------
    @property
    def dropped_self_loops(self) -> int:
        """How many self-loops were dropped so far."""
        return self._dropped_loops

    @property
    def merged_parallel_edges(self) -> int:
        """How many duplicate edge insertions were merged so far."""
        return self._merged_parallel

    def add_vertex(
        self, label: Hashable, weight: Optional[float] = None
    ) -> None:
        """Register a vertex, optionally (re-)setting its weight."""
        if label not in self._insertion:
            self._insertion[label] = len(self._insertion)
        if weight is not None or label not in self._weights:
            self._weights[label] = weight

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Register an undirected edge, creating endpoints as needed."""
        if u == v:
            if self._drop_self_loops:
                self._dropped_loops += 1
                return
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        key = self._edge_key(u, v)
        if key in self._edges:
            self._merged_parallel += 1
        else:
            self._edges.add(key)

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Register many edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def set_weights(self, weights: Mapping[Hashable, float]) -> None:
        """Assign weights in bulk (overrides earlier values)."""
        for label, weight in weights.items():
            self.add_vertex(label, weight)

    def _edge_key(
        self, u: Hashable, v: Hashable
    ) -> Tuple[Hashable, Hashable]:
        # A canonical, hash-stable key for an undirected edge between
        # arbitrary hashable labels: order by insertion index.
        return (
            (u, v)
            if self._insertion[u] < self._insertion[v]
            else (v, u)
        )

    # ------------------------------------------------------------------
    def build(self) -> WeightedGraph:
        """Finalise and return the immutable :class:`WeightedGraph`."""
        if not self._insertion:
            raise GraphConstructionError("cannot build an empty graph")
        labels = list(self._insertion)

        explicit = [lab for lab in labels if self._weights.get(lab) is not None]
        implicit = [lab for lab in labels if self._weights.get(lab) is None]

        if self._ties == "error":
            seen: Dict[float, Hashable] = {}
            for lab in explicit:
                w = self._weights[lab]
                if w in seen:
                    raise DuplicateWeightError(w, seen[w], lab)
                seen[w] = lab

        # Sort keys: decreasing weight; ties broken by insertion order
        # (deterministic).  Implicit-weight vertices go last, in insertion
        # order, below every explicit weight.
        explicit.sort(key=lambda lab: (-self._weights[lab], self._insertion[lab]))
        ordered = explicit + implicit

        n = len(ordered)
        if self._ties == "jitter" or implicit:
            # Re-derive strictly-decreasing synthetic weights from ranks.
            # Highest rank gets weight n, lowest gets 1.
            final_weights = [float(n - i) for i in range(n)]
        else:
            final_weights = [float(self._weights[lab]) for lab in ordered]
            # Under the "rank" policy equal weights are allowed in input but
            # the stored sequence must still be strictly decreasing; nudge
            # duplicates down by the smallest representable step.
            for i in range(1, n):
                if final_weights[i] >= final_weights[i - 1]:
                    # Tie (or tiny float collision): replace the entire
                    # weight vector by rank-derived weights to stay exact.
                    final_weights = [float(n - j) for j in range(n)]
                    break

        rank_of = {lab: i for i, lab in enumerate(ordered)}
        adj_up: List[List[int]] = [[] for _ in range(n)]
        adj_down: List[List[int]] = [[] for _ in range(n)]
        for a, b in self._edges:
            ra, rb = rank_of[a], rank_of[b]
            if ra > rb:
                ra, rb = rb, ra
            # rb is the lower-weight endpoint: the edge sits in its up-list.
            adj_up[rb].append(ra)
            adj_down[ra].append(rb)
        for row in adj_up:
            row.sort()
        for row in adj_down:
            row.sort()

        return WeightedGraph(
            final_weights, adj_up, adj_down, labels=ordered, validate=False
        )


def graph_from_arrays(
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    weights: Optional[Iterable[float]] = None,
    ties: str = "rank",
) -> WeightedGraph:
    """Convenience: build from integer vertices ``0..num_vertices-1``.

    ``weights`` defaults to ``num_vertices - i`` for vertex ``i`` (vertex 0
    is the most influential).  Handy for tests and generators.
    """
    builder = GraphBuilder(ties=ties)
    if weights is None:
        weight_list = [float(num_vertices - i) for i in range(num_vertices)]
    else:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != num_vertices:
            raise GraphConstructionError(
                "weights length must equal num_vertices"
            )
    for v in range(num_vertices):
        builder.add_vertex(v, weight_list[v])
    builder.add_edges(edges)
    return builder.build()
