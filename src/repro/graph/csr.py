"""Flat-array CSR mirror of a :class:`WeightedGraph` (the kernel substrate).

:class:`~repro.graph.weighted_graph.WeightedGraph` stores adjacency as a
Python list of lists — ideal for incremental construction and for the
bisect-based prefix queries, but with a pointer-chasing memory layout
that dominates the constant factor of the hot peel
(:mod:`repro.core.fastpeel`).  :class:`CSRAdjacency` is an immutable
**compressed-sparse-row** mirror of the same ``N>=`` / ``N<`` partition:

* ``up_targets`` — every ``adj_up`` row concatenated, each row sorted
  ascending; ``up_offsets[u] : up_offsets[u + 1]`` bounds row ``u``;
* ``down_targets`` / ``down_offsets`` — the same for ``adj_down``.

The canonical buffers are :class:`array.array` (``'i'`` targets, ``'q'``
offsets): contiguous, picklable, and shareable across processes — the
prerequisite for promoting the thread-based
:class:`~repro.server.shards.ShardPool` to a process pool (dict/list
graphs cannot be shared without a serialise-and-copy per worker).  Two
derived views are built lazily and cached:

* :meth:`lists` — plain Python-list mirrors, because CPython iterates a
  list of (cached small) ints faster than it can box values out of an
  ``array``; the pure-stdlib ``array`` kernel's inner loop runs on these;
* :meth:`numpy_views` — **zero-copy** ``numpy.frombuffer`` views over
  the canonical buffers, for the vectorised γ-core reduction of the
  ``numpy`` kernel.

Because every threshold subgraph ``G>=tau`` is a rank prefix, the CSR
needs no per-view rebuild: a prefix is fully described by the shared
buffers plus one *down-cut* per vertex (the end of the row's in-prefix
part — rows are sorted, so it is a single bound).  :class:`PrefixAdjacency`
packages exactly that as a read-only sequence of neighbour rows, which
is what the fast peel records as :attr:`CVSRecord.nbrs` in place of the
materialised list-of-lists.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .weighted_graph import WeightedGraph

__all__ = ["CSRAdjacency", "DeltaCSR", "PrefixAdjacency"]


class CSRAdjacency:
    """Immutable flat-array (CSR) form of a graph's up/down adjacency."""

    __slots__ = (
        "num_vertices",
        "num_edges",
        "up_offsets",
        "up_targets",
        "down_offsets",
        "down_targets",
        "_lists",
        "_numpy",
    )

    def __init__(
        self,
        num_vertices: int,
        up_offsets: array,
        up_targets: array,
        down_offsets: array,
        down_targets: array,
    ) -> None:
        self.num_vertices = num_vertices
        self.num_edges = len(up_targets)
        self.up_offsets = up_offsets
        self.up_targets = up_targets
        self.down_offsets = down_offsets
        self.down_targets = down_targets
        self._lists: Optional[
            Tuple[List[int], List[int], List[int], List[int]]
        ] = None
        self._numpy = None

    # ------------------------------------------------------------------
    @classmethod
    def from_buffers(
        cls,
        num_vertices: int,
        up_offsets,
        up_targets,
        down_offsets,
        down_targets,
    ) -> "CSRAdjacency":
        """Wrap pre-existing canonical buffers **without copying**.

        The buffers may be :class:`array.array` objects or typed
        ``memoryview`` casts over foreign memory — in particular over a
        ``multiprocessing.shared_memory`` segment, which is how
        :mod:`repro.cluster` rebuilds a graph's CSR inside a worker
        process with zero per-worker copies of the canonical buffers.
        Every consumer only needs ``len()``, ``.itemsize``, iteration
        (:meth:`lists`) and the buffer protocol (:meth:`numpy_views`),
        all of which both types provide.
        """
        return cls(
            num_vertices, up_offsets, up_targets, down_offsets, down_targets
        )

    @classmethod
    def from_graph(cls, graph: "WeightedGraph") -> "CSRAdjacency":
        """Flatten ``graph``'s adjacency into contiguous buffers (O(n + m))."""
        n = graph.num_vertices
        up_offsets = array("q", [0])
        down_offsets = array("q", [0])
        up_targets = array("i")
        down_targets = array("i")
        up_total = down_total = 0
        for u in range(n):
            row = graph.neighbors_up(u)
            up_targets.extend(row)
            up_total += len(row)
            up_offsets.append(up_total)
            row = graph.neighbors_down(u)
            down_targets.extend(row)
            down_total += len(row)
            down_offsets.append(down_total)
        return cls(n, up_offsets, up_targets, down_offsets, down_targets)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the canonical buffers in bytes (derived views excluded)."""
        return (
            self.up_offsets.itemsize * len(self.up_offsets)
            + self.up_targets.itemsize * len(self.up_targets)
            + self.down_offsets.itemsize * len(self.down_offsets)
            + self.down_targets.itemsize * len(self.down_targets)
        )

    def lists(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Python-list mirrors ``(up_off, up_tgt, down_off, down_tgt)``.

        Built once (C-level ``list(array)``) and cached: CPython's inner
        loops iterate and subscript lists measurably faster than
        ``array`` objects, which must box every element on access.
        """
        mirrors = self._lists
        if mirrors is None:
            mirrors = (
                list(self.up_offsets),
                list(self.up_targets),
                list(self.down_offsets),
                list(self.down_targets),
            )
            self._lists = mirrors
        return mirrors

    def numpy_views(self):
        """Zero-copy numpy views ``(up_off, up_tgt, down_off, down_tgt)``.

        Raises ``ImportError`` when numpy is unavailable; callers gate on
        :func:`repro.core.fastpeel.numpy_available`.
        """
        views = self._numpy
        if views is None:
            import numpy as np

            views = (
                np.frombuffer(self.up_offsets, dtype=np.int64),
                np.frombuffer(self.up_targets, dtype=np.int32),
                np.frombuffer(self.down_offsets, dtype=np.int64),
                np.frombuffer(self.down_targets, dtype=np.int32),
            )
            self._numpy = views
        return views

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRAdjacency(n={self.num_vertices}, m={self.num_edges}, "
            f"{self.nbytes / 1e6:.2f} MB)"
        )

    # ------------------------------------------------------------------
    # pickling: drop the derived caches (cheap to rebuild, numpy views
    # are process-local buffer aliases anyway).  Memoryview-backed
    # instances (shared-memory attach, from_buffers) materialise real
    # arrays first: a memoryview cannot be pickled, and the receiving
    # process has no claim on our segment lifetime anyway.
    def __reduce__(self):
        def _own(buffer, typecode):
            return buffer if isinstance(buffer, array) else array(typecode, buffer)

        return (
            self.__class__,
            (
                self.num_vertices,
                _own(self.up_offsets, "q"),
                _own(self.up_targets, "i"),
                _own(self.down_offsets, "q"),
                _own(self.down_targets, "i"),
            ),
        )


class DeltaCSR:
    """A CSR with a small set of replaced adjacency rows (``repro.live``).

    Mutated generations produced by :func:`repro.graph.delta.apply_batch`
    install one of these instead of re-flattening the whole graph: the
    overlay holds only the **touched rows** (already sorted, rank space
    unchanged) and answers the full :class:`CSRAdjacency` interface by
    merging base and overlay **at the adjacency-row boundary** — row
    ``v`` comes from the overlay when touched, from the base otherwise.
    Kernels consume :meth:`lists` / :meth:`numpy_views` exactly as they
    do on a flat CSR, so peel/enumerate results are byte-identical to a
    full rebuild.

    The merge is lazy and cached: constructing the overlay is O(touched
    rows); the first kernel access folds the row mirrors by splicing
    whole untouched *runs* of the base mirrors (C-level list slices)
    around the overlay rows.  The canonical ``array`` buffers (needed
    for shared-memory publication and pickling) materialise from the
    folded mirrors on first request — that is what the background
    compactor calls :meth:`materialize` for, after which the generation
    is an ordinary flat :class:`CSRAdjacency` again.

    Overlays chain (a ``DeltaCSR`` over a ``DeltaCSR``): only the
    base's :meth:`lists` is consulted, which any generation provides.
    The compactor bounds chain depth.
    """

    __slots__ = (
        "base",
        "num_vertices",
        "num_edges",
        "_up_rows",
        "_down_rows",
        "_lists",
        "_arrays",
        "_numpy",
    )

    def __init__(
        self,
        base,
        up_rows,
        down_rows,
        num_edges: int,
    ) -> None:
        self.base = base
        self.num_vertices = base.num_vertices
        #: Edge count of the *merged* adjacency — passed in by the
        #: overlay constructor (which knows the insert/delete balance)
        #: so creating the overlay never touches the base buffers.
        self.num_edges = num_edges
        self._up_rows = dict(up_rows)
        self._down_rows = dict(down_rows)
        self._lists = None
        self._arrays = None
        self._numpy = None

    # ------------------------------------------------------------------
    @staticmethod
    def _fold(base_off, base_tgt, rows, n):
        """Splice overlay rows into the base mirrors (row-boundary merge)."""
        if not rows:
            return base_off, base_tgt  # untouched side: share the base
        off: List[int] = []
        tgt: List[int] = []
        shift = 0
        prev = 0
        for v in sorted(rows):
            if v > prev:
                if shift:
                    off.extend(o + shift for o in base_off[prev:v])
                else:
                    off.extend(base_off[prev:v])
                tgt.extend(base_tgt[base_off[prev]:base_off[v]])
            row = rows[v]
            off.append(base_off[v] + shift)
            tgt.extend(row)
            shift += len(row) - (base_off[v + 1] - base_off[v])
            prev = v + 1
        if shift:
            off.extend(o + shift for o in base_off[prev:])
        else:
            off.extend(base_off[prev:])
        tgt.extend(base_tgt[base_off[prev]:])
        return off, tgt

    def lists(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Merged Python-list mirrors (same contract as the flat CSR)."""
        mirrors = self._lists
        if mirrors is None:
            b_up_off, b_up_tgt, b_down_off, b_down_tgt = self.base.lists()
            n = self.num_vertices
            up_off, up_tgt = self._fold(b_up_off, b_up_tgt, self._up_rows, n)
            down_off, down_tgt = self._fold(
                b_down_off, b_down_tgt, self._down_rows, n
            )
            mirrors = (up_off, up_tgt, down_off, down_tgt)
            self._lists = mirrors
        return mirrors

    def _canonical(self) -> Tuple[array, array, array, array]:
        buffers = self._arrays
        if buffers is None:
            up_off, up_tgt, down_off, down_tgt = self.lists()
            buffers = (
                array("q", up_off),
                array("i", up_tgt),
                array("q", down_off),
                array("i", down_tgt),
            )
            self._arrays = buffers
        return buffers

    @property
    def up_offsets(self) -> array:
        return self._canonical()[0]

    @property
    def up_targets(self) -> array:
        return self._canonical()[1]

    @property
    def down_offsets(self) -> array:
        return self._canonical()[2]

    @property
    def down_targets(self) -> array:
        return self._canonical()[3]

    def numpy_views(self):
        """Zero-copy numpy views over the materialised merged buffers."""
        views = self._numpy
        if views is None:
            import numpy as np

            up_off, up_tgt, down_off, down_tgt = self._canonical()
            views = (
                np.frombuffer(up_off, dtype=np.int64),
                np.frombuffer(up_tgt, dtype=np.int32),
                np.frombuffer(down_off, dtype=np.int64),
                np.frombuffer(down_tgt, dtype=np.int32),
            )
            self._numpy = views
        return views

    @property
    def overlay_rows(self) -> int:
        """How many adjacency rows the overlay replaces (both sides)."""
        return len(self._up_rows) + len(self._down_rows)

    @property
    def depth(self) -> int:
        """Overlay chain depth above the nearest flat generation."""
        return 1 + getattr(self.base, "depth", 0)

    @property
    def nbytes(self) -> int:
        """Approximate footprint: base plus the overlay rows."""
        overlay = sum(
            4 * len(r)
            for rows in (self._up_rows, self._down_rows)
            for r in rows.values()
        )
        return self.base.nbytes + overlay

    def materialize(self) -> CSRAdjacency:
        """Fold into a flat :class:`CSRAdjacency` (the compaction step)."""
        up_off, up_tgt, down_off, down_tgt = self._canonical()
        flat = CSRAdjacency(
            self.num_vertices, up_off, up_tgt, down_off, down_tgt
        )
        # The folded mirrors ARE the flat CSR's list mirrors — seed the
        # cache so compaction does not rebuild them from the arrays.
        flat._lists = self.lists()
        return flat

    # Pickling ships the merged flat form: the receiving process has no
    # use for our base/overlay split (and the base may alias a
    # shared-memory segment it cannot reach).
    def __reduce__(self):
        csr = self.materialize()
        return (
            CSRAdjacency,
            (
                csr.num_vertices,
                csr.up_offsets,
                csr.up_targets,
                csr.down_offsets,
                csr.down_targets,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeltaCSR(n={self.num_vertices}, m={self.num_edges}, "
            f"overlay_rows={self.overlay_rows}, depth={self.depth})"
        )


class PrefixAdjacency(Sequence):
    """Read-only neighbour rows of a rank prefix, backed by shared CSR.

    ``rows[v]`` is the list of ``v``'s neighbours inside the prefix, in
    the same order the materialised
    :meth:`~repro.graph.subgraph.PrefixView.neighbor_lists` produces
    (up-neighbours ascending, then in-prefix down-neighbours ascending),
    so :mod:`repro.core.enumerate` consumes either representation
    interchangeably.  Rows are assembled on access from two C-level list
    slices — no O(size) materialisation ever happens.
    """

    __slots__ = (
        "p",
        "csr",
        "_up_off",
        "_up_tgt",
        "_down_off",
        "_down_tgt",
        "_cuts",
        "_numpy",
    )

    def __init__(
        self,
        csr: CSRAdjacency,
        p: int,
        cuts: List[int],
    ) -> None:
        up_off, up_tgt, down_off, down_tgt = csr.lists()
        self.p = p
        #: The shared CSR these rows are views over — kept so kernel code
        #: (:mod:`repro.core.fastenum`) can reach the canonical buffers
        #: and their zero-copy numpy views without re-deriving them.
        self.csr = csr
        self._up_off = up_off
        self._up_tgt = up_tgt
        self._down_off = down_off
        self._down_tgt = down_tgt
        #: Absolute end index of each vertex's in-prefix down-row part.
        self._cuts = cuts
        self._numpy = None

    def __len__(self) -> int:
        return self.p

    def __getitem__(self, v: int) -> List[int]:
        if isinstance(v, slice):  # pragma: no cover - sequence protocol
            return [self[i] for i in range(*v.indices(self.p))]
        if v < 0:
            v += self.p
        if not 0 <= v < self.p:
            raise IndexError(f"vertex {v} outside prefix [0, {self.p})")
        up_off = self._up_off
        return (
            self._up_tgt[up_off[v]:up_off[v + 1]]
            + self._down_tgt[self._down_off[v]:self._cuts[v]]
        )

    def flat(
        self,
    ) -> Tuple[List[int], List[int], List[int], List[int], List[int]]:
        """The raw row machinery ``(up_off, up_tgt, down_off, down_tgt, cuts)``.

        Kernel loops (:mod:`repro.core.fastenum`) iterate the two row
        parts directly off these shared lists, skipping the per-row
        concatenation :meth:`__getitem__` performs.
        """
        return (
            self._up_off,
            self._up_tgt,
            self._down_off,
            self._down_tgt,
            self._cuts,
        )

    def numpy_state(self):
        """Numpy form ``(up_off, up_tgt, down_off, down_tgt, cuts)``.

        The four CSR views are the graph's cached zero-copy buffers; the
        cuts (per-prefix, so per-instance) are converted once and cached
        here.  Raises ``ImportError`` when numpy is unavailable; callers
        gate on :func:`repro.core.fastpeel.numpy_available`.
        """
        state = self._numpy
        if state is None:
            import numpy as np

            up_off, up_tgt, down_off, down_tgt = self.csr.numpy_views()
            state = (
                up_off,
                up_tgt,
                down_off,
                down_tgt,
                np.array(self._cuts, dtype=np.int64),
            )
            self._numpy = state
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PrefixAdjacency(p={self.p})"
