"""Flat-array CSR mirror of a :class:`WeightedGraph` (the kernel substrate).

:class:`~repro.graph.weighted_graph.WeightedGraph` stores adjacency as a
Python list of lists — ideal for incremental construction and for the
bisect-based prefix queries, but with a pointer-chasing memory layout
that dominates the constant factor of the hot peel
(:mod:`repro.core.fastpeel`).  :class:`CSRAdjacency` is an immutable
**compressed-sparse-row** mirror of the same ``N>=`` / ``N<`` partition:

* ``up_targets`` — every ``adj_up`` row concatenated, each row sorted
  ascending; ``up_offsets[u] : up_offsets[u + 1]`` bounds row ``u``;
* ``down_targets`` / ``down_offsets`` — the same for ``adj_down``.

The canonical buffers are :class:`array.array` (``'i'`` targets, ``'q'``
offsets): contiguous, picklable, and shareable across processes — the
prerequisite for promoting the thread-based
:class:`~repro.server.shards.ShardPool` to a process pool (dict/list
graphs cannot be shared without a serialise-and-copy per worker).  Two
derived views are built lazily and cached:

* :meth:`lists` — plain Python-list mirrors, because CPython iterates a
  list of (cached small) ints faster than it can box values out of an
  ``array``; the pure-stdlib ``array`` kernel's inner loop runs on these;
* :meth:`numpy_views` — **zero-copy** ``numpy.frombuffer`` views over
  the canonical buffers, for the vectorised γ-core reduction of the
  ``numpy`` kernel.

Because every threshold subgraph ``G>=tau`` is a rank prefix, the CSR
needs no per-view rebuild: a prefix is fully described by the shared
buffers plus one *down-cut* per vertex (the end of the row's in-prefix
part — rows are sorted, so it is a single bound).  :class:`PrefixAdjacency`
packages exactly that as a read-only sequence of neighbour rows, which
is what the fast peel records as :attr:`CVSRecord.nbrs` in place of the
materialised list-of-lists.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .weighted_graph import WeightedGraph

__all__ = ["CSRAdjacency", "PrefixAdjacency"]


class CSRAdjacency:
    """Immutable flat-array (CSR) form of a graph's up/down adjacency."""

    __slots__ = (
        "num_vertices",
        "num_edges",
        "up_offsets",
        "up_targets",
        "down_offsets",
        "down_targets",
        "_lists",
        "_numpy",
    )

    def __init__(
        self,
        num_vertices: int,
        up_offsets: array,
        up_targets: array,
        down_offsets: array,
        down_targets: array,
    ) -> None:
        self.num_vertices = num_vertices
        self.num_edges = len(up_targets)
        self.up_offsets = up_offsets
        self.up_targets = up_targets
        self.down_offsets = down_offsets
        self.down_targets = down_targets
        self._lists: Optional[
            Tuple[List[int], List[int], List[int], List[int]]
        ] = None
        self._numpy = None

    # ------------------------------------------------------------------
    @classmethod
    def from_buffers(
        cls,
        num_vertices: int,
        up_offsets,
        up_targets,
        down_offsets,
        down_targets,
    ) -> "CSRAdjacency":
        """Wrap pre-existing canonical buffers **without copying**.

        The buffers may be :class:`array.array` objects or typed
        ``memoryview`` casts over foreign memory — in particular over a
        ``multiprocessing.shared_memory`` segment, which is how
        :mod:`repro.cluster` rebuilds a graph's CSR inside a worker
        process with zero per-worker copies of the canonical buffers.
        Every consumer only needs ``len()``, ``.itemsize``, iteration
        (:meth:`lists`) and the buffer protocol (:meth:`numpy_views`),
        all of which both types provide.
        """
        return cls(
            num_vertices, up_offsets, up_targets, down_offsets, down_targets
        )

    @classmethod
    def from_graph(cls, graph: "WeightedGraph") -> "CSRAdjacency":
        """Flatten ``graph``'s adjacency into contiguous buffers (O(n + m))."""
        n = graph.num_vertices
        up_offsets = array("q", [0])
        down_offsets = array("q", [0])
        up_targets = array("i")
        down_targets = array("i")
        up_total = down_total = 0
        for u in range(n):
            row = graph.neighbors_up(u)
            up_targets.extend(row)
            up_total += len(row)
            up_offsets.append(up_total)
            row = graph.neighbors_down(u)
            down_targets.extend(row)
            down_total += len(row)
            down_offsets.append(down_total)
        return cls(n, up_offsets, up_targets, down_offsets, down_targets)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the canonical buffers in bytes (derived views excluded)."""
        return (
            self.up_offsets.itemsize * len(self.up_offsets)
            + self.up_targets.itemsize * len(self.up_targets)
            + self.down_offsets.itemsize * len(self.down_offsets)
            + self.down_targets.itemsize * len(self.down_targets)
        )

    def lists(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Python-list mirrors ``(up_off, up_tgt, down_off, down_tgt)``.

        Built once (C-level ``list(array)``) and cached: CPython's inner
        loops iterate and subscript lists measurably faster than
        ``array`` objects, which must box every element on access.
        """
        mirrors = self._lists
        if mirrors is None:
            mirrors = (
                list(self.up_offsets),
                list(self.up_targets),
                list(self.down_offsets),
                list(self.down_targets),
            )
            self._lists = mirrors
        return mirrors

    def numpy_views(self):
        """Zero-copy numpy views ``(up_off, up_tgt, down_off, down_tgt)``.

        Raises ``ImportError`` when numpy is unavailable; callers gate on
        :func:`repro.core.fastpeel.numpy_available`.
        """
        views = self._numpy
        if views is None:
            import numpy as np

            views = (
                np.frombuffer(self.up_offsets, dtype=np.int64),
                np.frombuffer(self.up_targets, dtype=np.int32),
                np.frombuffer(self.down_offsets, dtype=np.int64),
                np.frombuffer(self.down_targets, dtype=np.int32),
            )
            self._numpy = views
        return views

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRAdjacency(n={self.num_vertices}, m={self.num_edges}, "
            f"{self.nbytes / 1e6:.2f} MB)"
        )

    # ------------------------------------------------------------------
    # pickling: drop the derived caches (cheap to rebuild, numpy views
    # are process-local buffer aliases anyway).  Memoryview-backed
    # instances (shared-memory attach, from_buffers) materialise real
    # arrays first: a memoryview cannot be pickled, and the receiving
    # process has no claim on our segment lifetime anyway.
    def __reduce__(self):
        def _own(buffer, typecode):
            return buffer if isinstance(buffer, array) else array(typecode, buffer)

        return (
            self.__class__,
            (
                self.num_vertices,
                _own(self.up_offsets, "q"),
                _own(self.up_targets, "i"),
                _own(self.down_offsets, "q"),
                _own(self.down_targets, "i"),
            ),
        )


class PrefixAdjacency(Sequence):
    """Read-only neighbour rows of a rank prefix, backed by shared CSR.

    ``rows[v]`` is the list of ``v``'s neighbours inside the prefix, in
    the same order the materialised
    :meth:`~repro.graph.subgraph.PrefixView.neighbor_lists` produces
    (up-neighbours ascending, then in-prefix down-neighbours ascending),
    so :mod:`repro.core.enumerate` consumes either representation
    interchangeably.  Rows are assembled on access from two C-level list
    slices — no O(size) materialisation ever happens.
    """

    __slots__ = (
        "p",
        "csr",
        "_up_off",
        "_up_tgt",
        "_down_off",
        "_down_tgt",
        "_cuts",
        "_numpy",
    )

    def __init__(
        self,
        csr: CSRAdjacency,
        p: int,
        cuts: List[int],
    ) -> None:
        up_off, up_tgt, down_off, down_tgt = csr.lists()
        self.p = p
        #: The shared CSR these rows are views over — kept so kernel code
        #: (:mod:`repro.core.fastenum`) can reach the canonical buffers
        #: and their zero-copy numpy views without re-deriving them.
        self.csr = csr
        self._up_off = up_off
        self._up_tgt = up_tgt
        self._down_off = down_off
        self._down_tgt = down_tgt
        #: Absolute end index of each vertex's in-prefix down-row part.
        self._cuts = cuts
        self._numpy = None

    def __len__(self) -> int:
        return self.p

    def __getitem__(self, v: int) -> List[int]:
        if isinstance(v, slice):  # pragma: no cover - sequence protocol
            return [self[i] for i in range(*v.indices(self.p))]
        if v < 0:
            v += self.p
        if not 0 <= v < self.p:
            raise IndexError(f"vertex {v} outside prefix [0, {self.p})")
        up_off = self._up_off
        return (
            self._up_tgt[up_off[v]:up_off[v + 1]]
            + self._down_tgt[self._down_off[v]:self._cuts[v]]
        )

    def flat(
        self,
    ) -> Tuple[List[int], List[int], List[int], List[int], List[int]]:
        """The raw row machinery ``(up_off, up_tgt, down_off, down_tgt, cuts)``.

        Kernel loops (:mod:`repro.core.fastenum`) iterate the two row
        parts directly off these shared lists, skipping the per-row
        concatenation :meth:`__getitem__` performs.
        """
        return (
            self._up_off,
            self._up_tgt,
            self._down_off,
            self._down_tgt,
            self._cuts,
        )

    def numpy_state(self):
        """Numpy form ``(up_off, up_tgt, down_off, down_tgt, cuts)``.

        The four CSR views are the graph's cached zero-copy buffers; the
        cuts (per-prefix, so per-instance) are converted once and cached
        here.  Raises ``ImportError`` when numpy is unavailable; callers
        gate on :func:`repro.core.fastpeel.numpy_available`.
        """
        state = self._numpy
        if state is None:
            import numpy as np

            up_off, up_tgt, down_off, down_tgt = self.csr.numpy_views()
            state = (
                up_off,
                up_tgt,
                down_off,
                down_tgt,
                np.array(self._cuts, dtype=np.int64),
            )
            self._numpy = state
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PrefixAdjacency(p={self.p})"
