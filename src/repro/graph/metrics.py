"""Graph statistics — the columns of Table 1 and assorted diagnostics.

Table 1 of the paper reports, per dataset: ``#vertices``, ``#edges``,
``dmax`` (maximum degree), ``davg`` (average degree) and ``γmax`` (the
largest γ with a non-empty γ-core, i.e. the degeneracy).
:func:`graph_statistics` computes exactly those, plus a few extras used by
tests and the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .core_decomposition import core_decomposition
from .weighted_graph import WeightedGraph

__all__ = ["GraphStatistics", "graph_statistics", "degree_histogram"]


@dataclass(frozen=True)
class GraphStatistics:
    """The Table-1 statistics row for one graph."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    avg_degree: float
    gamma_max: int

    def as_row(self) -> List[str]:
        """Formatted cells in Table-1 column order."""
        return [
            self.name,
            f"{self.num_vertices:,}",
            f"{self.num_edges:,}",
            f"{self.max_degree:,}",
            f"{self.avg_degree:.2f}",
            f"{self.gamma_max:,}",
        ]

    @staticmethod
    def header() -> List[str]:
        """Table-1 column headers."""
        return ["Graph", "#vertices", "#edges", "dmax", "davg", "gammamax"]


def graph_statistics(graph: WeightedGraph, name: str = "") -> GraphStatistics:
    """Compute the Table-1 statistics of ``graph``."""
    n = graph.num_vertices
    m = graph.num_edges
    degrees = [graph.degree(u) for u in range(n)]
    dmax = max(degrees) if degrees else 0
    davg = (2.0 * m / n) if n else 0.0
    cores = core_decomposition(graph)
    gamma_max = max(cores) if cores else 0
    return GraphStatistics(
        name=name,
        num_vertices=n,
        num_edges=m,
        max_degree=dmax,
        avg_degree=davg,
        gamma_max=gamma_max,
    )


def degree_histogram(graph: WeightedGraph) -> Dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for u in range(graph.num_vertices):
        d = graph.degree(u)
        hist[d] = hist.get(d, 0) + 1
    return hist
