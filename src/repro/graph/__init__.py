"""Graph substrate: weighted graphs, prefix views, cores, trusses, storage.

This subpackage implements every structural dependency of the paper's
algorithms (DESIGN.md systems S1–S5 and S15-storage):

* :class:`~repro.graph.weighted_graph.WeightedGraph` — the rank-ordered,
  ``N>=``/``N<``-partitioned graph of Section 3.1;
* :class:`~repro.graph.subgraph.PrefixView` — O(1) windows onto ``G>=tau``;
* :mod:`~repro.graph.core_decomposition` / :mod:`~repro.graph.truss_decomposition`
  — cohesiveness machinery;
* :mod:`~repro.graph.connectivity` and
  :mod:`~repro.graph.disjoint_set` — traversal and union-find;
* :mod:`~repro.graph.pagerank` — influence weights;
* :mod:`~repro.graph.storage` — the disk-resident edge store for the
  semi-external algorithms;
* :mod:`~repro.graph.io` / :mod:`~repro.graph.metrics` — interchange and
  statistics.
"""

from .builder import GraphBuilder, graph_from_arrays
from .connectivity import component_of, connected_components, is_connected_subset
from .csr import CSRAdjacency, PrefixAdjacency
from .core_decomposition import (
    core_decomposition,
    degeneracy,
    gamma_core,
    gamma_core_members,
)
from .disjoint_set import DisjointSet, KeyedDisjointSet
from .metrics import GraphStatistics, degree_histogram, graph_statistics
from .pagerank import pagerank_from_edges, pagerank_weights
from .storage import FileEdgeStore, IOCounter, InMemoryEdgeStore
from .subgraph import PrefixView
from .truss_decomposition import (
    edge_supports,
    gamma_truss,
    max_truss,
    truss_decomposition,
)
from .weighted_graph import WeightedGraph

__all__ = [
    "WeightedGraph",
    "GraphBuilder",
    "graph_from_arrays",
    "PrefixView",
    "CSRAdjacency",
    "PrefixAdjacency",
    "DisjointSet",
    "KeyedDisjointSet",
    "gamma_core",
    "gamma_core_members",
    "core_decomposition",
    "degeneracy",
    "gamma_truss",
    "edge_supports",
    "truss_decomposition",
    "max_truss",
    "component_of",
    "connected_components",
    "is_connected_subset",
    "pagerank_from_edges",
    "pagerank_weights",
    "GraphStatistics",
    "graph_statistics",
    "degree_histogram",
    "IOCounter",
    "InMemoryEdgeStore",
    "FileEdgeStore",
]
