"""Disk-resident, weight-ordered edge storage for semi-external algorithms.

Section 3.1 (Remark) and Eval-VI of the paper describe the semi-external
setting of [27]: main memory holds per-vertex constants plus a *subset* of
the edges; edges are pre-sorted on disk in decreasing **edge weight** order,
where the weight of an edge is the minimum weight of its two endpoints.
With our rank encoding this is simply ascending order of the edge's maximum
rank — so the edges of ``G>=tau`` are always a *prefix of the edge file*,
and LocalSearch-SE can grow its working subgraph with purely sequential
reads.

This module provides:

* :class:`IOCounter` — explicit accounting of block reads and bytes;
* :class:`EdgeStore` — the abstract weight-ordered edge source protocol;
* :class:`FileEdgeStore` — a real binary file on disk (two int32 per edge),
  read in block-granular sequential chunks;
* :class:`InMemoryEdgeStore` — same protocol without the filesystem, for
  tests.

The stores model the paper's testbed honestly at reproduction scale: the
I/O *counts* and resident-set sizes are exact, while wall-clock I/O cost is
whatever the host filesystem provides (which is enough, since Eval-VI
compares two algorithms against the same store).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import StorageError
from .weighted_graph import WeightedGraph

__all__ = [
    "IOCounter",
    "EdgeStore",
    "FileEdgeStore",
    "InMemoryEdgeStore",
    "edges_in_weight_order",
]

Edge = Tuple[int, int]

_EDGE_STRUCT = struct.Struct("<ii")  # two little-endian int32 per edge


@dataclass
class IOCounter:
    """Accumulates simulated-disk accounting.

    ``block_edges`` is the number of edges per I/O block (the unit the
    paper's I/O-efficient algorithms think in).
    """

    block_edges: int = 4096
    blocks_read: int = 0
    edges_read: int = 0
    sequential_reads: int = 0
    resets: int = 0
    peak_resident_edges: int = 0
    _resident_edges: int = field(default=0, repr=False)

    def record_read(self, num_edges: int) -> None:
        """Account for reading ``num_edges`` sequentially."""
        if num_edges <= 0:
            return
        self.edges_read += num_edges
        self.blocks_read += -(-num_edges // self.block_edges)  # ceil div
        self.sequential_reads += 1

    def record_resident(self, num_edges: int) -> None:
        """Update the resident-set gauge to ``num_edges`` edges."""
        self._resident_edges = num_edges
        if num_edges > self.peak_resident_edges:
            self.peak_resident_edges = num_edges

    def record_reset(self) -> None:
        """Account for a rewind (a new scan pass over the file)."""
        self.resets += 1

    @property
    def resident_edges(self) -> int:
        """Current resident-set gauge in edges."""
        return self._resident_edges


def edges_in_weight_order(graph: WeightedGraph) -> Iterator[Edge]:
    """Edges of ``graph`` in decreasing edge-weight order.

    Edge weight = weight of the minimum-weight endpoint [27], so the order
    is ascending by the edge's maximum rank: exactly
    :meth:`WeightedGraph.iter_edges` (pairs ``(u, v)``, ``u > v``, ``u``
    ascending).
    """
    return graph.iter_edges()


class EdgeStore:
    """Protocol for a weight-ordered, sequentially-readable edge source.

    Subclasses implement :meth:`read_range`; everything else is shared.
    """

    def __init__(self, num_edges: int, counter: Optional[IOCounter] = None):
        self._num_edges = num_edges
        self.counter = counter if counter is not None else IOCounter()

    def __len__(self) -> int:
        return self._num_edges

    @property
    def num_edges(self) -> int:
        """Total number of edges in the store."""
        return self._num_edges

    def read_range(self, start: int, stop: int) -> List[Edge]:
        """Edges ``start..stop-1`` in weight order (accounted as one read)."""
        raise NotImplementedError

    def read_prefix(self, stop: int) -> List[Edge]:
        """The first ``stop`` edges (the edges of some ``G>=tau``)."""
        return self.read_range(0, stop)

    def scan(self, chunk_edges: int = 65536) -> Iterator[List[Edge]]:
        """Full sequential scan in chunks (a global algorithm's pattern)."""
        pos = 0
        while pos < self._num_edges:
            stop = min(pos + chunk_edges, self._num_edges)
            yield self.read_range(pos, stop)
            pos = stop

    def prefix_stop_for_rank(self, p: int, ranks_of_max: Sequence[int]) -> int:
        """Index of the first stored edge whose max rank is >= ``p``.

        ``ranks_of_max`` must be the (ascending) max-rank column of the
        store; callers that keep it in memory (vertex-level metadata is
        memory-resident in the semi-external model) can locate the prefix
        of ``G_p`` in O(log m).
        """
        from bisect import bisect_left

        return bisect_left(ranks_of_max, p)


class InMemoryEdgeStore(EdgeStore):
    """An :class:`EdgeStore` over a Python list (testing / small runs)."""

    def __init__(
        self,
        edges: Sequence[Edge],
        counter: Optional[IOCounter] = None,
        validate: bool = True,
    ) -> None:
        self._edges = [(int(u), int(v)) for u, v in edges]
        if validate:
            _check_weight_order(self._edges)
        super().__init__(len(self._edges), counter)

    @classmethod
    def from_graph(
        cls, graph: WeightedGraph, counter: Optional[IOCounter] = None
    ) -> "InMemoryEdgeStore":
        """Build the store from a graph, in weight order."""
        return cls(list(edges_in_weight_order(graph)), counter, validate=False)

    def read_range(self, start: int, stop: int) -> List[Edge]:
        if start < 0 or stop > self._num_edges or start > stop:
            raise StorageError(
                f"read_range({start}, {stop}) out of bounds "
                f"for {self._num_edges} edges"
            )
        out = self._edges[start:stop]
        self.counter.record_read(len(out))
        return out


class FileEdgeStore(EdgeStore):
    """A binary edge file on disk: ``(max_rank int32, min_rank int32)*``.

    Edges are stored in decreasing edge-weight order (ascending max rank).
    Reads are real ``seek`` + ``read`` calls in block multiples, so the
    sequential-access claim of the semi-external algorithms is exercised
    for real, not merely simulated.
    """

    MAGIC = b"RPRES01\n"

    def __init__(
        self, path: Union[str, os.PathLike], counter: Optional[IOCounter] = None
    ) -> None:
        self.path = os.fspath(path)
        try:
            file_size = os.path.getsize(self.path)
        except OSError as exc:
            raise StorageError(f"cannot stat edge store {self.path!r}") from exc
        header = len(self.MAGIC)
        body = file_size - header
        if body < 0 or body % _EDGE_STRUCT.size != 0:
            raise StorageError(
                f"{self.path!r} is not a valid edge store (size {file_size})"
            )
        with open(self.path, "rb") as fh:
            if fh.read(header) != self.MAGIC:
                raise StorageError(f"{self.path!r}: bad magic header")
        super().__init__(body // _EDGE_STRUCT.size, counter)

    @classmethod
    def create(
        cls,
        path: Union[str, os.PathLike],
        graph: WeightedGraph,
        counter: Optional[IOCounter] = None,
    ) -> "FileEdgeStore":
        """Write ``graph``'s edges (weight-ordered) to ``path`` and open it."""
        with open(path, "wb") as fh:
            fh.write(cls.MAGIC)
            for u, v in edges_in_weight_order(graph):
                # u > v always holds: u is the max rank (min weight) endpoint.
                fh.write(_EDGE_STRUCT.pack(u, v))
        return cls(path, counter)

    def read_range(self, start: int, stop: int) -> List[Edge]:
        if start < 0 or stop > self._num_edges or start > stop:
            raise StorageError(
                f"read_range({start}, {stop}) out of bounds "
                f"for {self._num_edges} edges"
            )
        count = stop - start
        if count == 0:
            return []
        offset = len(self.MAGIC) + start * _EDGE_STRUCT.size
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            blob = fh.read(count * _EDGE_STRUCT.size)
        if len(blob) != count * _EDGE_STRUCT.size:
            raise StorageError(f"short read from {self.path!r}")
        self.counter.record_read(count)
        out: List[Edge] = []
        unpack = _EDGE_STRUCT.unpack_from
        for i in range(count):
            u, v = unpack(blob, i * _EDGE_STRUCT.size)
            out.append((u, v))
        return out

    def max_rank_column(self) -> List[int]:
        """The ascending max-rank column (vertex-level metadata, in memory).

        Does not count against the I/O budget: the semi-external model of
        [27] assumes per-vertex information fits in memory, and this column
        is derivable from vertex degrees.
        """
        out: List[int] = []
        with open(self.path, "rb") as fh:
            fh.seek(len(self.MAGIC))
            while True:
                blob = fh.read(65536 * _EDGE_STRUCT.size)
                if not blob:
                    break
                for i in range(len(blob) // _EDGE_STRUCT.size):
                    u, _ = _EDGE_STRUCT.unpack_from(blob, i * _EDGE_STRUCT.size)
                    out.append(u)
        return out


def _check_weight_order(edges: Sequence[Edge]) -> None:
    """Validate the decreasing-edge-weight (ascending max rank) invariant."""
    prev = -1
    for u, v in edges:
        if v >= u:
            raise StorageError(
                f"edge ({u}, {v}) must be stored as (max_rank, min_rank)"
            )
        if u < prev:
            raise StorageError(
                "edges must be sorted by ascending max rank "
                "(decreasing edge weight)"
            )
        prev = u
