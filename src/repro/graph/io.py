"""Graph readers and writers.

Two interchange formats are supported:

* **SNAP-style edge list** (the format of the paper's real datasets):
  one ``u v`` pair per line, ``#`` comments ignored.  Weights live in a
  companion file of ``label weight`` lines, or are assigned by the caller
  (the paper assigns PageRank).
* **NPZ binary** — a compact numpy container with the rank-ordered weight
  array and the edge array, loading in O(n + m) with no parsing.

All functions accept paths or open file objects and use context managers,
so files are always closed.
"""

from __future__ import annotations

import os
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in numpy-less CI
    np = None

from ..errors import GraphConstructionError
from .builder import GraphBuilder
from .weighted_graph import WeightedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_weights",
    "write_weights",
    "load_snap_graph",
    "save_npz",
    "load_npz",
]

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_maybe(path_or_file: PathOrFile, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        # Already a file object; wrap in a no-op context manager.
        import contextlib

        return contextlib.nullcontext(path_or_file)
    return open(path_or_file, mode, encoding="utf-8")


def read_edge_list(path_or_file: PathOrFile) -> List[Tuple[int, int]]:
    """Read a SNAP-style edge list (``# comments``, ``u<TAB/SPACE>v``)."""
    edges: List[Tuple[int, int]] = []
    with _open_maybe(path_or_file, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphConstructionError(
                    f"line {lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphConstructionError(
                    f"line {lineno}: non-integer endpoint in {line!r}"
                ) from exc
            edges.append((u, v))
    return edges


def write_edge_list(
    path_or_file: PathOrFile,
    edges: Iterable[Tuple[int, int]],
    header: Optional[str] = None,
) -> None:
    """Write a SNAP-style edge list."""
    with _open_maybe(path_or_file, "w") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in edges:
            fh.write(f"{u}\t{v}\n")


def read_weights(path_or_file: PathOrFile) -> Dict[int, float]:
    """Read a ``label weight`` file."""
    weights: Dict[int, float] = {}
    with _open_maybe(path_or_file, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphConstructionError(
                    f"line {lineno}: expected 'label weight', got {line!r}"
                )
            weights[int(parts[0])] = float(parts[1])
    return weights


def write_weights(
    path_or_file: PathOrFile, weights: Dict[int, float]
) -> None:
    """Write a ``label weight`` file (sorted by label)."""
    with _open_maybe(path_or_file, "w") as fh:
        for label in sorted(weights):
            fh.write(f"{label}\t{weights[label]!r}\n")


def load_snap_graph(
    edge_path: PathOrFile,
    weight_path: Optional[PathOrFile] = None,
    drop_self_loops: bool = True,
) -> WeightedGraph:
    """Load a SNAP edge list (plus optional weight file) into a graph.

    Without a weight file, weights default to PageRank with damping 0.85 —
    exactly the paper's setup for the real datasets.
    """
    edges = read_edge_list(edge_path)
    vertices = sorted({v for e in edges for v in e})
    builder = GraphBuilder(drop_self_loops=drop_self_loops)
    if weight_path is not None:
        weights = read_weights(weight_path)
    else:
        from .pagerank import pagerank_weights

        index_of = {v: i for i, v in enumerate(vertices)}
        packed = [(index_of[u], index_of[v]) for u, v in edges if u != v]
        scores = pagerank_weights(len(vertices), packed)
        weights = {v: scores[index_of[v]] for v in vertices}
    for v in vertices:
        builder.add_vertex(v, weights.get(v))
    builder.add_edges(edges)
    return builder.build()


def save_npz(path: Union[str, os.PathLike], graph: WeightedGraph) -> None:
    """Save a graph to a compact numpy ``.npz`` container."""
    if np is None:
        raise GraphConstructionError(
            "the .npz container format requires numpy (the edge-list "
            "format works without it)"
        )
    edges = np.asarray(list(graph.iter_edges()), dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    weights = np.asarray(
        [graph.weight(r) for r in range(graph.num_vertices)], dtype=np.float64
    )
    labels = np.asarray(
        [graph.label(r) for r in range(graph.num_vertices)]
    )
    np.savez_compressed(path, edges=edges, weights=weights, labels=labels)


def load_npz(path: Union[str, os.PathLike]) -> WeightedGraph:
    """Load a graph saved by :func:`save_npz`."""
    if np is None:
        raise GraphConstructionError(
            "the .npz container format requires numpy (the edge-list "
            "format works without it)"
        )
    with np.load(path, allow_pickle=True) as data:
        edges = data["edges"]
        weights = data["weights"]
        labels = data["labels"]
    builder = GraphBuilder()
    for label, weight in zip(labels.tolist(), weights.tolist()):
        builder.add_vertex(label, weight)
    label_list = labels.tolist()
    for u, v in edges.tolist():
        builder.add_edge(label_list[u], label_list[v])
    return builder.build()
