"""PageRank — the vertex-influence weights used throughout the paper.

Section 6: "The weights of vertices are assigned as their PageRank values
with the damping factor being set as 0.85."  This module implements the
standard power iteration on the (symmetric) adjacency of an undirected
graph, treating each undirected edge as two directed ones, with uniform
teleportation.  Dangling (isolated) vertices redistribute uniformly.

The implementation is numpy-vectorised (CSR-style gather) when numpy is
importable, with a pure-stdlib power iteration fallback, so weight
assignment stays fast for the larger synthetic stand-ins while numpy
remains an accelerator, never a dependency (the same contract as the
peel kernels of :mod:`repro.core.fastpeel`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in numpy-less CI
    np = None

__all__ = ["pagerank_from_edges", "pagerank_weights"]


def pagerank_from_edges(
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
):
    """PageRank scores for an undirected edge list over ``0..n-1``.

    Returns a sequence summing to 1 (a numpy array when numpy is
    available, a plain list otherwise).  Power iteration until the L1
    change is below ``tol`` or ``max_iter`` sweeps.

    >>> scores = pagerank_from_edges(3, [(0, 1), (1, 2)])
    >>> bool(scores[1] > scores[0])
    True
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must lie strictly between 0 and 1")
    n = num_vertices
    if np is None:
        return _pagerank_pure(n, edges, damping, tol, max_iter)
    if n == 0:
        return np.zeros(0)

    edge_arr = np.asarray(list(edges), dtype=np.int64)
    if edge_arr.size == 0:
        return np.full(n, 1.0 / n)
    # Directed expansion: each undirected edge contributes both directions.
    src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
    dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
    out_deg = np.bincount(src, minlength=n).astype(np.float64)
    dangling = out_deg == 0
    safe_deg = np.where(dangling, 1.0, out_deg)

    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        share = rank / safe_deg
        spread = np.bincount(dst, weights=share[src], minlength=n)
        dangling_mass = rank[dangling].sum() / n
        new_rank = teleport + damping * (spread + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank / rank.sum()


def _pagerank_pure(
    n: int,
    edges: Iterable[Tuple[int, int]],
    damping: float,
    tol: float,
    max_iter: int,
) -> List[float]:
    """Stdlib power iteration, semantics identical to the numpy path."""
    if n == 0:
        return []
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    out_deg = [len(row) for row in adjacency]
    dangling = [u for u in range(n) if not out_deg[u]]

    rank = [1.0 / n] * n
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        spread = [0.0] * n
        for u, row in enumerate(adjacency):
            if row:
                share = rank[u] / out_deg[u]
                for v in row:
                    spread[v] += share
        dangling_mass = sum(rank[u] for u in dangling) / n
        new_rank = [
            teleport + damping * (s + dangling_mass) for s in spread
        ]
        delta = sum(abs(a - b) for a, b in zip(new_rank, rank))
        rank = new_rank
        if delta < tol:
            break
    total = sum(rank)
    return [r / total for r in rank]


def pagerank_weights(
    num_vertices: int,
    edges: Sequence[Tuple[int, int]],
    damping: float = 0.85,
) -> List[float]:
    """PageRank scores as a plain list, deterministically de-tied.

    The paper needs *distinct* weights; PageRank can produce exact ties on
    symmetric vertices.  We break ties by adding a vertex-id epsilon far
    below the smallest meaningful PageRank gap, keeping the influence
    ordering stable and total.
    """
    scores = pagerank_from_edges(num_vertices, edges, damping=damping)
    # Epsilon smaller than any plausible PageRank distinction at this n.
    eps = 1e-15
    return [float(s) + eps * (num_vertices - i) for i, s in enumerate(scores)]
