"""Connectivity utilities over prefix views and vertex subsets.

OnlineAll's expensive subroutine is "identify the connected component of
the current graph containing the minimum-weight vertex" — these helpers
implement exactly that, restricted to alive-flag masks so the caller's peel
state plugs in directly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .subgraph import PrefixView

__all__ = [
    "component_of",
    "connected_components",
    "is_connected_subset",
    "bfs_order",
]


def component_of(
    view: PrefixView, source: int, alive: Sequence[bool]
) -> List[int]:
    """Ranks of the connected component containing ``source``.

    Only vertices with ``alive[u]`` true participate.  BFS, O(component
    size in edges).
    """
    if not alive[source]:
        return []
    graph, p = view.graph, view.p
    seen = {source}
    queue = deque([source])
    out = [source]
    while queue:
        u = queue.popleft()
        for w in graph.neighbors_in_prefix(u, p):
            if alive[w] and w not in seen:
                seen.add(w)
                out.append(w)
                queue.append(w)
    return out


def connected_components(
    view: PrefixView, alive: Sequence[bool]
) -> List[List[int]]:
    """All connected components among alive vertices of the view."""
    graph, p = view.graph, view.p
    seen: Set[int] = set()
    components: List[List[int]] = []
    for s in range(p):
        if not alive[s] or s in seen:
            continue
        comp = [s]
        seen.add(s)
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors_in_prefix(u, p):
                if alive[w] and w not in seen:
                    seen.add(w)
                    comp.append(w)
                    queue.append(w)
        components.append(comp)
    return components


def is_connected_subset(view: PrefixView, ranks: Iterable[int]) -> bool:
    """Whether the subgraph induced by ``ranks`` (within the view) is connected.

    An empty subset is vacuously connected; a singleton is connected.
    """
    members = set(ranks)
    if len(members) <= 1:
        return True
    graph, p = view.graph, view.p
    start = next(iter(members))
    seen = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors_in_prefix(u, p):
            if w in members and w not in seen:
                seen.add(w)
                queue.append(w)
    return len(seen) == len(members)


def bfs_order(
    view: PrefixView, source: int, alive: Sequence[bool]
) -> Dict[int, int]:
    """BFS distances from ``source`` among alive vertices of the view."""
    graph, p = view.graph, view.p
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors_in_prefix(u, p):
            if alive[w] and w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist
