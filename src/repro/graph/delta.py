"""Streaming edge mutations over the immutable graph substrate.

:class:`~repro.graph.weighted_graph.WeightedGraph` is immutable by
design — every serving tier (CSR kernels, shared-memory segments,
result caches) keys off that promise.  ``repro.live`` therefore models
a mutation not as an in-place edit but as a **new graph generation**
derived from the old one:

* :class:`EdgeBatch` — a validated, picklable list of operations
  (``insert``/``delete`` an edge between existing vertices,
  ``reweight`` a vertex) expressed in user-facing labels, so the same
  batch replays identically in the parent process and inside cluster
  workers (rank spaces may differ after a re-rank; label spaces never
  do).
* :func:`apply_batch` — produce the next generation.  On the common
  path (no reweight changes the rank order) the new graph **shares
  every untouched adjacency row by reference** with its parent and
  installs a :class:`~repro.graph.csr.DeltaCSR` overlay, so the cost
  is O(touched rows), not O(n + m); kernels see base CSR + overlay
  merged at the adjacency-row boundary and stay byte-identical to a
  full rebuild.  When a reweight reorders ranks the generation is
  rebuilt through :class:`~repro.graph.builder.GraphBuilder` (weights
  are strictly distinct, so the rebuild is deterministic and equal to
  building from scratch).

Every application also reports a **barrier weight**: the largest
vertex weight whose threshold subgraph could have changed.  For any
``tau > barrier`` the prefix ``G>=tau`` is identical before and after
the batch — an edge only exists in ``G>=tau`` when *both* endpoints
weigh at least ``tau``, and a reweighted vertex only enters or leaves
``G>=tau`` when ``max(old, new) >= tau``.  Communities are determined
by their threshold subgraph, so every community with influence above
the barrier survives verbatim.  That is the soundness argument behind
the scoped cache invalidation in
:meth:`repro.service.cache.ResultCache.migrate_graph`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..errors import GraphConstructionError, SelfLoopError
from .weighted_graph import WeightedGraph

__all__ = [
    "EdgeBatch",
    "MutationStats",
    "apply_batch",
    "apply_ops_to_model",
]

#: Operation kinds accepted by :class:`EdgeBatch`.
_KINDS = ("insert", "delete", "reweight")


@dataclass(frozen=True)
class EdgeBatch:
    """An ordered list of mutations, expressed in vertex labels.

    Each op is a 3-tuple: ``("insert", u, v)`` / ``("delete", u, v)``
    add or remove the undirected edge between existing vertices ``u``
    and ``v``; ``("reweight", v, w)`` sets vertex ``v``'s weight to
    ``w``.  Vertex additions/removals are out of scope — they go
    through a full re-register.  Batches are plain data (picklable),
    so the cluster tier ships them over the existing tagged-tuple pipe
    protocol.
    """

    ops: Tuple[Tuple, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(tuple(op) for op in self.ops))
        for op in self.ops:
            if len(op) != 3 or op[0] not in _KINDS:
                raise ValueError(f"malformed mutation op {op!r}")
            if op[0] == "reweight":
                float(op[2])  # must be a real number
            elif op[1] == op[2]:
                raise SelfLoopError(op[1])

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def describe(self) -> str:
        """Compact human-readable form (shell/demo output)."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[op[0]] = counts.get(op[0], 0) + 1
        return (
            ", ".join(f"{counts[k]} {k}" for k in _KINDS if k in counts)
            or "empty"
        )


@dataclass
class MutationStats:
    """What one :func:`apply_batch` actually changed."""

    inserted: int = 0
    deleted: int = 0
    reweighted: int = 0
    #: Ops that were already satisfied (inserting a present edge,
    #: deleting an absent one, reweighting to the current weight).
    noops: int = 0
    #: Whether a reweight reordered ranks (forcing a full re-rank
    #: rebuild instead of the shared-row overlay).
    rank_shuffle: bool = False


def _resolve(graph: WeightedGraph, batch: EdgeBatch):
    """Normalise a batch against ``graph``: final edge flips + reweights.

    Later ops win (insert then delete = delete; the last reweight of a
    vertex sticks), matching replay semantics: applying the batch op by
    op ends in the same state.
    """
    edge_state: Dict[Tuple[int, int], bool] = {}
    new_weight: Dict[int, float] = {}
    for op in batch.ops:
        kind = op[0]
        if kind == "reweight":
            new_weight[graph.rank_of(op[1])] = float(op[2])
        else:
            u, v = graph.rank_of(op[1]), graph.rank_of(op[2])
            if u > v:
                u, v = v, u
            edge_state[(u, v)] = kind == "insert"
    return edge_state, new_weight


def apply_batch(
    graph: WeightedGraph, batch: EdgeBatch
) -> Tuple[WeightedGraph, float, MutationStats]:
    """Produce the next graph generation; ``graph`` is left untouched.

    Returns ``(new_graph, barrier, stats)``.  ``barrier`` is the
    largest weight whose threshold subgraph may differ between the two
    generations (``-inf`` when the batch was a pure no-op): every
    community with influence strictly above it is unchanged.
    """
    stats = MutationStats()
    edge_state, reweights = _resolve(graph, batch)

    old_w = graph._weights
    barrier = float("-inf")
    effective_edges: List[Tuple[int, int, bool]] = []
    for (u, v), want in edge_state.items():
        if graph.has_edge_ranks(u, v) == want:
            stats.noops += 1
            continue
        effective_edges.append((u, v, want))
        # The endpoint may also be reweighted in this batch; cover both
        # the old and new membership threshold of each endpoint.
        wu = max(old_w[u], reweights.get(u, old_w[u]))
        wv = max(old_w[v], reweights.get(v, old_w[v]))
        barrier = max(barrier, min(wu, wv))

    effective_rw: Dict[int, float] = {}
    for rank, w in reweights.items():
        if w == old_w[rank]:
            stats.noops += 1
            continue
        effective_rw[rank] = w
        barrier = max(barrier, old_w[rank], w)

    if not effective_edges and not effective_rw:
        return graph, barrier, stats

    stats.inserted = sum(1 for _, _, want in effective_edges if want)
    stats.deleted = len(effective_edges) - stats.inserted
    stats.reweighted = len(effective_rw)

    if effective_rw:
        new_weights = list(old_w)
        for rank, w in effective_rw.items():
            new_weights[rank] = w
        seen = set(new_weights)
        if len(seen) != len(new_weights):
            raise GraphConstructionError(
                "reweight would collide with an existing vertex weight; "
                "weights must stay strictly distinct"
            )
        ordered = all(
            new_weights[i - 1] > new_weights[i]
            for i in range(1, len(new_weights))
        )
        if not ordered:
            stats.rank_shuffle = True
            return (
                _rerank_rebuild(graph, effective_edges, new_weights),
                barrier,
                stats,
            )
    else:
        new_weights = old_w  # shared: nothing changed

    return (
        _overlay_graph(graph, effective_edges, new_weights),
        barrier,
        stats,
    )


def _overlay_graph(
    graph: WeightedGraph,
    effective_edges: List[Tuple[int, int, bool]],
    new_weights: List[float],
) -> WeightedGraph:
    """Rank-preserving path: share untouched rows, overlay touched ones."""
    up_rows: Dict[int, List[int]] = {}
    down_rows: Dict[int, List[int]] = {}
    delta_m = 0
    for u, v, want in effective_edges:  # u < v: up-row of v, down-row of u
        up = up_rows.get(v)
        if up is None:
            up = up_rows[v] = list(graph._adj_up[v])
        down = down_rows.get(u)
        if down is None:
            down = down_rows[u] = list(graph._adj_down[u])
        if want:
            insort(up, u)
            insort(down, v)
            delta_m += 1
        else:
            up.pop(bisect_left(up, u))
            down.pop(bisect_left(down, v))
            delta_m -= 1

    new = WeightedGraph.__new__(WeightedGraph)
    new._weights = new_weights
    new._adj_up = list(graph._adj_up)
    for v, row in up_rows.items():
        new._adj_up[v] = row
    new._adj_down = list(graph._adj_down)
    for u, row in down_rows.items():
        new._adj_down[u] = row
    new._labels = graph._labels
    new._rank_of = graph._rank_of
    new._num_edges = graph._num_edges + delta_m
    new._prefix_sizes = [0]
    base_csr = graph._csr
    if base_csr is None:
        new._csr = None  # first csr() call flattens from the rows
    elif not up_rows and not down_rows:
        new._csr = base_csr  # reweight-only batch: adjacency unchanged
    else:
        from .csr import DeltaCSR

        new._csr = DeltaCSR(base_csr, up_rows, down_rows, new._num_edges)
    return new


def _rerank_rebuild(
    graph: WeightedGraph,
    effective_edges: List[Tuple[int, int, bool]],
    new_weights: List[float],
) -> WeightedGraph:
    """Reweight reordered ranks: rebuild deterministically from scratch.

    Weights are strictly distinct, so the builder's rank assignment
    depends only on the weight values — the result is byte-identical
    to building the mutated edge/weight model from nothing (the
    differential-test oracle).
    """
    from .builder import GraphBuilder

    flips = {(u, v): want for u, v, want in effective_edges}
    builder = GraphBuilder()
    for rank in range(graph.num_vertices):
        builder.add_vertex(graph.label(rank), new_weights[rank])
    for u, v in graph.iter_edges():  # (u, v) with u > v
        if flips.pop((v, u), True):
            builder.add_edge(graph.label(u), graph.label(v))
    for (u, v), want in flips.items():
        if want:
            builder.add_edge(graph.label(u), graph.label(v))
    return builder.build()


def apply_ops_to_model(
    edges: Set[Tuple[int, int]],
    weights: Dict[Hashable, float],
    ops: Iterable[Tuple],
) -> None:
    """Replay a batch onto a plain (edge-set, weights-dict) model.

    The oracle side of the differential tests and the mixed
    read/write bench: the model is rebuilt from scratch with
    :func:`~repro.graph.builder.graph_from_arrays` and compared
    against the overlay path.  Edges are canonicalised ``(min, max)``
    label pairs.
    """
    for op in ops:
        kind = op[0]
        if kind == "reweight":
            weights[op[1]] = float(op[2])
            continue
        u, v = op[1], op[2]
        if u > v:
            u, v = v, u
        if kind == "insert":
            edges.add((u, v))
        else:
            edges.discard((u, v))
