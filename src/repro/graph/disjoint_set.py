"""Disjoint-set (union-find) structures used by community enumeration.

Two variants are provided:

* :class:`DisjointSet` — a classic union-find with union by size and path
  compression (near-constant amortised operations, [12] in the paper).
* :class:`KeyedDisjointSet` — the ``v2key`` structure of Algorithm 3
  (EnumIC): a union-find over vertices where every set carries a *key*
  (the smallest-weight keynode whose community currently contains the set's
  vertices).  ``union_into`` merges a set into the set of the keynode being
  processed and re-labels the merged root, exactly as Lines 11–13 of
  Algorithm 3 require.

Both are lazily-allocating: elements are created on first touch, which is
what EnumIC-P's "lazily initialized" ``v2key`` (Section 4) needs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional

__all__ = ["DisjointSet", "KeyedDisjointSet"]


class DisjointSet:
    """Union-find with union by size and path halving.

    Elements may be any hashable value and are created lazily by
    :meth:`find` / :meth:`union`.

    >>> ds = DisjointSet()
    >>> ds.union(1, 2)
    True
    >>> ds.connected(1, 2)
    True
    >>> ds.connected(1, 3)
    False
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._count = 0

    def __len__(self) -> int:
        """Number of elements ever touched."""
        return len(self._parent)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    @property
    def set_count(self) -> int:
        """Number of disjoint sets among touched elements."""
        return self._count

    def make_set(self, x: Hashable) -> None:
        """Create a singleton set for ``x`` if it does not exist yet."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._count += 1

    def find(self, x: Hashable) -> Hashable:
        """Return the representative of ``x``'s set (creating it if new)."""
        parent = self._parent
        if x not in parent:
            self.make_set(x)
            return x
        # Path halving: every other node points to its grandparent.
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def size_of(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def iter_elements(self) -> Iterator[Hashable]:
        """Iterate over all touched elements."""
        return iter(self._parent)


class KeyedDisjointSet:
    """The ``v2key`` union-find of EnumIC (Algorithm 3) / EnumIC-P.

    Maintains, for every touched vertex ``v``, the *key* of its set —
    in EnumIC the key is the smallest-weight keynode whose influential
    community currently contains ``v``.  Supports:

    * :meth:`key_of` — ``Find(w, v2key(.))`` of the paper: the key of the
      set containing ``w``, or ``None`` when ``w`` was never touched
      (``v2key(w) = null``).
    * :meth:`assign` — initialise ``v2key(v) <- u`` for a group vertex.
    * :meth:`union_into` — ``Union(w, u)``: merge ``w``'s set into key
      ``u``'s set; the resulting set keeps key ``u``.

    The structure is shared across progressive rounds (EnumIC-P keeps one
    global instance), which this class supports naturally because state is
    keyed by vertex.
    """

    __slots__ = ("_parent", "_size", "_key_of_root", "_anchor")

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        self._key_of_root: Dict[int, int] = {}
        # For each key, an arbitrary member vertex of its set ("anchor"),
        # used to locate the set of a key in O(find).
        self._anchor: Dict[int, int] = {}

    def __contains__(self, v: int) -> bool:
        return v in self._parent

    def _find_root(self, v: int) -> int:
        parent = self._parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def assign(self, v: int, key: int) -> None:
        """Set ``v2key(v) = key`` where ``v`` is a fresh vertex.

        If the key already has a set, ``v`` joins it; otherwise ``v``
        becomes the anchor of a new set labelled ``key``.
        """
        if v in self._parent:
            # Vertex already tracked: merge its set into the key's set.
            self.union_into(v, key)
            return
        self._parent[v] = v
        self._size[v] = 1
        anchor = self._anchor.get(key)
        if anchor is None:
            self._key_of_root[v] = key
            self._anchor[key] = v
        else:
            root = self._find_root(anchor)
            self._link(root, v, key)

    def key_of(self, v: int) -> Optional[int]:
        """``Find(v, v2key(.))``: key of ``v``'s set, or ``None`` if untouched."""
        if v not in self._parent:
            return None
        return self._key_of_root[self._find_root(v)]

    def union_into(self, v: int, key: int) -> None:
        """``Union(v, key)``: merge ``v``'s set into the set labelled ``key``.

        The merged set is labelled ``key``.  ``v`` must already be tracked;
        the key's set is created (empty anchor pointing at ``v``'s root)
        when the key never had one.
        """
        v_root = self._find_root(v)
        anchor = self._anchor.get(key)
        if anchor is None:
            # The key has no set yet: v's set simply takes this key.
            old_key = self._key_of_root.pop(v_root, None)
            if old_key is not None and self._anchor.get(old_key) is not None:
                # The old key now dangles; drop its anchor if it pointed here.
                if self._find_root(self._anchor[old_key]) == v_root:
                    del self._anchor[old_key]
            self._key_of_root[v_root] = key
            self._anchor[key] = v_root
            return
        k_root = self._find_root(anchor)
        if k_root == v_root:
            self._key_of_root[v_root] = key
            return
        self._link(k_root, v_root, key)

    def _link(self, root_a: int, root_b: int, key: int) -> None:
        """Union two roots by size; the surviving root gets ``key``."""
        self._key_of_root.pop(root_a, None)
        self._key_of_root.pop(root_b, None)
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._key_of_root[root_a] = key
        self._anchor[key] = root_a
