"""Prefix-induced subgraph views (``G>=tau`` of the paper).

Because :class:`~repro.graph.weighted_graph.WeightedGraph` ranks vertices in
decreasing weight order, every threshold-induced subgraph ``G>=tau`` is the
subgraph induced by a rank *prefix* ``[0, p)``.  :class:`PrefixView` is a
lightweight, read-only window over the parent graph restricted to such a
prefix — it owns no adjacency copies, so creating one is O(1) and iterating
its edges is linear in its own size (the locality property the
instance-optimality proof needs).

The peeling algorithms (CountIC, γ-core, γ-truss) take a ``PrefixView`` and
build their own mutable scratch state (degree arrays, alive flags) in
O(size(view)).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Tuple

from .weighted_graph import WeightedGraph

__all__ = ["PrefixView"]


class PrefixView:
    """A read-only view of the subgraph induced by ranks ``[0, p)``.

    >>> from repro.graph.builder import graph_from_arrays
    >>> g = graph_from_arrays(4, [(0, 1), (1, 2), (2, 3)])
    >>> view = PrefixView(g, 2)
    >>> view.num_vertices, view.num_edges
    (2, 1)
    """

    __slots__ = ("graph", "p", "_down_cuts", "_seed_cuts", "_seed_len")

    def __init__(self, graph: WeightedGraph, p: int) -> None:
        if p < 0 or p > graph.num_vertices:
            raise ValueError(
                f"prefix length {p} out of range [0, {graph.num_vertices}]"
            )
        self.graph = graph
        self.p = p
        # Cache of bisect cuts into adj_down, computed lazily per vertex:
        # index of the first down-neighbour outside the prefix.
        self._down_cuts: List[int] = []
        # Cuts inherited from a smaller view of the same graph (see
        # extend()): each is a lower bound for this view's bisect.
        self._seed_cuts: List[int] = []
        self._seed_len = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_threshold(cls, graph: WeightedGraph, tau: float) -> "PrefixView":
        """The view of ``G>=tau``."""
        return cls(graph, graph.prefix_for_threshold(tau))

    @classmethod
    def whole(cls, graph: WeightedGraph) -> "PrefixView":
        """The view covering the entire graph."""
        return cls(graph, graph.num_vertices)

    def extend(self, p: int) -> "PrefixView":
        """A larger view of the same graph, inheriting this view's cuts.

        Progressive rounds grow the prefix monotonically; because the
        down-rows are sorted, a smaller prefix's cut is a *lower bound*
        for the larger prefix's, so the new view's bisects start from
        the inherited cuts instead of the row heads.  This is how
        :class:`~repro.core.progressive.LocalSearchP` chains its rounds
        so no bisect ground is ever re-covered.
        """
        if p < self.p:
            raise ValueError(
                f"extend() must not shrink the prefix ({p} < {self.p})"
            )
        view = PrefixView(self.graph, p)
        # Prefer our computed cuts; fall back to the seeds we inherited
        # (both are valid lower bounds for the larger prefix).
        if len(self._down_cuts) >= self._seed_len:
            view._seed_cuts = self._down_cuts
            view._seed_len = len(self._down_cuts)
        else:
            view._seed_cuts = self._seed_cuts
            view._seed_len = self._seed_len
        return view

    @property
    def is_whole_graph(self) -> bool:
        """Whether this view covers all of ``G`` (Line 3 of Algorithm 1)."""
        return self.p == self.graph.num_vertices

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the view."""
        return self.p

    @property
    def num_edges(self) -> int:
        """Number of edges with both endpoints in the view."""
        return self.size - self.p

    @property
    def size(self) -> int:
        """``size(G>=tau) = |V| + |E|`` of the view."""
        return self.graph.prefix_size(self.p)

    @property
    def threshold(self) -> float:
        """The weight threshold this prefix realises (weight of rank p-1)."""
        return self.graph.threshold_for_prefix(self.p)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PrefixView(p={self.p}, size={self.size})"

    # ------------------------------------------------------------------
    def down_cut(self, u: int) -> int:
        """Number of down-neighbours of ``u`` inside the prefix (cached).

        When the view was created through :meth:`extend`, each bisect
        starts from the smaller view's cut for that vertex.
        """
        cuts = self._down_cuts
        if len(cuts) <= u:
            graph, p = self.graph, self.p
            seeds, seed_len = self._seed_cuts, self._seed_len
            adj_down = graph.neighbors_down
            for v in range(len(cuts), u + 1):
                row = adj_down(v)
                lo = seeds[v] if v < seed_len else 0
                cuts.append(bisect_left(row, p, lo))
        return cuts[u]

    def degree(self, u: int) -> int:
        """Degree of ``u`` within the view."""
        return len(self.graph.neighbors_up(u)) + self.down_cut(u)

    def degrees(self) -> List[int]:
        """Degrees of all view vertices, computed in O(p + m_p).

        Avoids per-vertex bisects by counting each up-edge at both
        endpoints (every up-edge of a prefix vertex stays in the prefix).
        """
        p = self.p
        deg = [0] * p
        adj_up = self.graph.neighbors_up
        for u in range(p):
            up = adj_up(u)
            deg[u] += len(up)
            for v in up:
                deg[v] += 1
        return deg

    def neighbors(self, u: int) -> Iterator[int]:
        """Neighbours of ``u`` inside the view."""
        yield from self.graph.neighbors_up(u)
        down = self.graph.neighbors_down(u)
        for i in range(self.down_cut(u)):
            yield down[i]

    def neighbor_lists(self) -> List[List[int]]:
        """Materialised adjacency restricted to the view, O(size).

        Used by algorithms that need random-access adjacency (e.g. the
        truss peel's set-based triangle lookups).
        """
        p = self.p
        lists: List[List[int]] = [[] for _ in range(p)]
        adj_up = self.graph.neighbors_up
        for u in range(p):
            for v in adj_up(u):
                lists[u].append(v)
                lists[v].append(u)
        return lists

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Edges of the view as rank pairs ``(u, v)`` with ``u > v``."""
        adj_up = self.graph.neighbors_up
        for u in range(self.p):
            for v in adj_up(u):
                yield (u, v)
