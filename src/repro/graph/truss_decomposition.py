"""k-truss machinery: triangle support, γ-truss reduction, truss numbers.

A graph has cohesiveness γ under the truss measure when every edge
participates in at least γ − 2 triangles (Section 5.2; Cohen [11],
Wang–Cheng [38]).  The γ-truss of a graph is its maximal subgraph
satisfying that constraint (isolated vertices removed).

Provided here:

* :func:`edge_supports` — triangle count per edge, O(Σ min(d(u), d(v)));
* :func:`gamma_truss` — edge-alive flags of the γ-truss of a prefix view;
* :func:`truss_decomposition` — truss number per edge by support peeling;
* :func:`max_truss` — largest γ with a non-empty γ-truss.

Edges are keyed as rank pairs ``(u, v)`` with ``u < v`` (i.e. the
higher-weight endpoint first).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from .subgraph import PrefixView
from .weighted_graph import WeightedGraph

__all__ = [
    "edge_key",
    "edge_supports",
    "gamma_truss",
    "truss_decomposition",
    "max_truss",
]

Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Canonical key for the undirected edge between ranks ``u`` and ``v``."""
    return (u, v) if u < v else (v, u)


def _adjacency_sets(view: PrefixView) -> List[Set[int]]:
    """Adjacency of the view as sets (for O(1) membership in triangle scans)."""
    adj = [set() for _ in range(view.p)]
    for u, v in view.iter_edges():
        adj[u].add(v)
        adj[v].add(u)
    return adj


def edge_supports(
    view: PrefixView, adj: List[Set[int]] = None
) -> Dict[Edge, int]:
    """Triangle support of every edge in the view.

    ``support[(u, v)]`` = number of common neighbours of ``u`` and ``v``
    inside the view.  Iterates the smaller endpoint's adjacency per edge.
    """
    if adj is None:
        adj = _adjacency_sets(view)
    support: Dict[Edge, int] = {}
    for u, v in view.iter_edges():
        a, b = adj[u], adj[v]
        if len(a) > len(b):
            a, b = b, a
        support[edge_key(u, v)] = sum(1 for w in a if w in b)
    return support


def gamma_truss(
    view: PrefixView, gamma: int
) -> Tuple[List[Set[int]], Dict[Edge, int]]:
    """Compute the γ-truss of the view.

    Returns ``(adj, support)`` where ``adj`` is the adjacency (as sets) of
    the surviving subgraph and ``support`` maps every surviving edge to its
    triangle support within the surviving subgraph.

    Peels every edge whose support drops below γ − 2, cascading support
    updates through the two other edges of each destroyed triangle.
    """
    if gamma < 2:
        # Every edge trivially participates in >= gamma - 2 <= 0 triangles.
        adj = _adjacency_sets(view)
        return adj, edge_supports(view, adj)
    adj = _adjacency_sets(view)
    support = edge_supports(view, adj)
    threshold = gamma - 2

    queue = deque(e for e, s in support.items() if s < threshold)
    queued = set(queue)
    while queue:
        u, v = queue.popleft()
        if v not in adj[u]:
            continue  # already removed by an earlier cascade
        adj[u].discard(v)
        adj[v].discard(u)
        del support[(u, v) if u < v else (v, u)]
        small, large = (adj[u], adj[v]) if len(adj[u]) <= len(adj[v]) else (adj[v], adj[u])
        for w in small:
            if w in large:
                for e in (edge_key(u, w), edge_key(v, w)):
                    s = support.get(e)
                    if s is None:
                        continue
                    support[e] = s - 1
                    if s - 1 < threshold and e not in queued:
                        queued.add(e)
                        queue.append(e)
    return adj, support


def truss_decomposition(graph: WeightedGraph) -> Dict[Edge, int]:
    """Truss number of every edge.

    ``truss[(u, v)]`` is the largest γ such that edge ``(u, v)`` belongs to
    the γ-truss of ``graph``.  Support-ordered peeling; O(m^1.5)-ish, fine
    at reproduction scales.
    """
    view = PrefixView.whole(graph)
    adj = _adjacency_sets(view)
    support = edge_supports(view, adj)
    truss: Dict[Edge, int] = {}

    # Process edges in non-decreasing current support (lazy heap).
    import heapq

    heap = [(s, e) for e, s in support.items()]
    heapq.heapify(heap)
    k = 2
    while heap:
        s, e = heapq.heappop(heap)
        if e not in support or support[e] != s:
            continue  # stale entry
        u, v = e
        k = max(k, s + 2)
        truss[e] = k
        adj[u].discard(v)
        adj[v].discard(u)
        del support[e]
        small, large = (adj[u], adj[v]) if len(adj[u]) <= len(adj[v]) else (adj[v], adj[u])
        for w in small:
            if w in large:
                for other in (edge_key(u, w), edge_key(v, w)):
                    cur = support.get(other)
                    if cur is not None and cur > s:
                        support[other] = cur - 1
                        heapq.heappush(heap, (cur - 1, other))
    return truss


def max_truss(graph: WeightedGraph) -> int:
    """Largest γ for which the γ-truss of the graph is non-empty."""
    truss = truss_decomposition(graph)
    return max(truss.values()) if truss else 0
