"""k-core machinery: γ-core reduction and full core decomposition.

The γ-core of a graph is its maximal subgraph with minimum degree at least
γ (Seidman [34]).  Influential γ-communities live inside γ-cores, and
CountIC's first step (Line 1 of Algorithm 2) is a γ-core reduction.

This module provides:

* :func:`gamma_core` — alive-flags of the γ-core of a :class:`PrefixView`,
  by the standard linear-time cascade peel;
* :func:`core_decomposition` — core numbers of every vertex via
  bucket-based peeling (O(n + m), Batagelj–Zaveršnik);
* :func:`degeneracy` — the maximum core number; this is the ``γmax``
  statistic of Table 1 in the paper (largest γ with a non-empty γ-core).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .subgraph import PrefixView
from .weighted_graph import WeightedGraph

__all__ = [
    "gamma_core",
    "gamma_core_members",
    "core_decomposition",
    "degeneracy",
]


def gamma_core(
    view: PrefixView, gamma: int
) -> Tuple[List[bool], List[int]]:
    """Compute the γ-core of a prefix view.

    Returns ``(alive, degree)`` where ``alive[u]`` says whether rank ``u``
    survives in the γ-core and ``degree[u]`` is its degree among surviving
    vertices (meaningless for dead vertices).  Runs in O(size(view)).

    A vertex with degree < γ is removed; removals cascade until the
    remaining subgraph has minimum degree >= γ (possibly empty).
    """
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    p = view.p
    deg = view.degrees()
    alive = [True] * p
    graph = view.graph

    stack = [u for u in range(p) if deg[u] < gamma]
    for u in stack:
        alive[u] = False
    while stack:
        u = stack.pop()
        for w in graph.neighbors_in_prefix(u, p):
            if alive[w]:
                deg[w] -= 1
                if deg[w] == gamma - 1:
                    alive[w] = False
                    stack.append(w)
    return alive, deg


def gamma_core_members(view: PrefixView, gamma: int) -> List[int]:
    """Ranks of the vertices in the γ-core of the view (ascending)."""
    alive, _ = gamma_core(view, gamma)
    return [u for u in range(view.p) if alive[u]]


def core_decomposition(graph: WeightedGraph) -> List[int]:
    """Core number of every vertex, by bucket peeling in O(n + m).

    ``core[u]`` is the largest γ such that ``u`` belongs to the γ-core of
    ``graph``.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    deg = [graph.degree(u) for u in range(n)]
    max_deg = max(deg) if n else 0

    # Bucket sort vertices by degree.
    bins = [0] * (max_deg + 2)
    for d in deg:
        bins[d] += 1
    start = 0
    for d in range(max_deg + 1):
        count = bins[d]
        bins[d] = start
        start += count
    pos = [0] * n
    order = [0] * n
    for u in range(n):
        pos[u] = bins[deg[u]]
        order[pos[u]] = u
        bins[deg[u]] += 1
    # Rewind bin starts.
    for d in range(max_deg, 0, -1):
        bins[d] = bins[d - 1]
    bins[0] = 0

    core = deg[:]
    for i in range(n):
        u = order[i]
        for w in graph.iter_neighbors(u):
            if core[w] > core[u]:
                dw = core[w]
                pw = pos[w]
                ps = bins[dw]
                s = order[ps]
                if s != w:
                    # Swap w to the front of its bucket.
                    order[ps], order[pw] = w, s
                    pos[w], pos[s] = ps, pw
                bins[dw] += 1
                core[w] -= 1
    return core


def degeneracy(graph: WeightedGraph) -> int:
    """The degeneracy of the graph — ``γmax`` of Table 1.

    The largest γ for which the γ-core is non-empty.
    """
    cores = core_decomposition(graph)
    return max(cores) if cores else 0
