"""Control policies — pure decision functions over windowed signals.

Each policy is a small, stateless-between-calls object with one method,
``propose(signals, state)``, returning :class:`Decision` records.  The
controller is what *applies* decisions (and enforces min-dwell between
them); policies only look at evidence and say what they would change.
Flap resistance is designed in twice over:

* **hysteresis** — every policy's grow and shrink conditions are
  separated by a dead band (e.g. the batch window widens at queue
  depth >= ``widen_depth`` but narrows only at <= ``narrow_depth``),
  so a signal oscillating inside the band produces no decisions at all;
* **min-dwell** — the controller refuses to re-touch the same
  ``(policy, target)`` pair within its dwell period, bounding the rate
  of change even when the evidence genuinely swings.

The three periodic policies actuate the surfaces added for this
subsystem: :meth:`BatchScheduler.set_batch_window`,
:meth:`ShardPool.add_replica` / :meth:`remove_replica` (and the
ClusterPool equivalents), and :meth:`ClusterPool.reassign_family`.
Admission control is *not* a periodic policy — it sits on the request
path (:mod:`repro.control.admission`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .signals import ControlSignals

__all__ = [
    "Decision",
    "ControlState",
    "BatchWindowPolicy",
    "ReplicaPolicy",
    "PlacementPolicy",
]


@dataclass(frozen=True)
class Decision:
    """One proposed (and, once applied, audited) control action."""

    policy: str
    #: Actuator verb: ``set_window`` / ``add_replica`` /
    #: ``remove_replica`` / ``reassign`` / ``unstick_worker``.
    action: str
    #: What the action touches: the scheduler, a graph name, a family
    #: label, or a worker tag — the dwell key is ``(policy, target)``.
    target: str
    before: object
    after: object
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "action": self.action,
            "target": self.target,
            "before": self.before,
            "after": self.after,
            "reason": self.reason,
        }


@dataclass
class ControlState:
    """The actuators' current configuration, as policies see it.

    Assembled fresh by the controller each tick from the live scheduler
    and pool, so policies always reason against what is actually in
    effect (including each other's past actions), never a stale copy.
    """

    #: Current scheduler collection pause, seconds.
    window_s: float = 0.0
    #: Pool capacity (shards or worker processes).
    num_shards: int = 1
    #: Explicit replication entries, ``{graph: copies}``.
    replication: Dict[str, int] = field(default_factory=dict)
    #: In-flight depth per pool slot.
    depths: List[int] = field(default_factory=list)
    #: Sticky family placements ``{label: worker tag}`` (cluster only).
    placements: Dict[str, str] = field(default_factory=dict)
    backend: str = "thread"

    def copies_of(self, graph: str) -> int:
        return self.replication.get(graph, 1)


class BatchWindowPolicy:
    """Tune the scheduler's collection pause from observed pressure.

    Widening only pays when concurrent same-family traffic exists to
    coalesce: the condition demands sustained queue pressure *and* a
    coalesce rate that proves batches are actually forming.  Narrowing
    triggers whenever the queue is calm (the window is then pure added
    latency) or coalescing has stopped paying.  The asymmetric
    thresholds (``widen_depth`` > ``narrow_depth``, ``widen_coalesce`` >
    ``narrow_coalesce``) are the hysteresis band.
    """

    name = "batch_window"

    def __init__(
        self,
        step_s: float = 0.005,
        max_window_s: float = 0.025,
        widen_depth: int = 4,
        narrow_depth: int = 1,
        widen_coalesce: float = 0.3,
        narrow_coalesce: float = 0.1,
    ) -> None:
        if not 0 < step_s <= max_window_s:
            raise ValueError("need 0 < step_s <= max_window_s")
        if narrow_depth >= widen_depth:
            raise ValueError("hysteresis requires narrow_depth < widen_depth")
        self.step_s = step_s
        self.max_window_s = max_window_s
        self.widen_depth = widen_depth
        self.narrow_depth = narrow_depth
        self.widen_coalesce = widen_coalesce
        self.narrow_coalesce = narrow_coalesce

    def propose(
        self, signals: ControlSignals, state: ControlState
    ) -> List[Decision]:
        window = state.window_s
        if (
            signals.queue_depth_peak >= self.widen_depth
            and signals.coalesce_rate >= self.widen_coalesce
            and window < self.max_window_s
        ):
            after = min(self.max_window_s, window + self.step_s)
            return [
                Decision(
                    policy=self.name,
                    action="set_window",
                    target="scheduler",
                    before=window,
                    after=after,
                    reason=(
                        f"queue peak {signals.queue_depth_peak} >= "
                        f"{self.widen_depth} with coalesce rate "
                        f"{signals.coalesce_rate:.2f} — widen to deepen "
                        "batches"
                    ),
                )
            ]
        if window > 0 and (
            signals.queue_depth_peak <= self.narrow_depth
            or signals.coalesce_rate < self.narrow_coalesce
        ):
            after = max(0.0, window - self.step_s)
            why = (
                f"queue peak {signals.queue_depth_peak} <= "
                f"{self.narrow_depth}"
                if signals.queue_depth_peak <= self.narrow_depth
                else f"coalesce rate {signals.coalesce_rate:.2f} < "
                f"{self.narrow_coalesce}"
            )
            return [
                Decision(
                    policy=self.name,
                    action="set_window",
                    target="scheduler",
                    before=window,
                    after=after,
                    reason=f"{why} — window is pure added latency",
                )
            ]
        return []


class ReplicaPolicy:
    """Scale each graph's replica fan-out with its share of demand.

    The target copy count for a graph is its windowed share of queries
    scaled to the pool size (a graph taking ~all the traffic deserves
    ~all the slots as candidates).  Growth additionally requires real
    pressure — queued work at the scheduler or a deep pool slot — so a
    skewed but under-capacity workload is left alone.  Shrink requires
    the share to fall *well below* what the current copies imply
    (``shrink_share``), the hysteresis that keeps a borderline graph
    from oscillating.  One step per decision; the controller's dwell
    sets the slew rate.
    """

    name = "replicas"

    def __init__(
        self,
        grow_depth: int = 2,
        shrink_share: float = 0.25,
        min_window_queries: int = 8,
    ) -> None:
        self.grow_depth = grow_depth
        self.shrink_share = shrink_share
        self.min_window_queries = min_window_queries

    def propose(
        self, signals: ControlSignals, state: ControlState
    ) -> List[Decision]:
        demand = signals.graph_demand()
        total = sum(demand.values())
        if total < self.min_window_queries:
            return []
        decisions: List[Decision] = []
        pressured = signals.queue_depth_peak >= self.grow_depth or any(
            depth >= self.grow_depth for depth in state.depths
        )
        for graph, queries in sorted(demand.items()):
            share = queries / total
            target = max(
                1, min(state.num_shards, round(share * state.num_shards))
            )
            copies = state.copies_of(graph)
            if copies < target and pressured:
                decisions.append(
                    Decision(
                        policy=self.name,
                        action="add_replica",
                        target=graph,
                        before=copies,
                        after=copies + 1,
                        reason=(
                            f"{share:.0%} of windowed demand wants "
                            f"{target} cop{'ies' if target != 1 else 'y'} "
                            f"(has {copies}) under queue pressure"
                        ),
                    )
                )
        # Shrink cooled graphs: any explicit entry whose share fell well
        # below what even one fewer copy would imply.
        for graph, copies in sorted(state.replication.items()):
            if copies <= 1:
                continue
            share = demand.get(graph, 0) / total
            implied = copies / state.num_shards if state.num_shards else 1.0
            if share < implied * self.shrink_share:
                decisions.append(
                    Decision(
                        policy=self.name,
                        action="remove_replica",
                        target=graph,
                        before=copies,
                        after=copies - 1,
                        reason=(
                            f"share fell to {share:.0%} "
                            f"(< {self.shrink_share:.0%} of the "
                            f"{implied:.0%} its {copies} copies imply)"
                        ),
                    )
                )
        return decisions


class PlacementPolicy:
    """Migrate stuck families whose placement has gone bad.

    Two independent triggers, both producing ``reassign`` decisions the
    controller feeds to :meth:`ClusterPool.reassign_family` (a no-op
    surface on thread pools, where placement is stateless):

    * **p95 regression** — the family's p95 grew past
      ``regression_factor`` times its value at the window's start, on
      enough windowed queries to mean something.  This is the family
      the ISSUE names: parked on a worker that has since gone hot.
    * **depth imbalance** — the family sits on a worker whose in-flight
      depth exceeds the least-loaded worker's by ``imbalance_depth``.
      This catches pre-replication pile-ups (every placement made while
      fan-out was 1 stays stuck after the fan-out grows; regression
      alone can be slow to indict them).

    At most ``max_moves`` migrations per tick — re-placement has a
    re-seed cost, and moving everything at once just moves the pile.
    """

    name = "placement"

    def __init__(
        self,
        regression_factor: float = 2.0,
        min_window_queries: int = 4,
        imbalance_depth: int = 3,
        max_moves: int = 2,
    ) -> None:
        if regression_factor <= 1.0:
            raise ValueError("regression_factor must exceed 1")
        self.regression_factor = regression_factor
        self.min_window_queries = min_window_queries
        self.imbalance_depth = imbalance_depth
        self.max_moves = max_moves

    def propose(
        self, signals: ControlSignals, state: ControlState
    ) -> List[Decision]:
        if not state.placements:
            return []
        decisions: List[Decision] = []
        min_depth = min(state.depths) if state.depths else 0
        hot_workers = {
            f"worker:{index}"
            for index, depth in enumerate(state.depths)
            if depth - min_depth >= self.imbalance_depth
        }
        for label, signal in sorted(signals.families.items()):
            if len(decisions) >= self.max_moves:
                break
            worker = state.placements.get(label)
            if worker is None or signal.queries < self.min_window_queries:
                continue
            regressed = (
                signal.p95_ms is not None
                and signal.p95_start_ms is not None
                and signal.p95_start_ms > 0
                and signal.p95_ms
                >= signal.p95_start_ms * self.regression_factor
            )
            crowded = worker in hot_workers
            if not regressed and not crowded:
                continue
            reason = (
                f"p95 {signal.p95_ms:.1f}ms >= {self.regression_factor}x "
                f"window-start {signal.p95_start_ms:.1f}ms"
                if regressed
                else f"stuck on {worker}, depth {self.imbalance_depth}+ "
                "above least-loaded"
            )
            decisions.append(
                Decision(
                    policy=self.name,
                    action="reassign",
                    target=label,
                    before=worker,
                    after=None,
                    reason=reason,
                )
            )
        return decisions
