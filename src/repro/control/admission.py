"""Per-tenant admission control: token buckets + saturation backpressure.

The request-path half of the control plane.  Unlike the periodic
policies, admission runs synchronously inside the transport's query
path, *before* the scheduler accepts the work — rejecting after
queueing would spend the very capacity the rejection protects.

Two independent gates, each raising the typed
:class:`~repro.errors.AdmissionRejected` (the serving layer's 429):

* **tenant quota** — a classic token bucket per tenant: ``rate`` tokens
  per second refill, ``burst`` capacity.  Buckets exist only for
  tenants with a configured quota (plus an optional ``default_rate``
  applied to any *named* tenant); anonymous traffic (no ``tenant=`` on
  the spec) is never quota-limited — billing identity is opt-in.
* **saturation backpressure** — when the scheduler's pending depth
  reaches ``max_queue_depth``, everyone is refused until the queue
  drains below it.  A saturated server serving 429s in microseconds
  beats one serving timeouts in seconds.

Rejections are counted per tenant (``"-"`` for anonymous) both locally
and in the shared :class:`~repro.service.metrics.ServiceMetrics`, which
is where the ``repro_admission_rejected_total{tenant}`` Prometheus
series and the dashboard tile read from.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import AdmissionRejected

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    Time is injected by the owner (one clock for every bucket), so tests
    drive refill deterministically with a fake clock.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated: Optional[float] = None

    def try_take(self, now: float) -> bool:
        """Consume one token if available; refill lazily from ``now``."""
        if self.updated is not None and now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Decide, per query, whether the server should accept the work.

    Parameters
    ----------
    max_queue_depth:
        Saturation threshold over the scheduler's pending depth;
        ``None`` disables backpressure.
    default_rate / default_burst:
        Quota applied to named tenants without an explicit
        :meth:`set_quota` entry; ``None`` leaves them unlimited.
    metrics:
        Shared sink for per-tenant rejection counters.
    clock:
        Injectable monotonic time source (tests use a fake).
    """

    def __init__(
        self,
        *,
        max_queue_depth: Optional[int] = None,
        default_rate: Optional[float] = None,
        default_burst: Optional[float] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.max_queue_depth = max_queue_depth
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.metrics = metrics
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._quotas: Dict[str, Dict[str, float]] = {}
        self.rejected: Dict[str, int] = {}
        self.admitted = 0

    # ------------------------------------------------------------------
    def set_quota(
        self, tenant: str, rate: float, burst: Optional[float] = None
    ) -> None:
        """Give ``tenant`` a token bucket: ``rate``/s, ``burst`` cap
        (defaults to ``max(rate, 1)`` — at least one query always fits
        a full bucket)."""
        if not tenant:
            raise ValueError("tenant must be non-empty")
        cap = burst if burst is not None else max(rate, 1.0)
        with self._lock:
            self._buckets[tenant] = TokenBucket(rate, cap)
            self._quotas[tenant] = {"rate": float(rate), "burst": float(cap)}

    def _bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None and self.default_rate is not None:
            bucket = TokenBucket(
                self.default_rate,
                (
                    self.default_burst
                    if self.default_burst is not None
                    else max(self.default_rate, 1.0)
                ),
            )
            self._buckets[tenant] = bucket
        return bucket

    def _reject(self, tenant: Optional[str], reason: str, detail: str):
        label = tenant if tenant else "-"
        self.rejected[label] = self.rejected.get(label, 0) + 1
        if self.metrics is not None:
            self.metrics.observe_admission_rejected(tenant)
        raise AdmissionRejected(reason, tenant=tenant, detail=detail)

    def admit(self, tenant: Optional[str], queue_depth: int = 0) -> None:
        """Raise :class:`AdmissionRejected` unless this query may run."""
        with self._lock:
            if (
                self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth
            ):
                self._reject(
                    tenant,
                    "saturated",
                    f"queue depth {queue_depth} at the "
                    f"{self.max_queue_depth} backpressure threshold",
                )
            if tenant:
                bucket = self._bucket_for(tenant)
                if bucket is not None and not bucket.try_take(self.clock()):
                    self._reject(
                        tenant,
                        "quota",
                        f"over its {bucket.rate:g}/s query quota",
                    )
            self.admitted += 1

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """The admission panel's document (quotas + rejection counts)."""
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "default_rate": self.default_rate,
                "quotas": {k: dict(v) for k, v in self._quotas.items()},
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
            }
