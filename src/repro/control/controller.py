"""AdaptiveController — the periodic loop closing the feedback circuit.

One background thread (daemon, ``MetricsHistory``-style lifecycle) that
each ``interval_s``:

1. reads the last ``window_s`` of collector ticks and derives
   :class:`~repro.control.signals.ControlSignals` (no ticks yet → no
   decisions — evidence first);
2. assembles a fresh :class:`~repro.control.policies.ControlState` from
   the *live* scheduler and pool, so policies see each other's effects;
3. collects every policy's proposals, drops any that would re-touch a
   ``(policy, target)`` pair inside the min-dwell period, and applies
   the rest through the runtime-mutation actuators
   (``set_batch_window`` / ``add_replica`` / ``remove_replica`` /
   ``reassign_family``);
4. appends each applied (or failed) decision to a bounded audit ring —
   the document behind ``/control.json`` and the dashboard's controller
   panel — and bumps ``repro_control_decisions_total{policy}``.

Construction is **late-binding**: ``ReproServer(controller=...)`` needs
a controller built before the server's scheduler and pool exist, so all
component references are optional at construction and the server fills
the gaps via :meth:`bind` during its own setup.  Binding to a
:class:`~repro.cluster.pool.ClusterPool` also installs the restart
placement hook: a replaced worker's sticky families are un-stuck so the
next dispatch re-places them least-loaded (re-seeded warm from the
parent mirror) instead of marching back to the same index.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .admission import AdmissionController
from .policies import (
    BatchWindowPolicy,
    ControlState,
    Decision,
    PlacementPolicy,
    ReplicaPolicy,
)
from .signals import extract_signals

__all__ = ["AdaptiveController"]


def default_policies() -> List[object]:
    return [BatchWindowPolicy(), ReplicaPolicy(), PlacementPolicy()]


class AdaptiveController:
    """Drive the policies against a live server's scheduler and pool.

    Parameters
    ----------
    history / scheduler / pool / metrics:
        The components the loop reads and actuates; any may be ``None``
        here and supplied later via :meth:`bind`.
    admission:
        Optional request-path :class:`AdmissionController`; exposed via
        :meth:`admit` so the transport has one gate to call.
    policies:
        The periodic policy objects; defaults to one of each.
    interval_s / window_s / dwell_s:
        Loop period, signal window, and per-``(policy, target)``
        minimum seconds between applied decisions.
    audit_capacity:
        Bound on the decision ring (oldest entries fall out first).
    clock:
        Injectable time source for tests.
    """

    def __init__(
        self,
        *,
        history=None,
        scheduler=None,
        pool=None,
        metrics=None,
        admission: Optional[AdmissionController] = None,
        policies: Optional[List[object]] = None,
        interval_s: float = 1.0,
        window_s: float = 10.0,
        dwell_s: float = 5.0,
        audit_capacity: int = 128,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if window_s < interval_s:
            raise ValueError("window_s must cover at least one interval")
        if audit_capacity < 1:
            raise ValueError("audit_capacity must be at least 1")
        self.history = history
        self.scheduler = scheduler
        self.pool = pool
        self.metrics = metrics
        self.admission = admission
        self.policies = (
            list(policies) if policies is not None else default_policies()
        )
        self.interval_s = interval_s
        self.window_s = window_s
        self.dwell_s = dwell_s
        self.clock = clock
        self._audit: Deque[Dict[str, object]] = deque(maxlen=audit_capacity)
        self._audit_lock = threading.Lock()
        self._last_applied: Dict[Tuple[str, str], float] = {}
        self.ticks = 0
        self.decisions_applied = 0
        self.decisions_failed = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # binding + lifecycle
    # ------------------------------------------------------------------
    def bind(
        self, *, history=None, scheduler=None, pool=None, metrics=None
    ) -> "AdaptiveController":
        """Fill in components the constructor didn't have (server boot).

        Only ``None`` slots are filled — a caller-configured component
        wins over the server's default.  Binding a pool that supports
        restart hooks routes dead-worker restarts through the placement
        policy (the sticky-forever fix).
        """
        if history is not None and self.history is None:
            self.history = history
        if scheduler is not None and self.scheduler is None:
            self.scheduler = scheduler
        if metrics is not None and self.metrics is None:
            self.metrics = metrics
        if pool is not None and self.pool is None:
            self.pool = pool
        if self.pool is not None and hasattr(self.pool, "placement_hook"):
            self.pool.placement_hook = self._on_worker_restart
        if self.admission is not None and self.admission.metrics is None:
            self.admission.metrics = self.metrics
        return self

    def start(self) -> None:
        """Start the control loop thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        if self.history is None:
            raise RuntimeError(
                "controller needs a MetricsHistory before starting "
                "(bind() it or construct with history=...)"
            )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-control", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 — the loop must survive
                with self._audit_lock:
                    self.decisions_failed += 1

    # ------------------------------------------------------------------
    # one control cycle
    # ------------------------------------------------------------------
    def tick(self) -> List[Decision]:
        """Run one observe → decide → actuate → audit cycle."""
        self.ticks += 1
        if self.history is None:
            return []
        signals = extract_signals(self.history.ticks(self.window_s))
        if signals is None:
            return []
        state = self._state()
        now = self.clock()
        applied: List[Decision] = []
        for policy in self.policies:
            for decision in policy.propose(signals, state):
                key = (decision.policy, decision.target)
                last = self._last_applied.get(key)
                if last is not None and now - last < self.dwell_s:
                    continue
                if self._apply(decision, now):
                    self._last_applied[key] = now
                    applied.append(decision)
                    # Refresh so later policies in the same tick see the
                    # change (e.g. the replica map a reassign relies on).
                    state = self._state()
        return applied

    def _state(self) -> ControlState:
        scheduler = self.scheduler
        pool = self.pool
        state = ControlState()
        if scheduler is not None:
            state.window_s = scheduler.window_s
        if pool is not None:
            state.num_shards = getattr(pool, "num_shards", 1)
            state.backend = getattr(pool, "backend", "thread")
            replication_map = getattr(pool, "replication_map", None)
            if replication_map is not None:
                state.replication = replication_map()
            depths = getattr(pool, "depths", None)
            if depths is not None:
                state.depths = list(depths())
            placements = getattr(pool, "placements", None)
            if placements is not None:
                state.placements = placements()
        return state

    def _apply(self, decision: Decision, now: float) -> bool:
        """Actuate one decision; audit the outcome either way."""
        try:
            if decision.action == "set_window":
                if self.scheduler is None:
                    return False
                self.scheduler.set_batch_window(float(decision.after))
            elif decision.action == "add_replica":
                if self.pool is None:
                    return False
                self.pool.add_replica(decision.target)
            elif decision.action == "remove_replica":
                if self.pool is None:
                    return False
                self.pool.remove_replica(decision.target)
            elif decision.action == "reassign":
                reassign = getattr(self.pool, "reassign_family", None)
                if reassign is None:
                    return False  # thread pools have no sticky placement
                reassign(decision.target)
            else:
                return False
        except Exception as exc:  # noqa: BLE001 — audit, don't crash
            self._record(decision, now, error=type(exc).__name__)
            return False
        self._record(decision, now)
        if self.metrics is not None:
            self.metrics.observe_control_decision(decision.policy)
        return True

    def _record(
        self, decision: Decision, now: float, error: Optional[str] = None
    ) -> None:
        entry = decision.to_dict()
        entry["t"] = now
        if error is not None:
            entry["error"] = error
        with self._audit_lock:
            if error is None:
                self.decisions_applied += 1
            else:
                self.decisions_failed += 1
            self._audit.append(entry)

    # ------------------------------------------------------------------
    # request path + restart hook
    # ------------------------------------------------------------------
    def admit(self, tenant: Optional[str], queue_depth: int = 0) -> None:
        """The transport's one admission gate (no-op without a
        configured :class:`AdmissionController`)."""
        if self.admission is not None:
            self.admission.admit(tenant, queue_depth)

    def _on_worker_restart(self, index: int) -> None:
        """Placement-policy routing for dead-worker restarts.

        The restarted worker lost every cursor it held; un-sticking its
        families lets their next dispatch re-place least-loaded (and
        re-seed warm from the parent mirror) instead of returning to
        the same index by default.
        """
        pool = self.pool
        unstick = getattr(pool, "unstick_worker", None)
        if unstick is None:
            return
        dropped = unstick(index)
        self._record(
            Decision(
                policy="placement",
                action="unstick_worker",
                target=f"worker:{index}",
                before=len(dropped),
                after=0,
                reason=(
                    "worker restarted; its families re-place "
                    "least-loaded on next dispatch"
                ),
            ),
            self.clock(),
        )
        if self.metrics is not None:
            self.metrics.observe_control_decision("placement")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def audit(self) -> List[Dict[str, object]]:
        """The decision ring, oldest first (bounded, defensive copy)."""
        with self._audit_lock:
            return [dict(entry) for entry in self._audit]

    def document(self) -> Dict[str, object]:
        """The ``/control.json`` document (also the dashboard panel's)."""
        scheduler = self.scheduler
        pool = self.pool
        doc: Dict[str, object] = {
            "running": self.running,
            "interval_s": self.interval_s,
            "window_s": self.window_s,
            "dwell_s": self.dwell_s,
            "policies": [
                getattr(policy, "name", type(policy).__name__)
                for policy in self.policies
            ],
            "ticks": self.ticks,
            "decisions_applied": self.decisions_applied,
            "decisions_failed": self.decisions_failed,
            "decisions": self.audit(),
        }
        if scheduler is not None:
            doc["batch_window_ms"] = scheduler.window_s * 1000.0
        if pool is not None:
            doc["backend"] = getattr(pool, "backend", "thread")
            replication_map = getattr(pool, "replication_map", None)
            if replication_map is not None:
                doc["replication"] = replication_map()
            placements = getattr(pool, "placements", None)
            if placements is not None:
                doc["placements"] = placements()
        doc["admission"] = (
            self.admission.describe() if self.admission is not None else None
        )
        return doc
