"""repro.control — the adaptive control plane (ISSUE 10).

Closes the feedback loop the observability tiers opened: windowed
signals out of :class:`~repro.obs.history.MetricsHistory`
(:mod:`~repro.control.signals`), pure decision policies with hysteresis
(:mod:`~repro.control.policies`), a periodic controller actuating the
serving tiers' new runtime-mutation surfaces
(:mod:`~repro.control.controller`), and request-path per-tenant
admission control (:mod:`~repro.control.admission`).  Off by default:
``repro serve --adaptive`` or ``ReproServer(controller=...)`` opts in.
"""

from .admission import AdmissionController, TokenBucket
from .controller import AdaptiveController, default_policies
from .policies import (
    BatchWindowPolicy,
    ControlState,
    Decision,
    PlacementPolicy,
    ReplicaPolicy,
)
from .signals import ControlSignals, FamilySignal, extract_signals

__all__ = [
    "AdaptiveController",
    "AdmissionController",
    "TokenBucket",
    "BatchWindowPolicy",
    "ReplicaPolicy",
    "PlacementPolicy",
    "ControlState",
    "Decision",
    "ControlSignals",
    "FamilySignal",
    "extract_signals",
    "default_policies",
]
