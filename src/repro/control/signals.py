"""Windowed control signals derived from :class:`MetricsHistory` ticks.

The controller never reads raw counters: every signal here is a
**windowed delta** between the oldest and newest tick of the window the
caller passes in (usually ``history.ticks(window_s)``), divided by the
*real* elapsed time between them.  That inherits the history ring's
robustness properties wholesale:

* **ring wrap** — ticks carry absolute cumulative counters, so a window
  whose older half fell out of the ring still yields exact deltas over
  the ticks that remain;
* **collector restart / gaps** — rates divide by the observed ``dt``
  between the two ticks, never by a nominal interval;
* **counter reset** — a metrics sink swapped mid-flight makes deltas go
  negative for one window; every delta is clamped at zero (mirroring
  ``history._derive_pair``), so a reset reads as one quiet window, not
  a policy-confusing negative rate.

Everything in this module is a pure function of the tick list — no
clocks, no locks, no I/O — which is what makes the satellite's
FakeClock tests possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

__all__ = ["FamilySignal", "ControlSignals", "extract_signals"]


@dataclass(frozen=True)
class FamilySignal:
    """One family's windowed view: demand plus latency trajectory."""

    label: str
    graph: str
    #: Queries served over the window (delta of the family's cumulative
    #: count; a family that entered the table mid-window contributes its
    #: full count, which is exactly its windowed demand).
    queries: int
    #: Newest p95 over the family's reservoir (``None`` until sampled).
    p95_ms: Optional[float]
    #: The p95 at the window's start — the regression baseline.
    p95_start_ms: Optional[float]


@dataclass(frozen=True)
class ControlSignals:
    """Everything the policies read, for one control window."""

    t: float
    window_s: float
    qps: float
    #: Windowed coalesce rate: 1 - batches/batched_queries over the
    #: window's deltas (0.0 when no batched queries this window).
    coalesce_rate: float
    #: Scheduler pending depth at the newest tick.
    queue_depth: int
    #: Max pending depth seen at any tick of the window.
    queue_depth_peak: int
    #: Idle-replica steals per second over the window — direct evidence
    #: that replication is absorbing load (or sitting unused).
    replica_idle_per_s: float
    #: Cluster worker depths at the newest tick (``{}`` for threads).
    worker_depths: Dict[str, int] = field(default_factory=dict)
    families: Dict[str, FamilySignal] = field(default_factory=dict)
    #: Windowed per-graph query deltas from the ticks' untruncated
    #: ``graphs`` counters (``{}`` when the sink predates them).
    graphs: Dict[str, int] = field(default_factory=dict)
    #: Pooled p95 at the newest tick.
    p95_ms: Optional[float] = None

    def graph_demand(self) -> Dict[str, int]:
        """Windowed query counts aggregated per graph.

        Prefers the dedicated per-graph counters: the family table in
        each tick is truncated to the busiest rows, so summing family
        deltas undercounts (or misses entirely) a graph whose demand is
        spread across many short-lived families.  Falls back to the
        family aggregation only when the sink provides no per-graph
        counters at all.
        """
        if self.graphs:
            return {g: q for g, q in self.graphs.items() if q > 0}
        out: Dict[str, int] = {}
        for signal in self.families.values():
            out[signal.graph] = out.get(signal.graph, 0) + signal.queries
        return out


def _delta(cur: Mapping[str, Any], prev: Mapping[str, Any], key: str) -> int:
    """Non-negative counter delta (resets clamp to zero)."""
    return max(0, int(cur.get(key, 0)) - int(prev.get(key, 0)))


def _family_graph(label: str) -> str:
    """The graph component of a :func:`family_label` string."""
    return label.split("|", 1)[0]


def _family_signals(
    cur: Mapping[str, Any], prev: Mapping[str, Any]
) -> Dict[str, FamilySignal]:
    newest: Mapping[str, Any] = cur.get("families") or {}
    oldest: Mapping[str, Any] = prev.get("families") or {}
    out: Dict[str, FamilySignal] = {}
    for label, row in newest.items():
        start = oldest.get(label) or {}
        queries = max(
            0, int(row.get("queries", 0)) - int(start.get("queries", 0))
        )
        out[label] = FamilySignal(
            label=label,
            graph=_family_graph(label),
            queries=queries,
            p95_ms=row.get("p95_ms"),
            p95_start_ms=start.get("p95_ms"),
        )
    return out


def extract_signals(
    ticks: Sequence[Mapping[str, Any]]
) -> Optional[ControlSignals]:
    """Derive one window's :class:`ControlSignals` from history ticks.

    Returns ``None`` when the window holds fewer than two ticks or zero
    elapsed time — the controller treats that as "no evidence yet" and
    makes no decisions, which is the safe default at boot and right
    after a collector restart.
    """
    if len(ticks) < 2:
        return None
    first, last = ticks[0], ticks[-1]
    dt = float(last.get("t", 0.0)) - float(first.get("t", 0.0))
    if dt <= 0:
        return None
    d_queries = _delta(last, first, "queries_served")
    d_batches = _delta(last, first, "batches")
    d_batched = _delta(last, first, "batched_queries")
    d_idle = _delta(last, first, "replica_idle_dispatches")
    first_graphs: Mapping[str, Any] = first.get("graphs") or {}
    last_graphs: Mapping[str, Any] = last.get("graphs") or {}
    graphs = {
        name: max(0, int(count) - int(first_graphs.get(name, 0)))
        for name, count in last_graphs.items()
    }
    coalesce = 1.0 - (d_batches / d_batched) if d_batched else 0.0
    latency = last.get("latency_overall_ms") or {}
    return ControlSignals(
        t=float(last["t"]),
        window_s=dt,
        qps=d_queries / dt,
        coalesce_rate=max(0.0, coalesce),
        queue_depth=int(last.get("queue_depth", 0)),
        queue_depth_peak=max(
            int(tick.get("queue_depth", 0)) for tick in ticks
        ),
        replica_idle_per_s=d_idle / dt,
        worker_depths=dict(last.get("workers") or {}),
        families=_family_signals(last, first),
        graphs=graphs,
        p95_ms=latency.get("p95"),
    )
