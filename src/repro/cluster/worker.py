"""Cluster worker — a long-lived process executing QuerySpec jobs.

One worker is one OS process holding the *stateful* half of the serving
contract: for every :class:`~repro.api.spec.FamilyKey` routed to it, the
live :class:`~repro.core.progressive.ProgressiveCursor` sits **here**,
inside a worker-local :class:`~repro.service.cache.ResultCache` driven
by a worker-local :class:`~repro.service.engine.QueryEngine`.  That is
what keeps coalesced progressive advances one-pass under the process
backend: a family's ``extend_to`` continuation lands on the worker that
already peeled its prefix and resumes the cursor — never a re-peel.

The protocol over the duplex pipe is a tagged tuple per message:

* ``("attach_shm", SegmentHandle)`` — map a published segment and
  rebuild the graph zero-copy over it (:func:`~repro.cluster.segment.
  attach_graph`);
* ``("attach_pickle", name, version, graph)`` — the fallback path for
  platforms without shared memory: the whole graph travels through the
  pipe once per worker;
* ``("apply_delta", name, target_version, batches)`` — catch an
  attached graph up to ``target_version`` by replaying the registry's
  delta chain over the worker's current generation (``repro.live``):
  the shared-memory mapping stays open — untouched adjacency rows keep
  aliasing the segment — and only the touched rows are worker-local,
  so a mutation batch costs O(touched) per worker instead of a full
  re-attach;
* ``("query", spec, seed[, trace_ref])`` — execute one spec; ``seed``
  optionally carries parent-cache views to pre-populate a family this
  worker has never seen (the restart re-seed path), and is ignored when
  the worker already holds the family; ``trace_ref`` is an optional
  ``(trace_id, span_id)`` pair — when present, the worker roots a
  remote ``worker`` span under it and ships its finished spans back as
  plain dicts so the parent trace stitches across the process edge
  (both sides are length-tolerant: a 3-tuple query message and a
  2-tuple result reply remain valid);
* ``("ping",)`` — health probe, answers worker statistics;
* ``("stop",)`` — graceful exit.

Replies are ``("ok", payload)`` / ``("result", QueryResult[, spans])``
/ ``("pong", stats)`` / ``("error", kind, message)``.  Errors are
flattened to strings — exception objects with custom constructors do
not survive pickling reliably, and the parent re-raises them as
:class:`~repro.errors.ClusterWorkerError` anyway.

Spawn safety: :func:`worker_main` is a plain module-level function and
the module imports nothing platform-conditional at import time, so the
``spawn`` start method (macOS/Windows default, ``REPRO_MP_START=spawn``
in CI) re-imports it cleanly in a fresh interpreter.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..api.spec import QuerySpec
from ..errors import ReproError, UnknownGraphError
from ..graph.delta import apply_batch
from ..obs.trace import Tracer, use_span
from ..service.cache import CacheKey, ProgressiveEntry, ResultCache, StaticEntry
from ..service.engine import QueryEngine, progressive_cursor_factory
from ..service.registry import GraphHandle
from .segment import SegmentHandle, attach_graph, close_attachment

__all__ = ["worker_main", "WorkerConfig"]


class WorkerConfig:
    """Plain picklable knobs shipped to :func:`worker_main` at start.

    ``kernel_env`` pins ``REPRO_KERNEL`` in the child so kernel
    resolution (and with it every :meth:`~repro.api.spec.QuerySpec.
    cache_key`) agrees byte-for-byte with the parent even under
    ``spawn``, where the child would otherwise re-read a possibly
    changed environment.
    """

    __slots__ = ("worker_id", "cache_size", "max_cached_k", "kernel_env")

    def __init__(
        self,
        worker_id: int,
        cache_size: int = 128,
        max_cached_k: Optional[int] = None,
        kernel_env: Optional[str] = None,
    ) -> None:
        self.worker_id = worker_id
        self.cache_size = cache_size
        self.max_cached_k = max_cached_k
        self.kernel_env = kernel_env

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class _WorkerRegistry:
    """The worker's view of the graph registry: attached graphs only.

    Versions are the *parent's* registry versions (carried by the
    attach message), so the worker's cache keys — and the
    ``graph_version`` provenance on every result — are identical to
    what the in-process engine would have produced.
    """

    def __init__(self) -> None:
        self._handles: Dict[str, GraphHandle] = {}
        self._attachments: Dict[str, object] = {}  # name -> shm (if any)

    def install(self, name: str, version: int, graph, shm=None) -> None:
        self._close(self._attachments.pop(name, None))
        self._handles[name] = GraphHandle(name, version, graph)
        if shm is not None:
            self._attachments[name] = shm

    def replace_graph(self, name: str, version: int, graph) -> None:
        """Swap the handle to a delta-derived generation.

        Unlike :meth:`install` the shared-memory attachment (if any)
        stays open: the new graph's untouched rows still alias the
        mapped segment buffers.
        """
        if name not in self._handles:
            raise UnknownGraphError(name, available=self._handles)
        self._handles[name] = GraphHandle(name, version, graph)

    def drop(self, name: str) -> None:
        self._handles.pop(name, None)
        self._close(self._attachments.pop(name, None))

    @staticmethod
    def _close(shm) -> None:
        if shm is not None:
            close_attachment(shm)

    def get(self, name: str) -> GraphHandle:
        handle = self._handles.get(name)
        if handle is None:
            raise UnknownGraphError(name, available=self._handles)
        return handle

    def names(self):
        return list(self._handles)

    def close_all(self) -> None:
        for name in list(self._attachments):
            self.drop(name)
        self._handles.clear()


def _install_seed(
    cache: ResultCache, registry: _WorkerRegistry, spec: QuerySpec, seed
) -> bool:
    """Pre-populate a family from parent-cache views (restart re-seed).

    ``seed`` is ``("progressive", views, exhausted)`` or
    ``("static", views, complete)``.  Ignored when the worker already
    holds an entry for the key — the live cursor always wins over a
    snapshot of it.
    """
    try:
        handle = registry.get(spec.graph)
    except UnknownGraphError:
        return False
    key = CacheKey.for_spec(spec, handle.version)
    if cache.get(key) is not None:
        return False
    kind, views, flag = seed
    if kind == "progressive":
        family = spec.cache_key()
        cache.put(
            key,
            ProgressiveEntry(
                cursor_factory=progressive_cursor_factory(
                    handle.graph, family.gamma, family.delta, kernel=family.kernel
                ),
                views=views,
                exhausted=bool(flag),
                max_cached_k=cache.max_cached_k,
            ),
        )
    elif kind == "static":
        cache.put(
            key, StaticEntry.capped(tuple(views), bool(flag), cache.max_cached_k)
        )
    else:
        return False
    return True


def worker_main(conn, config: WorkerConfig) -> None:
    """The worker process entry point: serve jobs until ``stop``/EOF."""
    if config.kernel_env is not None:
        os.environ["REPRO_KERNEL"] = config.kernel_env
    registry = _WorkerRegistry()
    cache = ResultCache(config.cache_size, max_cached_k=config.max_cached_k)
    # sample=0: the worker never originates traces — it only roots
    # remote spans under a parent-supplied trace_ref, and those are
    # shipped back rather than stored locally.
    tracer = Tracer(sample=0.0)
    engine = QueryEngine(registry, cache=cache, metrics=None, tracer=tracer)
    jobs = attaches = 0
    try:
        while True:
            try:
                message: Tuple = conn.recv()
            except (EOFError, OSError):
                break  # parent went away: exit quietly
            try:
                tag = message[0]
                if tag == "query":
                    spec, seed = message[1], message[2]
                    trace_ref = message[3] if len(message) > 3 else None
                    if seed is not None:
                        _install_seed(cache, registry, spec, seed)
                    if trace_ref is None:
                        result = engine.execute(spec)
                        jobs += 1
                        conn.send(("result", result))
                    else:
                        wspan = tracer.start_remote(
                            trace_ref[0],
                            trace_ref[1],
                            "worker",
                            worker=config.worker_id,
                            pid=os.getpid(),
                        )
                        try:
                            with use_span(wspan):
                                result = engine.execute(spec)
                        except BaseException as exc:
                            tracer.finish_remote(
                                wspan, error=type(exc).__name__
                            )
                            raise
                        jobs += 1
                        payload = tracer.finish_remote(
                            wspan, source=result.source
                        )
                        conn.send(("result", result, payload))
                elif tag == "attach_shm":
                    segment: SegmentHandle = message[1]
                    graph, shm = attach_graph(segment)
                    registry.install(
                        segment.graph, segment.version, graph, shm
                    )
                    attaches += 1
                    conn.send(("ok", segment.graph))
                elif tag == "attach_pickle":
                    name, version, graph = message[1], message[2], message[3]
                    registry.install(name, version, graph)
                    attaches += 1
                    conn.send(("ok", name))
                elif tag == "apply_delta":
                    name, target_version, batches = (
                        message[1],
                        message[2],
                        message[3],
                    )
                    handle = registry.get(name)
                    graph = handle.graph
                    for batch in batches:
                        graph, _, _ = apply_batch(graph, batch)
                    registry.replace_graph(name, target_version, graph)
                    # Cursors walk the old generation; the parent
                    # re-seeds affected families from its scope-migrated
                    # mirror on the next dispatch.
                    cache.invalidate_graph(name)
                    attaches += 1
                    conn.send(("ok", (name, target_version)))
                elif tag == "detach":
                    registry.drop(message[1])
                    conn.send(("ok", message[1]))
                elif tag == "ping":
                    conn.send(
                        (
                            "pong",
                            {
                                "worker_id": config.worker_id,
                                "pid": os.getpid(),
                                "graphs": registry.names(),
                                "families": len(cache),
                                "jobs": jobs,
                                "attaches": attaches,
                            },
                        )
                    )
                elif tag == "stop":
                    conn.send(("ok", "bye"))
                    break
                else:
                    conn.send(("error", "protocol", f"unknown tag {tag!r}"))
            except ReproError as exc:
                conn.send(("error", type(exc).__name__, str(exc)))
            except Exception as exc:  # noqa: BLE001 — keep the worker alive
                conn.send(("error", type(exc).__name__, str(exc)))
    finally:
        registry.close_all()
        conn.close()
