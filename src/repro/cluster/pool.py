"""ClusterPool — multi-process shard execution with family affinity.

:class:`~repro.server.shards.ShardPool` keeps CPU work off the event
loop, but its shards are *threads*: under CPython's GIL, N shards
peeling N graphs still progress one bytecode at a time.  ClusterPool
promotes the same routing surface to worker **processes**:

* **family-affine dispatch** — work is routed by the spec's canonical
  :meth:`~repro.api.spec.QuerySpec.cache_key` (a
  :class:`~repro.api.spec.FamilyKey`), and the assignment is *sticky*:
  a progressive family always lands on the worker holding its live
  cursor, so coalesced ``extend_to`` advances stay one-pass exactly as
  they do in-process.  First placement prefers the least-loaded
  candidate among a graph's replicas; after that the cursor pins it.
* **shared-memory graphs** — each registered graph's CSR buffers are
  published once into a :mod:`~repro.cluster.segment` and every worker
  maps them zero-copy; platforms without shared memory fall back to
  pickling the graph down each worker's pipe once
  (``use_shared_memory=False`` forces the fallback for tests).
* **parent-side cache mirror** — every worker result is mirrored into
  the parent :class:`~repro.service.cache.ResultCache` as frozen views,
  so (a) repeat hits are served in-parent without IPC, (b) warm-start
  snapshots keep working unchanged regardless of backend, and (c) a
  **restarted** worker is re-seeded from the mirror: the first job of a
  family carries the cached views and the fresh worker's rebuilt
  cursor resumes from them instead of re-peeling from scratch.
* **health + drain** — dead workers are detected on dispatch (and by
  explicit :meth:`health_check` pings), restarted, and re-seeded;
  :meth:`shutdown` drains in-flight jobs, stops workers, and unlinks
  every published segment (``/dev/shm`` entries outlive processes, so
  shutdown is the hard backstop against leaks).

The pool's async surface is :meth:`execute_spec`, shared with
ShardPool, which is all the :class:`~repro.server.scheduler.
BatchScheduler` needs — backend selection is one constructor swap in
:func:`repro.server.shards.create_pool`.
"""

from __future__ import annotations

import asyncio
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..api.spec import FamilyKey, QuerySpec
from ..errors import ClusterWorkerError, ServiceError
from ..obs.trace import Span, Tracer, current_span, use_span
from ..service.cache import (
    CacheKey,
    ProgressiveEntry,
    ResultCache,
    StaticEntry,
)
from ..service.engine import QueryEngine, progressive_cursor_factory
from ..service.metrics import ServiceMetrics, family_label
from ..service.model import QueryResult
from ..service.registry import GraphHandle, GraphRegistry
from .segment import SegmentHandle, SegmentStore, mp_start_method, shared_memory_available
from .worker import WorkerConfig, worker_main

__all__ = ["ClusterPool"]


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "lock",
        "attached",
        "segments",
        "families",
        "depth",
        "dispatches",
        "restarts",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.attached: Dict[str, int] = {}  # graph name -> attached version
        #: graph name -> version of the *segment* this worker holds a
        #: store reference under.  Diverges from ``attached`` after a
        #: delta catch-up (the worker serves a newer logical version
        #: over the same mapped segment), so releases must key off this
        #: — releasing ``attached``'s version would leak the mapped
        #: segment and unlink one that is still in use.
        self.segments: Dict[str, int] = {}
        #: Families this worker is believed to hold cursor state for,
        #: LRU-ordered.  Bounded by the pool to the worker's own cache
        #: size: once the worker's LRU would have evicted a family, the
        #: parent forgets it too and re-sends the seed (which the
        #: worker ignores if it does still hold the entry) — without
        #: the bound the two views diverge and stale "held" marks
        #: suppress the re-seed forever.
        self.families: "OrderedDict[FamilyKey, bool]" = OrderedDict()
        self.depth = 0
        self.dispatches = 0
        self.restarts = 0

    @property
    def tag(self) -> str:
        return f"worker:{self.index}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ClusterPool:
    """Route :class:`QuerySpec` execution onto long-lived worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes.
    registry:
        The parent graph registry — source of handles, versions, and the
        build hook that publishes segments eagerly.
    cache:
        Optional parent result cache for the mirror / re-seed / warm-
        start contract (strongly recommended in servers).
    metrics:
        Optional shared metrics sink (per-worker dispatch counts and
        queue depths, segment attach counts, restarts, ``by_backend``).
    replication:
        ``{graph: copies}`` — candidate-worker fan-out for a graph's
        families at first placement (parity with ShardPool).
    use_shared_memory:
        Force the segment path on/off; ``None`` probes the platform.
    start_method:
        multiprocessing start method; ``None`` honours
        ``$REPRO_MP_START`` and then the platform default.
    job_timeout:
        Seconds a single worker job may run before the pool declares the
        worker wedged and restarts it.
    """

    def __init__(
        self,
        workers: int,
        registry: GraphRegistry,
        *,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        replication: Optional[Mapping[str, int]] = None,
        use_shared_memory: Optional[bool] = None,
        start_method: Optional[str] = None,
        worker_cache_size: int = 128,
        job_timeout: float = 300.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if registry is None:
            raise ValueError("ClusterPool requires a graph registry")
        self.registry = registry
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.job_timeout = job_timeout
        self.worker_cache_size = worker_cache_size
        self.use_shared_memory = (
            shared_memory_available()
            if use_shared_memory is None
            else use_shared_memory
        )
        self.start_method = (
            start_method if start_method is not None else mp_start_method()
        )
        self.store = SegmentStore()
        self._workers = [_Worker(i) for i in range(workers)]
        self._replication: Dict[str, int] = {}
        # Sticky family placements, LRU-bounded: an assignment evicted
        # here has been idle long enough that the worker-side cursor is
        # LRU-gone too, and the parent mirror re-seeds wherever the
        # family lands next.
        self._family_worker: "OrderedDict[FamilyKey, int]" = OrderedDict()
        self._max_routed_families = 4096
        self._route_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._published: Dict[str, Tuple[int, SegmentHandle]] = {}
        self._started = False
        self._shut_down = False
        self._hook_registered = False
        #: Optional callback fired after a dead/wedged worker has been
        #: replaced, with the worker index.  ``None`` (the default)
        #: keeps the historical behaviour: placements survive restarts
        #: and the re-seed sends every family straight back to the same
        #: index.  The adaptive controller installs a hook that routes
        #: the restart through its placement policy instead.
        self.placement_hook = None
        for name, copies in dict(replication or {}).items():
            self.replicate(name, copies)

    # ------------------------------------------------------------------
    # surface parity with ShardPool
    # ------------------------------------------------------------------
    backend = "process"

    @property
    def num_shards(self) -> int:
        return len(self._workers)

    def replicate(self, graph: str, copies: int) -> None:
        """Fan a graph's *new* families over ``copies`` candidate workers."""
        if not 1 <= copies <= self.num_shards:
            raise ValueError(
                f"replication for {graph!r} must be in [1, {self.num_shards}]"
            )
        self._replication[graph] = copies

    def replication_of(self, graph: str) -> int:
        return self._replication.get(graph, 1)

    def replication_map(self) -> Dict[str, int]:
        """The explicit replication table (graphs at 1 copy are elided)."""
        with self._route_lock:
            return dict(self._replication)

    def add_replica(self, graph: str) -> int:
        """Widen ``graph``'s candidate fan-out by one worker.

        Affects *first placements* only: families already stuck to a
        worker keep their cursor where it lives.  The controller pairs
        this with :meth:`reassign_family` when existing placements are
        the problem, not just future ones.
        """
        with self._route_lock:
            copies = min(self._replication.get(graph, 1) + 1, self.num_shards)
            self._replication[graph] = copies
            return copies

    def remove_replica(self, graph: str) -> int:
        """Shrink ``graph``'s candidate fan-out by one worker.

        Drain-before-remove: the worker process itself stays up (it may
        hold other graphs' cursors), so in-flight jobs finish normally.
        Families of ``graph`` stuck *outside* the narrowed candidate set
        are un-stuck here; their next dispatch re-places them among the
        remaining candidates and the parent-mirror seed resumes the
        cursor warm instead of re-peeling.
        """
        with self._route_lock:
            copies = max(1, self._replication.get(graph, 1) - 1)
            self._replication[graph] = copies
            for family in [
                f for f in self._family_worker if f.graph == graph
            ]:
                base = self.home_worker(family)
                kept = {
                    (base + i) % self.num_shards for i in range(copies)
                }
                if self._family_worker[family] not in kept:
                    del self._family_worker[family]
            return copies

    def placements(self) -> Dict[str, str]:
        """Current sticky placements: ``{family label: worker tag}``."""
        with self._route_lock:
            return {
                family_label(family): self._workers[index].tag
                for family, index in self._family_worker.items()
            }

    def reassign_family(self, label: str) -> Optional[str]:
        """Un-stick the family with this label; returns its old worker tag.

        The migration actuator: dropping the placement makes the next
        dispatch re-place the family least-loaded-first among its
        replica candidates, where the parent-mirror seed message rebuilds
        the cursor from the already-served views — the cursor *migrates*
        rather than re-peels.  Returns ``None`` for unknown labels (the
        placement may have been LRU-evicted since the policy observed it).
        """
        with self._route_lock:
            for family, index in list(self._family_worker.items()):
                if family_label(family) == label:
                    del self._family_worker[family]
                    return self._workers[index].tag
        return None

    def unstick_worker(self, index: int) -> List[str]:
        """Drop every placement pinned to worker ``index``; returns labels.

        Used by the controller's restart hook: a restarted worker lost
        its cursors anyway, so letting its families re-place least-loaded
        (instead of marching straight back to the same index) costs
        nothing and un-sticks the dead-worker placement edge.
        """
        with self._route_lock:
            dropped = [
                family
                for family, worker_index in self._family_worker.items()
                if worker_index == index
            ]
            for family in dropped:
                del self._family_worker[family]
            return [family_label(family) for family in dropped]

    def depths(self) -> List[int]:
        """Queued + in-flight jobs per worker (parent view)."""
        return [worker.depth for worker in self._workers]

    def liveness(self) -> Dict[str, bool]:
        """``{worker tag: alive}`` — a pure probe, unlike
        :meth:`health_check`, which restarts what it finds dead.
        Readiness checks call this so probing never mutates the pool.
        """
        return {worker.tag: worker.alive for worker in self._workers}

    @staticmethod
    def available(start_method: Optional[str] = None) -> bool:
        """True when worker processes can actually be created here."""
        try:
            import multiprocessing

            context = multiprocessing.get_context(
                start_method or mp_start_method()
            )
            parent, child = context.Pipe()
            parent.close()
            child.close()
        except (ImportError, OSError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_workers(self) -> None:
        """Spawn all worker processes (idempotent; also done lazily)."""
        if self._shut_down:
            raise RuntimeError("cluster pool is shut down")
        if self._started:
            return
        self._started = True
        if not self._hook_registered:
            # Publish eagerly whenever the registry (re)builds a graph,
            # right next to its prebuild_csr step: workers attaching
            # later find the segment already staged.
            add_hook = getattr(self.registry, "add_build_hook", None)
            if add_hook is not None:
                add_hook(self._on_graph_built)
                self._hook_registered = True
        for worker in self._workers:
            with worker.lock:
                if worker.process is None:
                    self._spawn(worker)

    def _spawn(self, worker: _Worker) -> None:
        """(Re)create one worker process (``worker.lock`` held)."""
        import multiprocessing
        import os

        if self._shut_down:
            # A shutdown racing an in-flight dispatch must never win a
            # fresh process (or re-publish a segment the store already
            # unlinked): fail the dispatch with a catchable service
            # error instead (the transport renders ReproErrors as clean
            # `error:` lines even while tearing down).
            raise ClusterWorkerError(
                worker.tag, "ShutDown", "cluster pool is shut down"
            )
        context = multiprocessing.get_context(self.start_method)
        parent_conn, child_conn = context.Pipe()
        config = WorkerConfig(
            worker_id=worker.index,
            cache_size=self.worker_cache_size,
            max_cached_k=self.cache.max_cached_k if self.cache is not None else None,
            kernel_env=os.environ.get("REPRO_KERNEL"),
        )
        process = context.Process(
            target=worker_main,
            args=(child_conn, config),
            name=f"repro-cluster-{worker.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end: EOF detection works
        worker.process = process
        worker.conn = parent_conn
        worker.attached = {}
        worker.segments = {}
        worker.families = OrderedDict()

    def warm(self, graph: str) -> None:
        """Attach ``graph`` on every worker, eagerly.

        Serving deployments call this at boot (and benchmarks before
        timing) so the one-time costs — segment publication, worker
        attach, per-worker adjacency-list rebuild — are paid before the
        first query instead of inside its latency.
        """
        self.start_workers()
        handle = self.registry.get(graph)
        for worker in self._workers:
            with worker.lock:
                if worker.process is None:
                    self._spawn(worker)
                self._ensure_attached(worker, handle)

    def _restart(self, worker: _Worker) -> None:
        """Replace a dead/wedged worker (``worker.lock`` held)."""
        process, conn = worker.process, worker.conn
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if process is not None:
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(timeout=2.0)
        if self.use_shared_memory:
            # The dead worker's segment references die with it.  Keyed
            # off ``segments``, not ``attached``: after a delta catch-up
            # the logical version is newer than the mapped segment's.
            for name, version in worker.segments.items():
                self.store.release(name, version)
        worker.restarts += 1
        if self.metrics is not None:
            self.metrics.observe_worker_restart()
        self._spawn(worker)
        hook = self.placement_hook
        if hook is not None:
            # After the respawn, so the hook observes a live worker.
            # Only ``worker.lock`` is held here; hooks may take the
            # route lock (``unstick_worker`` does) without deadlock.
            try:
                hook(worker.index)
            except Exception:  # noqa: BLE001 — advisory, never fatal
                pass

    def health_check(self) -> Dict[str, object]:
        """Ping every worker; restart the dead.  Returns a status dict."""
        statuses: Dict[str, object] = {}
        restarted: List[str] = []
        for worker in self._workers:
            if worker.process is None:
                statuses[worker.tag] = "not started"
                continue
            if not worker.alive:
                with worker.lock:
                    if not worker.alive:
                        self._restart(worker)
                        restarted.append(worker.tag)
                statuses[worker.tag] = "restarted"
                continue
            if not worker.lock.acquire(blocking=False):
                statuses[worker.tag] = "busy"  # mid-job is healthy
                continue
            try:
                reply = self._roundtrip(worker, ("ping",), timeout=5.0)
                statuses[worker.tag] = reply[1]
            except (OSError, EOFError, ServiceError):
                self._restart(worker)
                restarted.append(worker.tag)
                statuses[worker.tag] = "restarted"
            finally:
                worker.lock.release()
        statuses["restarted"] = restarted
        return statuses

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain: stop workers, then unlink every segment."""
        if self._shut_down:
            return
        self._shut_down = True
        remove_hook = getattr(self.registry, "remove_build_hook", None)
        if self._hook_registered and remove_hook is not None:
            remove_hook(self._on_graph_built)
        for worker in self._workers:
            if worker.process is None:
                continue
            # Draining = taking the lock: an in-flight job finishes its
            # roundtrip under the lock before we can ask for the stop.
            acquired = worker.lock.acquire(timeout=10.0 if wait else 0.2)
            if acquired:
                try:
                    if worker.alive and worker.conn is not None:
                        try:
                            worker.conn.send(("stop",))
                            worker.conn.poll(1.0 if wait else 0.1)
                        except (OSError, BrokenPipeError):
                            pass
                    if worker.conn is not None:
                        try:
                            worker.conn.close()
                        except OSError:  # pragma: no cover - closed
                            pass
                finally:
                    worker.lock.release()
            else:
                # A dispatcher thread still owns the pipe: touching it
                # here (send/close under its poll) is a fd race.  Kill
                # the process instead — the dispatcher observes the
                # death, and its restart attempt fails cleanly on the
                # _spawn shutdown guard.
                worker.process.terminate()
            worker.process.join(timeout=5.0 if wait else 1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
        self.store.release_all()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def _family_bytes(family: FamilyKey) -> bytes:
        return (
            f"{family.graph}|{family.gamma}|{family.algorithm}"
            f"|{family.delta!r}|{family.kernel}"
        ).encode("utf-8")

    def home_worker(self, family: FamilyKey) -> int:
        """The family's base worker (stable CRC32, before replication)."""
        return zlib.crc32(self._family_bytes(family)) % self.num_shards

    def route(self, family: FamilyKey) -> int:
        """The worker index serving ``family`` — sticky after placement.

        First placement picks the least-loaded worker among the family
        graph's replica candidates; every later dispatch reuses it, so
        the worker holding the family's cursor keeps it.
        """
        with self._route_lock:
            index = self._family_worker.get(family)
            if index is not None:
                self._family_worker.move_to_end(family)
                return index
            base = self.home_worker(family)
            copies = min(
                self._replication.get(family.graph, 1), self.num_shards
            )
            candidates = [(base + i) % self.num_shards for i in range(copies)]
            index = min(
                candidates, key=lambda i: (self._workers[i].depth, candidates.index(i))
            )
            self._family_worker[family] = index
            while len(self._family_worker) > self._max_routed_families:
                self._family_worker.popitem(last=False)
            return index

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def execute_spec(
        self,
        engine: QueryEngine,
        spec: QuerySpec,
        span: Optional[Span] = None,
    ) -> QueryResult:
        """Serve one spec off the event loop (the scheduler's entry)."""
        return await asyncio.get_running_loop().run_in_executor(
            None, self._execute_with_span, engine, spec, span
        )

    def _execute_with_span(
        self, engine: QueryEngine, spec: QuerySpec, span: Optional[Span]
    ) -> QueryResult:
        """Re-enter the upstream span on the executor thread
        (``run_in_executor`` does not copy contextvars; ``None`` maps to
        NO_TRACE so an untraced server query never re-mints a root)."""
        with use_span(span):
            return self.execute(engine, spec)

    def execute(self, engine: QueryEngine, spec: QuerySpec) -> QueryResult:
        """Serve one spec: parent cache slice, or a worker roundtrip."""
        if self._shut_down:
            raise RuntimeError("cluster pool is shut down")
        self.start_workers()
        handle = self.registry.get(spec.graph)
        key = CacheKey.for_spec(spec, handle.version)
        if self._cache_covers(key, spec.k):
            # A pure slice of mirrored views: serve in-parent, no IPC.
            # (engine.execute cannot compute here — the entry covers k.)
            return engine.execute(spec)
        family = spec.cache_key()
        worker = self._workers[self.route(family)]
        tracer = self.tracer
        parent = current_span()
        dspan = (
            tracer.start_span("cluster_dispatch", parent, worker=worker.tag)
            if tracer is not None and parent is not None
            else None
        )
        # The (trace_id, span_id) pair travels down the pipe; the worker
        # roots its own spans under it and ships them back as plain
        # dicts, so the parent trace stitches across the process edge.
        trace_ref = (
            (dspan.trace_id, dspan.span_id) if dspan is not None else None
        )
        started = time.perf_counter()
        # depth is shared by every executor thread dispatching to this
        # worker; bare += would lose updates and skew route()'s
        # least-loaded placement forever.
        with self._route_lock:
            worker.depth += 1
            depth = worker.depth
        if self.metrics is not None:
            self.metrics.observe_cluster_depth(worker.tag, depth)
        try:
            reply = self._dispatch(worker, handle, spec, family, key, trace_ref)
        except Exception as exc:  # noqa: BLE001 — close the span, re-raise
            if dspan is not None:
                tracer.end(dspan, error=type(exc).__name__)
            raise
        finally:
            with self._route_lock:
                worker.depth -= 1
                depth = worker.depth
            if self.metrics is not None:
                self.metrics.observe_cluster_depth(worker.tag, depth)
        if reply[0] == "error":
            if self.metrics is not None:
                self.metrics.observe_error(kind=reply[1])
            if dspan is not None:
                tracer.end(dspan, error=reply[1])
            raise ClusterWorkerError(worker.tag, reply[1], reply[2])
        result: QueryResult = reply[1]
        if dspan is not None:
            # Length-tolerant: pre-obs workers reply with 2-tuples.
            tracer.attach(dspan, reply[2] if len(reply) > 2 else None)
            tracer.end(dspan, source=result.source)
        worker.dispatches += 1
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._mirror(key, handle, result)
        result = replace(result, worker=worker.tag)
        if self.metrics is not None:
            self.metrics.observe_query(
                result.algorithm,
                elapsed_ms,
                result.source,
                kernel=result.kernel,
                family=family,
                backend="process",
                worker=worker.tag,
            )
        return result

    def _dispatch(
        self,
        worker: _Worker,
        handle: GraphHandle,
        spec: QuerySpec,
        family: FamilyKey,
        key: CacheKey,
        trace_ref: Optional[Tuple[str, str]] = None,
    ):
        """One locked worker roundtrip, restarting + retrying once."""
        for attempt in (0, 1):
            with worker.lock:
                try:
                    if worker.process is None:
                        self._spawn(worker)  # lazy first start, not a restart
                    elif not worker.alive:
                        self._restart(worker)
                    self._ensure_attached(worker, handle)
                    seed = (
                        self._seed_payload(key)
                        if family not in worker.families
                        else None
                    )
                    reply = self._roundtrip(
                        worker,
                        ("query", spec, seed, trace_ref),
                        timeout=self.job_timeout,
                    )
                    if reply[0] == "result":
                        # Error replies create no worker-side entry:
                        # marking the family held would skip the seed
                        # on the next attempt.  Successful ones refresh
                        # the LRU slot, trimmed to the worker's own
                        # cache size so "held" marks expire in step
                        # with the worker's actual evictions.
                        worker.families[family] = True
                        worker.families.move_to_end(family)
                        while len(worker.families) > self.worker_cache_size:
                            worker.families.popitem(last=False)
                    return reply
                except (OSError, EOFError, BrokenPipeError) as exc:
                    # The worker died (or wedged past the deadline) mid-
                    # job: restart it; the retry re-attaches and re-seeds
                    # from the parent mirror, losing no served state.
                    self._restart(worker)
                    if attempt:
                        raise ClusterWorkerError(
                            worker.tag, type(exc).__name__, str(exc)
                        ) from exc

    def _roundtrip(self, worker: _Worker, message, timeout: float):
        """Blocking send/recv on the worker pipe (``worker.lock`` held)."""
        conn = worker.conn
        if conn is None:
            raise EOFError("worker has no pipe")
        conn.send(message)
        deadline = time.monotonic() + timeout
        while not conn.poll(0.05):
            if not worker.alive:
                raise EOFError("worker process died mid-job")
            if time.monotonic() >= deadline:
                raise EOFError(
                    f"worker job exceeded {timeout:.0f}s deadline"
                )
        return conn.recv()

    # ------------------------------------------------------------------
    # graph attachment + segments
    # ------------------------------------------------------------------
    def _on_graph_built(self, handle: GraphHandle) -> None:
        """Registry build hook: stage the segment before anyone asks."""
        if self._started and self.use_shared_memory and not self._shut_down:
            self._segment_for(handle)

    def _segment_for(self, handle: GraphHandle) -> SegmentHandle:
        """The published segment for this (graph, version), publish-once."""
        with self._publish_lock:
            current = self._published.get(handle.name)
            if current is not None and current[0] == handle.version:
                return current[1]
            segment = self.store.acquire(handle)
            if current is not None:
                # A reload superseded the old version; our reference to
                # it goes, and the store unlinks once workers detach.
                self.store.release(handle.name, current[0])
            self._published[handle.name] = (handle.version, segment)
            return segment

    def _ensure_attached(self, worker: _Worker, handle: GraphHandle) -> None:
        """Attach ``handle``'s graph on ``worker`` (``worker.lock`` held)."""
        attached = worker.attached.get(handle.name)
        if attached is not None:
            if attached >= handle.version:
                # Never downgrade.  A dispatcher that read its handle
                # just before a mutation flip arrives here with the old
                # version while the worker already serves the new one;
                # re-attaching would force the worker *back*, re-publish
                # a superseded segment, and serve mixed-version answers.
                # The worker answers on its (newer) generation and the
                # _mirror version guard keeps the stale-keyed result out
                # of the parent cache.
                return
            if self._attach_delta(worker, handle, attached):
                return
            # No contiguous delta chain (a compaction or rebuild opened
            # a gap) or the worker rejected the replay: fall through to
            # a full re-attach of the flat generation.
        if self.use_shared_memory:
            segment = self._segment_for(handle)
            self.store.acquire(handle)  # the worker's own reference
            try:
                reply = self._roundtrip(
                    worker, ("attach_shm", segment), timeout=self.job_timeout
                )
            except BaseException:
                # The attach never registered with the worker, so the
                # restart path would not release this reference; undo it
                # here or the refcount can never reach zero.
                self.store.release(handle.name, handle.version)
                raise
            mode = "shm"
        else:
            reply = self._roundtrip(
                worker,
                ("attach_pickle", handle.name, handle.version, handle.graph),
                timeout=self.job_timeout,
            )
            mode = "pickle"
        if reply[0] == "error":
            if self.use_shared_memory:
                self.store.release(handle.name, handle.version)
            raise ClusterWorkerError(worker.tag, reply[1], reply[2])
        if attached is not None:
            if self.use_shared_memory:
                # Release the segment the worker actually held a
                # reference under — after delta catch-ups that is older
                # than ``attached`` itself.
                stale_segment = worker.segments.get(handle.name)
                if stale_segment is not None:
                    self.store.release(handle.name, stale_segment)
            # Cursor state for the old version went with the re-attach;
            # the graph's families must be re-seeded on next dispatch.
            worker.families = OrderedDict(
                (f, True) for f in worker.families if f.graph != handle.name
            )
        worker.attached[handle.name] = handle.version
        if self.use_shared_memory:
            worker.segments[handle.name] = handle.version
        if self.metrics is not None:
            self.metrics.observe_segment_attach(mode)

    def _attach_delta(
        self, worker: _Worker, handle: GraphHandle, attached: int
    ) -> bool:
        """Catch the worker up via the registry's delta chain, if it
        covers ``attached → handle.version`` contiguously.

        The worker replays the batches over its installed generation —
        O(touched rows) per worker, no segment publication, no full
        graph pickle — and keeps its shared-memory mapping open (the
        overlay's untouched rows still alias the segment buffers, which
        is why ``worker.segments`` is *not* advanced here).
        """
        delta_chain = getattr(self.registry, "delta_chain", None)
        if delta_chain is None:
            return False
        chain = delta_chain(handle.name, attached, handle.version)
        if chain is None:
            return False
        reply = self._roundtrip(
            worker,
            ("apply_delta", handle.name, handle.version, chain),
            timeout=self.job_timeout,
        )
        if reply[0] != "ok":
            return False
        worker.attached[handle.name] = handle.version
        # The worker dropped its cursors for the old generation; next
        # dispatch re-seeds each family from the parent's scope-migrated
        # mirror (preserved families re-seed warm, invalidated ones
        # recompute).
        worker.families = OrderedDict(
            (f, True) for f in worker.families if f.graph != handle.name
        )
        if self.metrics is not None:
            self.metrics.observe_segment_attach("delta")
        return True

    # ------------------------------------------------------------------
    # parent-cache mirror + seeds
    # ------------------------------------------------------------------
    def _cache_covers(self, key: CacheKey, k: int) -> bool:
        if self.cache is None:
            return False
        entry = self.cache.get(key)
        if isinstance(entry, ProgressiveEntry):
            return entry.exhausted or entry.materialized >= k
        if isinstance(entry, StaticEntry):
            return entry.complete or len(entry.views) >= k
        return False

    def _seed_payload(self, key: CacheKey):
        """The re-seed message for a family this worker has never held."""
        if self.cache is None:
            return None
        entry = self.cache.get(key)
        if isinstance(entry, ProgressiveEntry):
            views = entry.views
            if views:
                return ("progressive", views, entry.exhausted)
        elif isinstance(entry, StaticEntry) and entry.views:
            return ("static", entry.views, entry.complete)
        return None

    def _mirror(
        self, key: CacheKey, handle: GraphHandle, result: QueryResult
    ) -> None:
        """Fold a worker result into the parent cache as frozen views."""
        cache = self.cache
        if cache is None:
            return
        if result.graph_version != key.version:
            # The worker answered on a newer generation than the handle
            # this dispatch was keyed under (a mutation flip raced the
            # dispatch and _ensure_attached refused to downgrade).
            # Folding those views in under the stale key would serve a
            # mixed-version answer to the next stale-handle reader.
            return
        views = result.communities
        entry = cache.get(key)
        if key.algorithm == "localsearch-p":
            if (
                isinstance(entry, ProgressiveEntry)
                and entry.materialized >= len(views)
            ):
                pass  # the mirror already knows at least this much
            else:
                cache.put(
                    key,
                    ProgressiveEntry(
                        cursor_factory=progressive_cursor_factory(
                            handle.graph,
                            key.gamma,
                            key.delta,
                            kernel=key.kernel,
                        ),
                        views=views,
                        exhausted=result.complete,
                        max_cached_k=cache.max_cached_k,
                    ),
                )
        else:
            if not (
                isinstance(entry, StaticEntry)
                and (entry.complete or len(entry.views) >= len(views))
            ):
                cache.put(
                    key,
                    StaticEntry.capped(
                        views, result.complete, cache.max_cached_k
                    ),
                )
        cache.record(result.source)
