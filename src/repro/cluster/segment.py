"""Shared-memory CSR segments — publish a graph once, attach everywhere.

A :class:`~repro.cluster.pool.ClusterPool` worker is a separate process:
it cannot see the parent's :class:`~repro.graph.weighted_graph.
WeightedGraph`.  What it *can* see, at zero marginal cost per worker, is
a ``multiprocessing.shared_memory`` segment — and PR 3 made the graph's
hot substrate exactly the shape such a segment wants: the
:class:`~repro.graph.csr.CSRAdjacency` buffers are contiguous, immutable
and typed (int32 ``N>=``/``N<`` neighbour targets, int64 row offsets).

:func:`publish_graph` lays the five canonical buffers (both offset
arrays, both target arrays, and the float64 vertex weights) out in one
segment, 8-byte-aligned region by region, and returns a small picklable
:class:`SegmentHandle` describing the layout.  :func:`attach_graph`
(worker side) maps the segment, casts typed ``memoryview`` windows over
the regions — **no copy** — and rebuilds a
:class:`~repro.graph.weighted_graph.WeightedGraph` via
:meth:`~repro.graph.weighted_graph.WeightedGraph.from_csr`, with the
shared buffers installed as its CSR mirror (the numpy peel kernel then
vectorises directly over the parent's memory).

Lifecycle is refcounted in the parent through :class:`SegmentStore`:
one publish per ``(graph name, registry version)`` however many pools
or workers attach, unlink when the last reference is released (and
unconditionally on :meth:`SegmentStore.release_all` at pool shutdown —
a leaked ``/dev/shm`` entry outlives the process, unlike leaked memory).
Version tagging comes from the :class:`~repro.service.registry.
GraphRegistry`: a ``reload`` bumps the version, the pool publishes a
fresh segment and releases the stale one.

Platforms without POSIX/Windows shared memory fall back to
**pickle-per-worker** (:func:`shared_memory_available` gates it): the
same buffers travel through the worker pipe once per worker instead of
being mapped — more startup copying, identical semantics.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from ..graph.csr import CSRAdjacency
from ..graph.weighted_graph import WeightedGraph
from ..service.registry import GraphHandle

__all__ = [
    "SegmentHandle",
    "SegmentStore",
    "attach_graph",
    "close_attachment",
    "publish_graph",
    "shared_memory_available",
    "mp_start_method",
]

#: Environment override for the worker start method (the CI spawn job
#: sets ``REPRO_MP_START=spawn`` so macOS/Windows semantics — no
#: inherited interpreter state, workers re-import everything — are
#: exercised on Linux runners).  Empty/unset defers to the platform
#: default (fork on Linux).
START_METHOD_ENV_VAR = "REPRO_MP_START"

#: Segment name prefix; includes the publishing pid so concurrent test
#: processes can never collide and leaked segments are attributable.
_NAME_PREFIX = "repro-csr"

#: ``(attribute, typecode, itemsize)`` of each published region, in
#: layout order.  8-byte regions first, so every region stays aligned
#: for its typed memoryview cast without padding bookkeeping.
_REGIONS: Tuple[Tuple[str, str, int], ...] = (
    ("up_offsets", "q", 8),
    ("down_offsets", "q", 8),
    ("weights", "d", 8),
    ("up_targets", "i", 4),
    ("down_targets", "i", 4),
)


def mp_start_method() -> Optional[str]:
    """The configured multiprocessing start method (``None`` = default)."""
    return os.environ.get(START_METHOD_ENV_VAR) or None


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=8)
    except (ImportError, OSError, FileNotFoundError):
        return False
    probe.close()
    try:
        probe.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - racing cleanup
        pass
    return True


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable description of one published graph segment.

    ``lengths`` are element counts per region in :data:`_REGIONS` order;
    byte offsets are derived, so the handle stays tiny on the worker
    pipe.  ``labels`` is ``None`` when the graph's labels are the
    identity ``0..n-1`` (the common generated-dataset case) — otherwise
    the label list rides along in the handle, pickled once per attach;
    the big adjacency never does.
    """

    graph: str
    version: int
    shm_name: str
    num_vertices: int
    num_edges: int
    lengths: Tuple[int, ...]
    labels: Optional[Tuple[Hashable, ...]]

    @property
    def nbytes(self) -> int:
        return sum(
            length * itemsize
            for length, (_, _, itemsize) in zip(self.lengths, _REGIONS)
        )

    def region_windows(self, buf) -> List[memoryview]:
        """Typed memoryview windows over ``buf``, one per region."""
        windows: List[memoryview] = []
        start = 0
        for length, (_, typecode, itemsize) in zip(self.lengths, _REGIONS):
            end = start + length * itemsize
            windows.append(memoryview(buf)[start:end].cast(typecode))
            start = end
        return windows


def _graph_regions(graph: WeightedGraph):
    """The five canonical buffers of ``graph`` in :data:`_REGIONS` order."""
    from array import array

    csr = graph.csr()
    weights = array("d", (graph.weight(r) for r in range(graph.num_vertices)))
    return (
        csr.up_offsets,
        csr.down_offsets,
        weights,
        csr.up_targets,
        csr.down_targets,
    )


def _labels_payload(graph: WeightedGraph) -> Optional[Tuple[Hashable, ...]]:
    labels = tuple(graph.label(r) for r in range(graph.num_vertices))
    if all(label == rank for rank, label in enumerate(labels)):
        return None  # identity labels: rebuild as range(n), ship nothing
    return labels


def publish_graph(handle: GraphHandle):
    """Copy ``handle``'s CSR + weights into a fresh shared segment.

    Returns ``(segment, shm)``.  The caller owns the creator's mapping:
    keep ``shm`` open for the segment's whole life (Windows named
    memory vanishes when its last handle closes) and ``unlink`` it when
    done — :class:`SegmentStore` does both.
    """
    from multiprocessing import shared_memory

    regions = _graph_regions(handle.graph)
    lengths = tuple(len(region) for region in regions)
    nbytes = sum(
        len(region) * itemsize
        for region, (_, _, itemsize) in zip(regions, _REGIONS)
    )
    shm = shared_memory.SharedMemory(
        create=True,
        size=max(nbytes, 1),
        name=f"{_NAME_PREFIX}-{os.getpid()}-{os.urandom(4).hex()}",
    )
    try:
        start = 0
        for region, (_, _, itemsize) in zip(regions, _REGIONS):
            end = start + len(region) * itemsize
            shm.buf[start:end] = memoryview(region).cast("B")
            start = end
        segment = SegmentHandle(
            graph=handle.name,
            version=handle.version,
            shm_name=shm.name,
            num_vertices=handle.graph.num_vertices,
            num_edges=handle.graph.num_edges,
            lengths=lengths,
            labels=_labels_payload(handle.graph),
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return segment, shm


def _attach_untracked(name: str):
    """Open an existing segment WITHOUT resource-tracker registration.

    Before Python 3.13 every ``SharedMemory`` open — attach included —
    registers with the per-process resource tracker, which unlinks
    whatever it still tracks when its process exits.  A worker exiting
    must never unlink a segment the parent (and its sibling workers)
    still map; and under ``fork`` the tracker process is *shared*, so a
    register/unregister pair from one worker would also knock out the
    publisher's legitimate registration.  Suppressing the registration
    at attach time (rather than undoing it afterwards) keeps the
    tracker's view exactly one-owner: the publishing
    :class:`SegmentStore`.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip_shared_memory(target, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(target, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_graph(segment: SegmentHandle):
    """Map ``segment`` and rebuild its graph over the shared buffers.

    Returns ``(graph, shm)``; the caller owns ``shm.close()`` (never
    ``unlink`` — the publisher does that) and must keep ``shm`` alive as
    long as the graph is in use, since every adjacency byte the graph
    serves lives in the mapping.
    """
    shm = _attach_untracked(segment.shm_name)
    try:
        up_off, down_off, weights, up_tgt, down_tgt = segment.region_windows(
            shm.buf
        )
        csr = CSRAdjacency.from_buffers(
            segment.num_vertices, up_off, up_tgt, down_off, down_tgt
        )
        graph = WeightedGraph.from_csr(
            csr,
            weights,
            list(segment.labels) if segment.labels is not None else None,
        )
    except BaseException:
        shm.close()
        raise
    return graph, shm


#: Attach mappings whose windows are still exported at close time: they
#: stay pinned until process exit (see :func:`close_attachment`).
_pinned_attachments: List[object] = []


def close_attachment(shm) -> None:
    """Close an attach mapping, tolerating still-exported windows.

    An attached graph's CSR holds typed memoryview windows into the
    mapping; while any of them is referenced (cursor state caches the
    graph) ``mmap`` refuses to close with ``BufferError``.  That is
    fine: the mapping dies with the process, and the segment *file*'s
    lifetime belongs to the publisher's unlink, not to this close.  The
    object is then pinned for the process's remaining lifetime so its
    finalizer cannot re-raise the same error from the GC.
    """
    try:
        shm.close()
    except BufferError:
        _pinned_attachments.append(shm)


class SegmentStore:
    """Refcounted registry of published segments (parent side).

    ``acquire`` publishes at most once per ``(graph, version)`` and
    bumps the refcount; ``release`` unlinks when the count reaches zero.
    Publishing a *newer* version of a name does not auto-release older
    ones — in-flight queries may still resolve against them — but
    :meth:`release_all` (pool shutdown) unlinks everything regardless of
    counts: segment files outlive processes, so shutdown is the hard
    backstop against ``/dev/shm`` leaks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict = {}  # (graph, version) -> [SegmentHandle, refs, shm]

    def acquire(self, handle: GraphHandle) -> SegmentHandle:
        key = (handle.name, handle.version)
        with self._lock:
            slot = self._segments.get(key)
            if slot is None:
                segment, shm = publish_graph(handle)
                slot = [segment, 0, shm]
                self._segments[key] = slot
            slot[1] += 1
            return slot[0]

    def release(self, graph: str, version: int) -> bool:
        """Drop one reference; returns True when the segment was unlinked."""
        key = (graph, version)
        with self._lock:
            slot = self._segments.get(key)
            if slot is None:
                return False
            slot[1] -= 1
            if slot[1] > 0:
                return False
            del self._segments[key]
            self._unlink(slot)
            return True

    def release_all(self) -> int:
        """Unlink every published segment (pool shutdown); returns count."""
        with self._lock:
            slots = list(self._segments.values())
            self._segments.clear()
        for slot in slots:
            self._unlink(slot)
        return len(slots)

    def published(self) -> List[SegmentHandle]:
        with self._lock:
            return [slot[0] for slot in self._segments.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    @staticmethod
    def _unlink(slot) -> None:
        shm = slot[2]
        try:
            shm.close()
            shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass
