"""Multi-process shard execution over shared-memory CSR segments.

The GIL ceiling: since PR 3 the hot peel is allocation-free and flat,
but :class:`~repro.server.shards.ShardPool`'s shards are threads — N
CPU-bound cursor advances still execute one bytecode at a time.  This
package is the scale-out step the ROADMAP marked **unblocked** by the
CSR layer (contiguous, immutable, picklable buffers):

* :mod:`~repro.cluster.segment` — publish a registered graph's CSR
  buffers + weights into one ``multiprocessing.shared_memory`` segment
  (refcounted, version-tagged by the
  :class:`~repro.service.registry.GraphRegistry`), attach zero-copy in
  workers, pickle-per-worker fallback where shared memory is missing;
* :mod:`~repro.cluster.worker` — long-lived worker processes owning the
  per-:class:`~repro.api.spec.FamilyKey` progressive cursor state (a
  worker-local engine + result cache), executing QuerySpec jobs
  including ``extend_to`` continuations one-pass;
* :mod:`~repro.cluster.pool` — :class:`ClusterPool`: the ShardPool
  routing/replication surface over processes, with family-affine sticky
  dispatch, health checks + restart with cursor re-seed from the parent
  :class:`~repro.service.cache.ResultCache`, and graceful drain that
  unlinks every segment.

Select it with ``repro serve --tcp PORT --workers N`` (threads remain
the default, and the automatic fallback when multiprocessing is
unavailable), or in code via
:func:`repro.server.shards.create_pool`.
"""

from .pool import ClusterPool
from .segment import (
    SegmentHandle,
    SegmentStore,
    attach_graph,
    close_attachment,
    publish_graph,
    shared_memory_available,
)
from .worker import WorkerConfig, worker_main

__all__ = [
    "ClusterPool",
    "SegmentHandle",
    "SegmentStore",
    "WorkerConfig",
    "attach_graph",
    "close_attachment",
    "publish_graph",
    "shared_memory_available",
    "worker_main",
]
