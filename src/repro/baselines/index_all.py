"""IndexAll — the ICP-style index-based approach of Li et al. [26].

IndexAll pre-materialises *all* influential γ-communities of the graph,
for *every* γ, in a compact tree form, so a query ``(k, γ)`` reads the
answer off the index in output time.  The paper's Introduction recounts
its two deficiencies — the index is expensive to build and maintain, and
it is locked to one built-in vertex-weight vector — which motivate the
index-free LocalSearch.  We include it

* as an independent correctness oracle (its answers come from a whole
  different code path than LocalSearch's doubling loop), and
* for the index-vs-online ablation benchmark (build cost vs. query cost).

The index stores, per γ, the global peel record (``keys``/``cvs`` and
group boundaries — exactly the compact non-copying representation the
ICP-tree achieves); a query materialises the communities of the last
``k`` keynodes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..errors import QueryParameterError
from ..graph.core_decomposition import degeneracy
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from ..core.community import Community
from ..core.count import CVSRecord, construct_cvs
from ..core.enumerate import enumerate_top_k

__all__ = ["ICPIndex"]


class ICPIndex:
    """A per-γ materialisation of all influential communities.

    Build once with :meth:`build`; query any ``(k, γ)`` afterwards.  The
    index is bound to the weight vector the graph was built with — querying
    under a different weight vector requires a full rebuild, which is the
    maintenance burden the paper's online approach avoids.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self._records: Dict[int, CVSRecord] = {}
        self.build_seconds: float = 0.0
        self.gamma_max: int = 0

    # ------------------------------------------------------------------
    def build(self, gammas: Optional[List[int]] = None) -> "ICPIndex":
        """Materialise the peel record for every γ (default: 1..γmax)."""
        started = time.perf_counter()
        if gammas is None:
            self.gamma_max = degeneracy(self.graph)
            gammas = list(range(1, self.gamma_max + 1))
        view = PrefixView.whole(self.graph)
        for gamma in gammas:
            self._records[gamma] = construct_cvs(view, gamma)
        self.build_seconds = time.perf_counter() - started
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has run."""
        return bool(self._records)

    def index_entries(self) -> int:
        """Total stored ``cvs`` entries across all γ (index footprint)."""
        return sum(len(rec.cvs) for rec in self._records.values())

    # ------------------------------------------------------------------
    def num_communities(self, gamma: int) -> int:
        """Number of influential γ-communities in the whole graph."""
        return self._record_for(gamma).num_communities

    def query(self, k: int, gamma: int) -> List[Community]:
        """Top-``k`` influential γ-communities, in decreasing influence order.

        Output time only (plus the forest construction for the k groups).
        """
        if k < 1:
            raise QueryParameterError("k must be at least 1")
        record = self._record_for(gamma)
        return enumerate_top_k(self.graph, record, k)

    def _record_for(self, gamma: int) -> CVSRecord:
        if not self._records:
            raise QueryParameterError("index not built; call build() first")
        record = self._records.get(gamma)
        if record is None:
            # Not pre-built for this gamma (e.g. beyond gamma_max): an
            # index miss — materialise on demand and cache.
            record = construct_cvs(PrefixView.whole(self.graph), gamma)
            self._records[gamma] = record
        return record
