"""Semi-external algorithms: OnlineAll-SE [27] and LocalSearch-SE.

The semi-external model (Remark of Section 3.1; Eval-VI/VII): main memory
holds constant per-vertex information (weights, degrees) plus a *subset*
of the edges; edges live on disk sorted in decreasing edge-weight order —
with our rank encoding, ascending by the edge's maximum rank — so the
edges of any ``G>=tau`` form a *prefix of the edge file*.

* :func:`local_search_se` — LocalSearch-P over a disk-resident
  :class:`~repro.graph.storage.EdgeStore`: each round extends the
  in-memory adjacency with one **sequential** read of exactly the new
  prefix edges, then peels in memory.  I/O and resident-set sizes are
  those of the final prefix only.
* :func:`online_all_se` — the semi-external OnlineAll of [27]: a **full
  sequential scan** of the edge file builds the graph (in chunks), then
  the global OnlineAll sweep runs.  When a memory budget is given and the
  graph exceeds it, the overflow is accounted as spill I/O (one write-out
  and one read-back per spilled edge), mirroring the eviction passes of
  [27] without reproducing its ICP-tree bookkeeping — the access-pattern
  comparison (full scan + large resident set vs. tiny prefix) is what
  Figures 16 and 17 measure.

Both functions take the graph object *only* as the in-memory vertex
metadata provider (weights, labels, per-vertex ``N>=`` degree — all O(n));
every edge they process comes from the store and is accounted by its
:class:`~repro.graph.storage.IOCounter`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..errors import QueryParameterError
from ..graph.storage import EdgeStore, IOCounter
from ..graph.weighted_graph import WeightedGraph
from ..core.community import Community
from ..core.count import peel_cvs
from ..core.enumerate import enumerate_top_k
from ..core.local_search import SearchStats, TopKResult

__all__ = ["SemiExternalResult", "local_search_se", "online_all_se"]


@dataclass
class SemiExternalResult:
    """Result of a semi-external query: communities + I/O accounting."""

    communities: List[Community]
    stats: SearchStats
    io: IOCounter

    @property
    def influences(self) -> List[float]:
        """Influence values in reported (decreasing) order."""
        return [c.influence for c in self.communities]

    @property
    def visited_edges(self) -> int:
        """Edges brought into memory — the Figure-17 'size of visited graph'."""
        return self.io.peak_resident_edges


def _edges_in_prefix(graph: WeightedGraph, q: int) -> int:
    """Number of stored edges with max rank < q (vertex-metadata derived)."""
    return graph.prefix_size(q) - q


def local_search_se(
    graph: WeightedGraph,
    store: EdgeStore,
    k: int,
    gamma: int,
    delta: float = 2.0,
) -> SemiExternalResult:
    """LocalSearch-P over a disk-resident edge store (Eval-VI/VII).

    Each doubling round loads exactly the edge-file delta between the old
    and the new prefix — purely sequential I/O — and re-peels in memory.
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    if delta <= 1.0:
        raise QueryParameterError("delta must be greater than 1")
    started = time.perf_counter()
    n = graph.num_vertices
    io = store.counter
    stats = SearchStats(gamma=gamma, k=k, delta=delta, graph_size=graph.size)

    nbrs: List[List[int]] = []
    loaded_edges = 0
    p = min(n, k + gamma)
    record = None
    while True:
        # Extend the in-memory adjacency to cover prefix p: one sequential
        # read of the new slice of the (weight-ordered) edge file.
        while len(nbrs) < p:
            nbrs.append([])
        edge_stop = _edges_in_prefix(graph, p)
        if edge_stop > loaded_edges:
            for u, v in store.read_range(loaded_edges, edge_stop):
                nbrs[u].append(v)
                nbrs[v].append(u)
            loaded_edges = edge_stop
        io.record_resident(loaded_edges)

        record = peel_cvs(nbrs, gamma, p=p)
        size = p + loaded_edges
        stats.prefixes.append(p)
        stats.prefix_sizes.append(size)
        stats.counts.append(record.num_communities)
        if record.num_communities >= k or p == n:
            break
        import math

        target = int(math.ceil(delta * size))
        q = p
        while q < n and graph.prefix_size(q) < target:
            q += 1
        p = max(q, min(p + 1, n))

    communities = enumerate_top_k(graph, record, k)
    stats.elapsed_seconds = time.perf_counter() - started
    return SemiExternalResult(communities=communities, stats=stats, io=io)


def online_all_se(
    graph: WeightedGraph,
    store: EdgeStore,
    k: int,
    gamma: int,
    memory_budget_edges: Optional[int] = None,
    chunk_edges: int = 65536,
) -> SemiExternalResult:
    """Semi-external OnlineAll [27] (baseline of Eval-VI/VII).

    Streams the *entire* edge file sequentially into memory (chunked),
    accounting spill I/O for the part exceeding ``memory_budget_edges``,
    then runs the global OnlineAll sweep (per-iteration component BFS).
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    started = time.perf_counter()
    n = graph.num_vertices
    io = store.counter
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size)

    nbrs: List[List[int]] = [[] for _ in range(n)]
    loaded = 0
    for chunk in store.scan(chunk_edges=chunk_edges):
        for u, v in chunk:
            nbrs[u].append(v)
            nbrs[v].append(u)
        loaded += len(chunk)
        if memory_budget_edges is not None and loaded > memory_budget_edges:
            # Overflow beyond the budget: model one write-out + one
            # read-back per spilled edge, as eviction passes would cost.
            spilled = loaded - memory_budget_edges
            io.record_read(min(spilled, len(chunk)))
            io.record_resident(memory_budget_edges)
        else:
            io.record_resident(loaded)
    # The visited graph is the whole graph regardless of the budget.
    if memory_budget_edges is None or loaded <= memory_budget_edges:
        io.record_resident(loaded)

    # Global OnlineAll sweep (component BFS per iteration) on the loaded graph.
    deg = [len(row) for row in nbrs]
    alive = bytearray(b"\x01") * n
    stack = [u for u in range(n) if deg[u] < gamma]
    for u in stack:
        alive[u] = 0
    while stack:
        u = stack.pop()
        for w in nbrs[u]:
            if alive[w]:
                deg[w] -= 1
                if deg[w] == gamma - 1:
                    alive[w] = 0
                    stack.append(w)

    kept: Deque[Tuple[int, List[int]]] = deque(maxlen=k)
    count = 0
    ptr = n - 1
    queue: Deque[int] = deque()
    while True:
        while ptr >= 0 and not alive[ptr]:
            ptr -= 1
        if ptr < 0:
            break
        u = ptr
        component = [u]
        seen = {u}
        queue.append(u)
        while queue:
            x = queue.popleft()
            for w in nbrs[x]:
                if alive[w] and w not in seen:
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        count += 1
        kept.append((u, component))
        alive[u] = 0
        queue.append(u)
        while queue:
            v = queue.popleft()
            for w in nbrs[v]:
                if alive[w]:
                    deg[w] -= 1
                    if deg[w] == gamma - 1:
                        alive[w] = 0
                        queue.append(w)

    stats.prefixes.append(n)
    stats.prefix_sizes.append(n + loaded)
    stats.counts.append(count)
    communities = [
        Community(graph, keynode=u, gamma=gamma, own_vertices=members)
        for u, members in reversed(kept)
    ]
    stats.elapsed_seconds = time.perf_counter() - started
    return SemiExternalResult(communities=communities, stats=stats, io=io)
