"""Baseline algorithms the paper compares against (DESIGN.md S12–S16).

* :func:`~repro.baselines.online_all.online_all` — OnlineAll [26];
* :func:`~repro.baselines.forward.forward` — Forward [8] (and its
  non-containment variant);
* :func:`~repro.baselines.backward.backward` — Backward [8], the quadratic
  local search;
* :func:`~repro.baselines.semi_external.online_all_se` /
  :func:`~repro.baselines.semi_external.local_search_se` — the
  semi-external (disk-resident) algorithms of Eval-VI/VII;
* :class:`~repro.baselines.index_all.ICPIndex` — the index-based approach
  [26], used as an oracle and in the index-vs-online ablation.
"""

from .backward import backward
from .forward import forward, forward_noncontainment
from .index_all import ICPIndex
from .online_all import online_all, online_all_count
from .semi_external import SemiExternalResult, local_search_se, online_all_se

__all__ = [
    "online_all",
    "online_all_count",
    "forward",
    "forward_noncontainment",
    "backward",
    "ICPIndex",
    "SemiExternalResult",
    "local_search_se",
    "online_all_se",
]
