"""Backward — the earlier local-search attempt of Chen et al. [8].

Backward also avoids traversing the whole graph: it considers vertices in
decreasing weight order and, after each extension of the prefix, tests
whether the newly added (now minimum-weight) vertex closes a community.
The test is a fresh γ-core computation of the *entire current prefix*, so
over a prefix of ``p`` vertices the total work is ``Σ size(G_i) =
O(p · size(G_p))`` — **quadratic in the accessed subgraph**, which is why
the paper reports it losing to LocalSearch everywhere and even to the
global Forward for large γ (Section 1, Eval-II).

The membership test is exact: rank ``u`` is a keynode iff ``u`` survives
in the γ-core of ``G>=w(u)`` (it is then automatically the minimum-weight
vertex of its component).  Communities therefore emerge in decreasing
influence order and the sweep stops after ``k``.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import QueryParameterError
from ..graph.connectivity import component_of
from ..graph.core_decomposition import gamma_core
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from ..core.community import Community
from ..core.local_search import SearchStats, TopKResult

__all__ = ["backward"]


def backward(
    graph: WeightedGraph,
    k: int,
    gamma: int,
    max_prefix: Optional[int] = None,
) -> TopKResult:
    """Run Backward until ``k`` communities are found.

    ``max_prefix`` optionally caps the number of ranks examined (a safety
    valve for benchmarking the quadratic behaviour on large graphs); when
    the cap is hit, the communities found so far are returned and
    ``stats.counts[-1]`` reflects the shortfall.
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    started = time.perf_counter()
    n = graph.num_vertices
    limit = n if max_prefix is None else min(n, max_prefix)
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size)

    communities = []
    p = 0
    work = 0
    while p < limit and len(communities) < k:
        p += 1
        u = p - 1  # the newly added, minimum-weight vertex of the prefix
        view = PrefixView(graph, p)
        work += view.size
        # Quadratic step: a from-scratch gamma-core of the whole prefix.
        alive, _ = gamma_core(view, gamma)
        if alive[u]:
            members = component_of(view, u, alive)
            communities.append(
                Community(graph, keynode=u, gamma=gamma, own_vertices=members)
            )
    stats.prefixes.append(p)
    stats.prefix_sizes.append(work)  # total (quadratic) work performed
    stats.counts.append(len(communities))
    stats.elapsed_seconds = time.perf_counter() - started
    return TopKResult(communities=communities, stats=stats)
