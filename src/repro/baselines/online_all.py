"""OnlineAll — the global online-search baseline of Li et al. [26].

OnlineAll computes **all** influential γ-communities of the graph in
increasing influence value order, by iterating three subroutines
(Section 1):

1. reduce the current graph to its γ-core;
2. identify the connected component containing the minimum-weight vertex
   — that component is the next influential γ-community;
3. remove the minimum-weight vertex.

During the sweep only the last ``k`` identified communities are retained —
they are the top-k.  Subroutine 2 (a BFS per iteration) dominates and
makes OnlineAll traverse overlapping components over and over, which is
exactly the inefficiency Forward and LocalSearch remove; it is reproduced
faithfully here (Eval-I shows it losing by up to five orders of
magnitude).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..errors import QueryParameterError
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from ..core.community import Community
from ..core.local_search import SearchStats, TopKResult

__all__ = ["online_all", "online_all_count"]


def _peel_with_components(
    view: PrefixView, gamma: int, keep_last: Optional[int]
) -> Tuple[int, List[Tuple[int, List[int]]]]:
    """The OnlineAll sweep over a prefix view.

    Returns ``(community_count, kept)`` where ``kept`` holds the last
    ``keep_last`` communities as ``(keynode, member_ranks)`` in increasing
    influence order (all of them when ``keep_last`` is None).
    """
    p = view.p
    nbrs = view.neighbor_lists()
    deg = [len(row) for row in nbrs]
    alive = bytearray(b"\x01") * p

    # Subroutine 1 (initial): reduce to the gamma-core.
    stack = [u for u in range(p) if deg[u] < gamma]
    for u in stack:
        alive[u] = 0
    while stack:
        u = stack.pop()
        for w in nbrs[u]:
            if alive[w]:
                deg[w] -= 1
                if deg[w] == gamma - 1:
                    alive[w] = 0
                    stack.append(w)

    kept: Deque[Tuple[int, List[int]]] = deque(maxlen=keep_last)
    count = 0
    ptr = p - 1
    queue: Deque[int] = deque()
    while True:
        while ptr >= 0 and not alive[ptr]:
            ptr -= 1
        if ptr < 0:
            break
        u = ptr

        # Subroutine 2: BFS the component of the minimum-weight vertex.
        # This is the expensive step the paper attributes OnlineAll's cost
        # to — it re-walks heavily overlapping components every iteration.
        component = [u]
        seen = {u}
        queue.append(u)
        while queue:
            x = queue.popleft()
            for w in nbrs[x]:
                if alive[w] and w not in seen:
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        count += 1
        kept.append((u, component))

        # Subroutine 3: remove u, cascade the gamma-core maintenance.
        alive[u] = 0
        queue.append(u)
        while queue:
            v = queue.popleft()
            for w in nbrs[v]:
                if alive[w]:
                    deg[w] -= 1
                    if deg[w] == gamma - 1:
                        alive[w] = 0
                        queue.append(w)
    return count, list(kept)


def online_all(
    graph: WeightedGraph,
    k: int,
    gamma: int,
    prefix: Optional[int] = None,
) -> TopKResult:
    """Run OnlineAll and return the top-``k`` communities.

    ``prefix`` restricts the sweep to a rank prefix (used by the
    LocalSearch-OA hybrid); by default the entire graph is traversed —
    OnlineAll is a global algorithm.
    """
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    started = time.perf_counter()
    p = graph.num_vertices if prefix is None else prefix
    view = PrefixView(graph, p)
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size)
    stats.prefixes.append(p)
    stats.prefix_sizes.append(view.size)
    count, kept = _peel_with_components(view, gamma, keep_last=k)
    stats.counts.append(count)
    communities = [
        Community(graph, keynode=u, gamma=gamma, own_vertices=members)
        for u, members in reversed(kept)  # decreasing influence order
    ]
    stats.elapsed_seconds = time.perf_counter() - started
    return TopKResult(communities=communities, stats=stats)


def online_all_count(view: PrefixView, gamma: int) -> int:
    """Count communities in a view by the OnlineAll sweep (LocalSearch-OA).

    Same asymptotics as OnlineAll: every iteration pays a component BFS,
    which is what Eval-III shows CountIC avoiding.
    """
    count, _ = _peel_with_components(view, gamma, keep_last=1)
    return count
