"""Forward — the state-of-the-art global online-search baseline [8].

Chen et al.'s Forward improves OnlineAll by skipping the per-iteration
connected-component computation: it performs the full minimum-weight peel
once (recording the removal order — effectively CountIC's ``keys``/``cvs``
over the *whole* graph) and materialises components only for the last
``k`` iterations, whose communities are the answer.

In this code base that is precisely "run the keynode peel globally, then
EnumIC on the last k keynodes" — Forward is LocalSearch without locality.
It remains a global algorithm: its cost is Θ(size(G)) regardless of ``k``
and γ, which is the flat line of Figures 8 and 9.

The module also provides the non-containment variant used in Eval-VII.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import QueryParameterError
from ..graph.subgraph import PrefixView
from ..graph.weighted_graph import WeightedGraph
from ..core.count import construct_cvs
from ..core.enumerate import enumerate_top_k
from ..core.local_search import SearchStats, TopKResult
from ..core.noncontainment import noncontainment_communities_from_record

__all__ = ["forward", "forward_noncontainment"]


def forward(graph: WeightedGraph, k: int, gamma: int) -> TopKResult:
    """Run Forward: one global peel, then communities of the last ``k``."""
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    if gamma < 1:
        raise QueryParameterError("gamma must be at least 1")
    started = time.perf_counter()
    view = PrefixView.whole(graph)
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size)
    stats.prefixes.append(view.p)
    stats.prefix_sizes.append(view.size)
    record = construct_cvs(view, gamma)
    stats.counts.append(record.num_communities)
    communities = enumerate_top_k(graph, record, k)
    stats.elapsed_seconds = time.perf_counter() - started
    return TopKResult(communities=communities, stats=stats, record=record)


def forward_noncontainment(
    graph: WeightedGraph, k: int, gamma: int
) -> TopKResult:
    """Forward's non-containment variant [8] (baseline of Eval-VII)."""
    if k < 1:
        raise QueryParameterError("k must be at least 1")
    started = time.perf_counter()
    view = PrefixView.whole(graph)
    stats = SearchStats(gamma=gamma, k=k, graph_size=graph.size)
    stats.prefixes.append(view.p)
    stats.prefix_sizes.append(view.size)
    record = construct_cvs(view, gamma, track_noncontainment=True)
    stats.counts.append(record.num_noncontainment)
    communities = noncontainment_communities_from_record(graph, record, k)
    stats.elapsed_seconds = time.perf_counter() - started
    return TopKResult(communities=communities, stats=stats, record=record)
