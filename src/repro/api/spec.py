"""QuerySpec — the one typed representation of a top-k community query.

Every layer of the system used to re-parse and re-thread the same
parameter tuple (graph, gamma, k, delta, algorithm, ...) in its own
shape: the CLI as argparse attributes, the shell as a positional
3-tuple, the scheduler as an ad-hoc coalesce key, the transports as raw
``key=value`` tokens.  :class:`QuerySpec` replaces all of them: a frozen
dataclass that validates on construction, resolves ``auto`` choices
canonically (:meth:`QuerySpec.resolved_algorithm`,
:meth:`QuerySpec.cache_key`), and round-trips through a **versioned**
wire schema (:meth:`QuerySpec.to_wire` / :meth:`QuerySpec.from_wire`)
that also accepts the legacy pre-versioned payload shape, so old wire
clients keep working.

The canonical :meth:`cache_key` is what the result cache and the batch
scheduler key off: it is ``k``-independent (the progressive order only
truncates at ``k``) and **includes the resolved peel kernel**, so a
``kernel=python`` query can never be served another kernel's cursor
slices with wrong provenance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.fastpeel import KERNELS, resolve_kernel
from ..errors import QueryParameterError

__all__ = [
    "ALGORITHMS",
    "AUTO",
    "COHESIONS",
    "KERNEL_ALGORITHMS",
    "MODES",
    "WIRE_VERSION",
    "FamilyKey",
    "QuerySpec",
    "parse_spec_tokens",
    "parse_wire_query",
]

AUTO = "auto"

#: Algorithms the planner can dispatch to (mirrors the CLI choices).
ALGORITHMS = (
    AUTO,
    "localsearch",
    "localsearch-p",
    "forward",
    "onlineall",
    "backward",
    "truss",
    "noncontainment",
)

#: Cohesiveness families a spec can ask for.  ``core`` is the paper's
#: minimum-degree (γ-core) definition; ``truss`` the Section-6 k-truss
#: variant.  ``auto`` + ``cohesion="truss"`` resolves to the truss
#: searcher without the caller naming an algorithm.
COHESIONS = ("core", "truss")

#: Output modes a spec can request over the wire: human-rendered text
#: lines, or one deterministic JSON document.
MODES = ("text", "json")

#: Algorithms whose peel runs through the kernel dispatcher
#: (:func:`repro.core.count.construct_cvs`); onlineall/backward/truss
#: use their own peels and report no kernel.
KERNEL_ALGORITHMS = frozenset(
    {"localsearch", "localsearch-p", "forward", "noncontainment"}
)

#: Wire-schema version emitted by :meth:`QuerySpec.to_wire`.  Bump only
#: on incompatible changes; :meth:`QuerySpec.from_wire` keeps accepting
#: every version it knows (including the legacy pre-versioned shape).
WIRE_VERSION = 1

_KERNEL_CHOICES = (AUTO,) + KERNELS

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class FamilyKey:
    """The canonical, ``k``-independent identity of a query family.

    Two queries sharing a FamilyKey share one result stream: the cache
    stores one (resumable) entry per family, and the batch scheduler
    coalesces concurrent queries of a family onto one engine pass.
    ``algorithm`` and ``kernel`` are *resolved* (no ``auto``/``None``),
    so provenance can never be mixed across kernels.
    """

    graph: str
    gamma: int
    algorithm: str
    delta: float
    kernel: Optional[str]


@dataclass(frozen=True)
class QuerySpec:
    """One top-k influential-community query, fully specified.

    This is the only query-parameter representation that crosses layer
    boundaries: the CLI, the stdio shell, the network transports, the
    batch scheduler, the result cache, and the engine all consume and
    produce it.

    Parameters
    ----------
    graph:
        Registered graph name the query runs against.
    gamma:
        Minimum-degree (or truss) cohesiveness parameter, >= 1.
    k:
        Number of communities requested, >= 1.
    algorithm:
        One of :data:`ALGORITHMS`; ``auto`` lets the planner pick
        (LocalSearch-P, or the truss/non-containment searcher when
        ``cohesion``/``containment`` say so).
    delta:
        Progressive growth ratio, > 1.
    kernel:
        Peel kernel (``auto``/``python``/``array``/``numpy``); ``None``
        defers to ``$REPRO_KERNEL`` and then ``auto``.
    containment:
        ``False`` restricts the answer to non-containment communities
        (Section 5.1); only valid with ``algorithm`` ``auto`` or
        ``noncontainment``.
    cohesion:
        ``core`` (default) or ``truss``; ``truss`` is only valid with
        ``algorithm`` ``auto`` or ``truss``.
    mode:
        Response rendering over the wire: ``text`` lines or one
        ``json`` document.  Not part of the query identity.
    tenant:
        Optional caller identity for per-tenant admission control.
        Absent by default and **never** emitted on the wire when unset,
        so pre-tenant recorded exchanges stay byte-identical.  Like
        ``k``/``mode`` it is not part of the query identity: two
        tenants asking for the same family share one cache entry.
    """

    graph: str
    gamma: int = 10
    k: int = 10
    algorithm: str = AUTO
    delta: float = 2.0
    kernel: Optional[str] = None
    containment: bool = True
    cohesion: str = "core"
    mode: str = "text"
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`QueryParameterError` unless the spec is coherent."""
        if not self.graph:
            raise QueryParameterError("graph name must be non-empty")
        if self.k < 1:
            raise QueryParameterError("k must be at least 1")
        if self.gamma < 1:
            raise QueryParameterError("gamma must be at least 1")
        if self.delta <= 1.0:
            raise QueryParameterError("delta must be greater than 1")
        if self.algorithm not in ALGORITHMS:
            raise QueryParameterError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {', '.join(ALGORITHMS)}"
            )
        if self.kernel is not None and self.kernel not in _KERNEL_CHOICES:
            raise QueryParameterError(
                f"unknown kernel {self.kernel!r}; "
                f"choose from {', '.join(_KERNEL_CHOICES)}"
            )
        if self.cohesion not in COHESIONS:
            raise QueryParameterError(
                f"unknown cohesion {self.cohesion!r}; "
                f"choose from {', '.join(COHESIONS)}"
            )
        if self.mode not in MODES:
            raise QueryParameterError(
                f"unknown mode {self.mode!r}; choose from {', '.join(MODES)}"
            )
        if self.tenant is not None and not self.tenant:
            raise QueryParameterError("tenant must be non-empty when set")
        if self.cohesion == "truss":
            if self.algorithm not in (AUTO, "truss"):
                raise QueryParameterError(
                    f"cohesion='truss' conflicts with "
                    f"algorithm={self.algorithm!r} (use 'auto' or 'truss')"
                )
            if not self.containment:
                raise QueryParameterError(
                    "non-containment search is not defined for "
                    "cohesion='truss'"
                )
        if not self.containment and self.algorithm not in (
            AUTO,
            "noncontainment",
        ):
            raise QueryParameterError(
                f"containment=False conflicts with "
                f"algorithm={self.algorithm!r} (use 'auto' or "
                "'noncontainment')"
            )

    # ------------------------------------------------------------------
    def resolved_algorithm(self) -> str:
        """The concrete algorithm this spec runs (``auto`` resolved).

        ``auto`` resolves by declared intent: ``cohesion='truss'`` ->
        the truss searcher, ``containment=False`` -> the non-containment
        searcher, otherwise LocalSearch-P (instance-optimal and
        resumable, which is what makes the serving tier's caching and
        coalescing pay off).
        """
        if self.algorithm != AUTO:
            return self.algorithm
        if self.cohesion == "truss":
            return "truss"
        if not self.containment:
            return "noncontainment"
        return "localsearch-p"

    def resolved_kernel(self) -> Optional[str]:
        """The peel kernel actually in effect, or ``None`` when the
        resolved algorithm never reaches the kernel dispatcher."""
        if self.resolved_algorithm() not in KERNEL_ALGORITHMS:
            return None
        return resolve_kernel(self.kernel)

    def cache_key(self) -> FamilyKey:
        """The canonical cache / coalesce identity of this query.

        ``k`` and ``mode`` are excluded (the result stream does not
        depend on them); ``algorithm`` and ``kernel`` are resolved, so
        e.g. ``kernel=None`` under ``REPRO_KERNEL=numpy`` and an
        explicit ``kernel='numpy'`` share one entry, while
        ``kernel='python'`` can never be served a numpy cursor's
        slices.
        """
        return FamilyKey(
            graph=self.graph,
            gamma=self.gamma,
            algorithm=self.resolved_algorithm(),
            delta=self.delta,
            kernel=self.resolved_kernel(),
        )

    def with_k(self, k: int) -> "QuerySpec":
        """This spec asking for ``k`` communities (same family)."""
        return self if k == self.k else replace(self, k=k)

    # ------------------------------------------------------------------
    def to_wire_dict(self) -> Dict[str, Any]:
        """The versioned wire projection (plain JSON types only).

        ``tenant`` rides along only when set: the key is an additive v1
        extension (old decoders ignore it), and omitting it when unset
        keeps every pre-tenant recorded exchange byte-identical.
        """
        out: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "graph": self.graph,
            "gamma": self.gamma,
            "k": self.k,
            "algorithm": self.algorithm,
            "delta": self.delta,
            "kernel": self.kernel,
            "containment": self.containment,
            "cohesion": self.cohesion,
            "mode": self.mode,
        }
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    def to_wire(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_wire_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_wire(
        cls, payload: Union[str, bytes, Dict[str, Any]]
    ) -> "QuerySpec":
        """Decode a wire payload (versioned or legacy) into a spec.

        Accepts the :data:`WIRE_VERSION` schema, and — for
        compatibility with pre-versioned clients and with recorded
        :meth:`~repro.service.model.QueryResult.to_dict` documents —
        any dict carrying the classic ``graph``/``gamma``/``k``/
        ``delta``/``algorithm`` keys without a ``"v"`` marker.  Unknown
        keys are ignored (a v1 decoder stays forward-compatible with
        additive v1 extensions).
        """
        if isinstance(payload, (str, bytes)):
            try:
                payload = json.loads(payload)
            except json.JSONDecodeError as exc:
                raise QueryParameterError(
                    f"bad wire payload: {exc}"
                ) from exc
        if not isinstance(payload, dict):
            raise QueryParameterError(
                "wire payload must be a JSON object"
            )
        version = payload.get("v")
        if version is not None and version != WIRE_VERSION:
            raise QueryParameterError(
                f"unsupported wire version {version!r} "
                f"(this build speaks v{WIRE_VERSION})"
            )
        if "graph" not in payload:
            raise QueryParameterError("wire payload is missing 'graph'")
        kernel = payload.get("kernel")
        tenant = payload.get("tenant")
        try:
            return cls(
                graph=str(payload["graph"]),
                gamma=int(payload.get("gamma", 10)),
                k=int(payload.get("k", 10)),
                algorithm=str(payload.get("algorithm", AUTO)),
                delta=float(payload.get("delta", 2.0)),
                kernel=None if kernel is None else str(kernel),
                containment=bool(payload.get("containment", True)),
                cohesion=str(payload.get("cohesion", "core")),
                mode=str(payload.get("mode", "text")),
                tenant=None if tenant is None else str(tenant),
            )
        except (TypeError, ValueError) as exc:
            raise QueryParameterError(
                f"bad wire payload field: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Token / wire request parsing — the shared grammar of every frontend.
# ----------------------------------------------------------------------

_USAGE = (
    "usage: query GRAPH [k=N] [gamma=N] [algorithm=A] [delta=F] "
    "[kernel=K] [cohesion=core|truss] [containment=BOOL] [tenant=T] "
    "[members] [json]"
)

_KV_KEYS = (
    "k",
    "gamma",
    "algorithm",
    "delta",
    "kernel",
    "cohesion",
    "containment",
    "mode",
    "tenant",
)
_FLAG_WORDS = ("members", "json", "nc")


def _parse_bool(key: str, value: str) -> bool:
    lowered = value.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    raise QueryParameterError(
        f"bad query argument: {key}={value!r} is not a boolean "
        "(true/false)"
    )


def parse_spec_tokens(tokens: Sequence[str]) -> Tuple[QuerySpec, bool]:
    """Parse line-protocol ``query`` tokens: ``(spec, members_flag)``.

    The grammar every text frontend shares (stdio shell, TCP and unix
    transports): a graph name followed by ``key=value`` pairs in any
    order plus bare flags.  ``json`` selects ``mode="json"``; ``nc`` is
    shorthand for ``containment=false``.
    """
    if not tokens:
        raise QueryParameterError(_USAGE)
    graph, rest = tokens[0], list(tokens[1:])
    kv: Dict[str, str] = {}
    flags: List[str] = []
    for token in rest:
        if "=" in token:
            key, _, value = token.partition("=")
            kv[key] = value
        else:
            flags.append(token)
    unknown = [flag for flag in flags if flag not in _FLAG_WORDS] + [
        key for key in kv if key not in _KV_KEYS
    ]
    if unknown:
        raise QueryParameterError(
            f"unknown query argument(s): {', '.join(unknown)}"
        )
    mode = kv.get("mode", "json" if "json" in flags else "text")
    containment = not ("nc" in flags)
    if "containment" in kv:
        containment = _parse_bool("containment", kv["containment"])
    try:
        spec = QuerySpec(
            graph=graph,
            k=int(kv.get("k", "10")),
            gamma=int(kv.get("gamma", "10")),
            algorithm=kv.get("algorithm", AUTO),
            delta=float(kv.get("delta", "2.0")),
            kernel=kv.get("kernel"),
            containment=containment,
            cohesion=kv.get("cohesion", "core"),
            mode=mode,
            tenant=kv.get("tenant"),
        )
    except ValueError as exc:
        raise QueryParameterError(f"bad query argument: {exc}") from exc
    return spec, "members" in flags


def parse_wire_query(
    payload: Union[str, bytes, Dict[str, Any]]
) -> Tuple[QuerySpec, bool]:
    """Parse a JSON *request* document: ``(spec, members_flag)``.

    ``members`` is a request-rendering concern (include member lists in
    the response), not part of the query identity, so it rides next to
    the spec fields in the request document rather than inside the spec.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise QueryParameterError(f"bad wire payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise QueryParameterError("wire payload must be a JSON object")
    spec = QuerySpec.from_wire(payload)
    return spec, bool(payload.get("members", False))
