"""ResultSet — a lazy, extensible view over one query's answer.

The engine's :class:`~repro.service.model.QueryResult` is an eager
snapshot: execute, get ``k`` frozen views.  :class:`ResultSet` is the
facade the public API hands out instead: nothing runs until the result
is actually touched, slicing ``rs[:k']`` is served from the cache (the
progressive order makes any prefix exact), :meth:`extend_to` resumes
the underlying :class:`~repro.core.progressive.ProgressiveCursor`
instead of recomputing, and :meth:`stream` iterates past the original
``k`` in doubling fetches — the paper's "no k needed" workflow without
the caller managing cursors.

A ResultSet is backend-agnostic: it only needs a ``fetch(k)`` callable
returning a QueryResult-shaped object (``communities``, ``source``,
``complete``, ``kernel``, ...).  The same class therefore fronts the
in-process :class:`~repro.service.engine.QueryEngine` and a remote
:class:`~repro.server.client.ReproClient` — ``repro.open(...)`` and
``repro.connect(...)`` hand back the identical type.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Optional,
    Tuple,
    TYPE_CHECKING,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cycles
    from ..service.model import CommunityView, QueryResult
    from .spec import QuerySpec

__all__ = ["ResultSet"]


class ResultSet:
    """Lazy top-k answer for one :class:`~repro.api.spec.QuerySpec`.

    Parameters
    ----------
    spec:
        The query this set answers; ``spec.k`` is the default
        materialisation target.
    fetch:
        ``fetch(k) -> QueryResult`` — executes (or re-serves from
        cache) the spec's family at ``k``.  Called lazily and as few
        times as the access pattern allows.
    """

    __slots__ = ("_spec", "_fetch", "_result")

    def __init__(
        self,
        spec: "QuerySpec",
        fetch: Callable[["QuerySpec"], "QueryResult"],
    ) -> None:
        self._spec = spec
        #: ``fetch(spec)`` — executes the (already k-adjusted) spec.
        #: Taking the spec as the argument (rather than closing over
        #: it) lets the local backend pass ``QueryEngine.execute``
        #: itself, keeping the per-query facade cost to one ResultSet
        #: allocation and zero wrapper frames.
        self._fetch = fetch
        self._result: Optional["QueryResult"] = None

    # ------------------------------------------------------------------
    @property
    def spec(self) -> "QuerySpec":
        """The query this result set answers."""
        return self._spec

    def _materialize(self, k: int) -> "QueryResult":
        """Ensure at least ``k`` communities are materialised (or the
        stream is known complete); returns the backing result."""
        result = self._result
        if result is None or (
            len(result.communities) < k and not result.complete
        ):
            spec = self._spec
            self._result = result = self._fetch(
                spec if spec.k == k else replace(spec, k=k)
            )
        return result

    @property
    def fetched(self) -> bool:
        """True once any backend call has run (laziness probe)."""
        return self._result is not None

    @property
    def result(self) -> "QueryResult":
        """The backing :class:`QueryResult` at the spec's ``k``."""
        return self._materialize(self._spec.k)

    @property
    def communities(self) -> Tuple["CommunityView", ...]:
        """The top-``k`` community views (materialising if needed)."""
        k = self._spec.k
        views = self._materialize(k).communities
        # A fetch at k returns at most k views, so the slice only runs
        # in the extend_to-shrunk-spec corner — the hot path is copy-free.
        return views if len(views) <= k else views[:k]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        # _materialize inlined: len() is the facade's hottest accessor
        # and the <5% overhead budget is measured in single frames.
        spec = self._spec
        k = spec.k
        result = self._result
        if result is None or (
            len(result.communities) < k and not result.complete
        ):
            self._result = result = self._fetch(spec)
        have = len(result.communities)
        return have if have < k else k

    def __iter__(self) -> Iterator["CommunityView"]:
        return iter(self.communities)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union["CommunityView", Tuple["CommunityView", ...]]:
        """Index or slice the answer, fetching only what is needed.

        ``rs[:k']`` with ``k' <= k`` asks the backend for exactly ``k'``
        communities — a pure cache slice when the family is warm —
        instead of forcing the full ``k``.  Access is bounded by
        ``spec.k`` (the sequence contract: ``rs[len(rs)]`` raises
        IndexError); growing past it is :meth:`extend_to`'s job.
        """
        k = self._spec.k
        if isinstance(index, slice):
            start, stop, step = index.start, index.stop, index.step
            if (
                (start is None or (isinstance(start, int) and start >= 0))
                and isinstance(stop, int)
                and 0 <= stop <= k
                and step in (None, 1)
            ):
                views = self._materialize(stop).communities
                return tuple(views[index])
            return tuple(self.communities[index])
        if isinstance(index, int):
            if index >= 0:
                if index >= k:
                    raise IndexError(index)
                views = self._materialize(index + 1).communities
                if index >= len(views):
                    raise IndexError(index)
                return views[index]
            return self.communities[index]
        raise TypeError(
            f"ResultSet indices must be integers or slices, "
            f"not {type(index).__name__}"
        )

    # ------------------------------------------------------------------
    def extend_to(self, k: int) -> "ResultSet":
        """Grow the answer to ``k`` communities (resuming, not
        recomputing: the backend's progressive cursor continues where
        it stopped).  Returns ``self`` for chaining."""
        if k < 1:
            raise ValueError("k must be at least 1")
        self._materialize(k)
        if k > self._spec.k:
            self._spec = self._spec.with_k(k)
        return self

    def stream(self, prefetch: int = 4) -> Iterator["CommunityView"]:
        """Yield communities lazily, past ``spec.k`` if iterated far
        enough, fetching in doubling batches until the stream is
        exhausted.  Abandoning the iterator early leaves the work at
        the largest batch actually fetched."""
        if prefetch < 1:
            raise ValueError("prefetch must be at least 1")
        i = 0
        target = prefetch
        while True:
            result = self._materialize(target)
            views = result.communities
            while i < len(views):
                yield views[i]
                i += 1
            if result.complete or len(views) < target:
                return
            target *= 2

    # ------------------------------------------------------------------
    def _provenance(self) -> "QueryResult":
        """The backing result for provenance reads: whatever fetch
        already ran (however partial), else the spec's full ``k`` —
        reading ``.source`` after ``rs[:2]`` must not trigger a fetch."""
        result = self._result
        return result if result is not None else self.result

    @property
    def source(self) -> str:
        """Cache provenance of the backing result (``cold`` / ``cache``
        / ``extended`` / ``coalesced``)."""
        return self._provenance().source

    @property
    def kernel(self) -> Optional[str]:
        """Peel kernel the backing result ran on (``None`` for
        algorithms that never reach the kernel dispatcher)."""
        return self._provenance().kernel

    @property
    def worker(self) -> Optional[str]:
        """Cluster worker that served the backing result
        (``"worker:<id>"``), or ``None`` for in-process execution."""
        return self._provenance().worker

    @property
    def complete(self) -> bool:
        """True when the answer is the graph's *entire* community list."""
        return self._provenance().complete

    @property
    def elapsed_ms(self) -> float:
        return self._provenance().elapsed_ms

    @property
    def stats(self) -> Dict[str, Any]:
        """Provenance snapshot of the backing result (JSON-friendly)."""
        result = self._provenance()
        return {
            "algorithm": result.algorithm,
            "graph": self._spec.graph,
            "graph_version": result.graph_version,
            "k": self._spec.k,
            "served": len(result.communities),
            "source": result.source,
            "kernel": result.kernel,
            "worker": result.worker,
            "complete": result.complete,
            "elapsed_ms": result.elapsed_ms,
            "plan_reason": result.plan_reason,
        }

    # ------------------------------------------------------------------
    def to_dict(self, include_members: bool = True) -> Dict[str, Any]:
        """The backing result's wire projection (see
        :meth:`~repro.service.model.QueryResult.to_dict`)."""
        return self.result.to_dict(include_members)

    def to_json(self, include_members: bool = True) -> str:
        return self.result.to_json(include_members)

    def __repr__(self) -> str:
        if self._result is None:
            return (
                f"<ResultSet {self._spec.graph!r} k={self._spec.k} "
                f"gamma={self._spec.gamma} (not fetched)>"
            )
        return (
            f"<ResultSet {self._spec.graph!r} k={self._spec.k} "
            f"gamma={self._spec.gamma} served={len(self._result.communities)} "
            f"source={self._result.source}>"
        )
