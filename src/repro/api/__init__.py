"""repro.api — the one public query surface.

The pieces:

* :class:`~repro.api.spec.QuerySpec` — the single typed representation
  of a query; every layer (CLI, shell, engine, scheduler, cache, wire
  protocol) consumes and produces it.  Versioned ``to_wire`` /
  ``from_wire`` codecs; canonical :meth:`~repro.api.spec.QuerySpec.
  cache_key` shared by the result cache and the batch scheduler.
* :class:`~repro.api.resultset.ResultSet` — the lazy answer: iterate,
  slice (``rs[:k']`` is a cache hit), :meth:`~repro.api.resultset.
  ResultSet.extend_to` (cursor resume, not recompute), ``.stats`` /
  ``.kernel`` provenance.
* :func:`~repro.api.facade.open` / :func:`~repro.api.facade.connect` —
  the same ``Repro -> Graph -> topk(spec) -> ResultSet`` surface over
  an in-process engine or a remote ``repro serve`` process.

The facade (which pulls in the service/server stacks) loads lazily so
that ``repro.service`` modules can import :mod:`repro.api.spec` without
an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .resultset import ResultSet
from .spec import (
    ALGORITHMS,
    AUTO,
    COHESIONS,
    KERNEL_ALGORITHMS,
    MODES,
    WIRE_VERSION,
    FamilyKey,
    QuerySpec,
    parse_spec_tokens,
    parse_wire_query,
)

if TYPE_CHECKING:  # pragma: no cover — for static analyzers only
    from .facade import Graph, Repro, connect, open

__all__ = [
    "ALGORITHMS",
    "AUTO",
    "COHESIONS",
    "KERNEL_ALGORITHMS",
    "MODES",
    "WIRE_VERSION",
    "FamilyKey",
    "Graph",
    "QuerySpec",
    "Repro",
    "ResultSet",
    "connect",
    "open",
    "parse_spec_tokens",
    "parse_wire_query",
]

#: Facade symbols resolved on first access (PEP 562): the facade imports
#: the service/server stacks, which themselves import repro.api.spec —
#: eager loading here would cycle.
_LAZY = ("Graph", "Repro", "connect", "open")


def __getattr__(name: str):
    if name in _LAZY:
        from . import facade

        return getattr(facade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
