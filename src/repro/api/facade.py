"""The ``repro.open(...)`` / ``repro.connect(...)`` facade.

One public entry point, two backends, the same API::

    import repro

    with repro.open() as rp:                      # in-process engine
        rs = rp.graph("email").topk(k=10, gamma=5)

    with repro.connect(port=8642) as rp:          # remote server
        rs = rp.graph("email").topk(k=10, gamma=5)

Both paths return :class:`~repro.api.resultset.ResultSet` objects built
from the same :class:`~repro.api.spec.QuerySpec`; the only difference is
whether ``fetch(k)`` dispatches to an in-process
:class:`~repro.service.engine.QueryEngine` or ships the spec's wire
encoding to a running :class:`~repro.server.transport.ReproServer`.
The remote backend runs a private asyncio loop on a daemon thread, so
the facade is synchronous in both cases — callers never touch asyncio.
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace
from typing import Any, List, Optional

from ..errors import ServiceError
from ..obs.trace import Tracer
from ..service.cache import ResultCache
from ..service.engine import QueryEngine
from ..service.metrics import ServiceMetrics
from ..service.registry import GraphRegistry
from .resultset import ResultSet
from .spec import QuerySpec

__all__ = ["Graph", "Repro", "open", "connect"]


class Graph:
    """A named graph under a :class:`Repro` facade — the query surface.

    The same object fronts a local registry entry or a remote server's
    graph; :meth:`topk` is the one query method either way.
    """

    def __init__(self, repro: "Repro", name: str) -> None:
        self._repro = repro
        self.name = name
        self._fetch = repro._backend.fetch  # bound once, per-query cost: 0

    def spec(self, **params: Any) -> QuerySpec:
        """A :class:`QuerySpec` against this graph (kwargs = fields)."""
        return QuerySpec(graph=self.name, **params)

    def topk(
        self, spec: Optional[QuerySpec] = None, **params: Any
    ) -> ResultSet:
        """The lazy top-k answer for ``spec`` (or for field kwargs).

        ``g.topk(k=5, gamma=10)`` and ``g.topk(QuerySpec(...))`` are
        equivalent; a spec naming a different graph is re-pointed at
        this one.
        """
        if spec is None:
            spec = self.spec(**params)
        elif params:
            raise TypeError("pass either a QuerySpec or field kwargs, not both")
        elif spec.graph != self.name:
            spec = replace(spec, graph=self.name)
        return ResultSet(spec, self._fetch)

    def mutate(self, ops):
        """Apply an edge-mutation batch to this graph (local backends).

        ``ops`` is an iterable of label-level op tuples —
        ``("insert", u, v)`` / ``("delete", u, v)`` /
        ``("reweight", v, w)`` — or an already-built
        :class:`~repro.graph.delta.EdgeBatch`.  Returns the registry's
        :class:`~repro.service.registry.MutationEvent`.
        """
        return self._repro.mutate(self.name, ops)

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} via {self._repro!r}>"


class Repro:
    """The facade over one backend (in-process engine or remote client).

    Obtain one via :func:`open` or :func:`connect`; both give the same
    surface: :meth:`graph` -> :class:`Graph` -> ``topk(spec)`` ->
    :class:`ResultSet`.
    """

    def __init__(self, backend: "_Backend") -> None:
        self._backend = backend
        self._fetch = backend.fetch  # bound once, shared by every query

    # ------------------------------------------------------------------
    def graph(self, name: Optional[str] = None) -> Graph:
        """A handle on graph ``name`` (or the backend's default graph,
        e.g. the edge list :func:`open` was pointed at)."""
        if name is None:
            name = self._backend.default_graph
            if name is None:
                raise ServiceError(
                    "no default graph: pass a name to .graph(...) or "
                    "open(...) an edge list"
                )
        return Graph(self, name)

    def graphs(self) -> List[str]:
        """Names of every graph the backend can serve."""
        return self._backend.graphs()

    def topk(self, spec: Optional[QuerySpec] = None, **params: Any) -> ResultSet:
        """The lazy answer for ``spec`` (which names its own graph)."""
        if spec is None:
            spec = QuerySpec(**params)
        elif params:
            raise TypeError("pass either a QuerySpec or field kwargs, not both")
        # A pre-bound method, not a closure: the whole facade cost per
        # query is one ResultSet allocation (see bench_api_overhead.py).
        return ResultSet(spec, self._fetch)

    def mutate(self, graph: str, ops):
        """Apply an edge-mutation batch through the live registry.

        Local backends only: versions the graph, migrates the cache
        under scoped invalidation, and returns the
        :class:`~repro.service.registry.MutationEvent`.
        """
        registry = getattr(self._backend, "registry", None)
        apply_batch = getattr(registry, "apply", None)
        if apply_batch is None:
            raise ServiceError(
                "this Repro backend does not support live mutations"
            )
        return apply_batch(graph, ops)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> QueryEngine:
        """The in-process engine (local backends only)."""
        return self._backend.engine_or_raise()

    @property
    def metrics(self) -> Optional[ServiceMetrics]:
        return getattr(self._backend, "metrics", None)

    def close(self) -> None:
        """Release the backend (closes the remote connection/loop)."""
        self._backend.close()

    def __enter__(self) -> "Repro":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Repro {self._backend.describe()}>"


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class _Backend:
    """What a :class:`Repro` needs from its implementation.

    ``fetch`` may be an instance attribute (the local backend points it
    straight at ``QueryEngine.execute``), so always access it through
    the instance.
    """

    default_graph: Optional[str] = None

    def fetch(self, spec: QuerySpec):  # -> QueryResult
        raise NotImplementedError

    def graphs(self) -> List[str]:
        raise NotImplementedError

    def engine_or_raise(self) -> QueryEngine:
        raise ServiceError("this Repro is remote; it has no local engine")

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return type(self).__name__


class _LocalBackend(_Backend):
    """In-process serving stack: registry + cache + engine."""

    def __init__(
        self,
        registry: GraphRegistry,
        cache: Optional[ResultCache],
        metrics: ServiceMetrics,
        default_graph: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.engine = QueryEngine(
            registry, cache=cache, metrics=metrics, tracer=tracer
        )
        self.default_graph = default_graph
        # The facade's whole query path IS the engine call: no wrapper
        # frame between ResultSet._fetch and QueryEngine.execute.
        self.fetch = self.engine.execute

    def graphs(self) -> List[str]:
        return self.registry.names()

    def engine_or_raise(self) -> QueryEngine:
        return self.engine

    def describe(self) -> str:
        return f"local: {len(self.registry.names())} graphs"


class _RemoteBackend(_Backend):
    """A sync veneer over :class:`~repro.server.client.ReproClient`.

    Owns a private event loop on a daemon thread; every facade call
    round-trips one wire request through it.  ``fetch`` ships the
    spec's versioned wire encoding (``mode=json``, members included so
    views rebuild faithfully) and decodes the response into the same
    :class:`~repro.service.model.QueryResult` shape the local engine
    returns — the ResultSet cannot tell the difference.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        import asyncio

        from ..server.client import ReproClient

        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-api-client", daemon=True
        )
        self._thread.start()
        self._closed = False
        try:
            self._client = self._run(
                ReproClient.connect(host, port=port, unix_path=unix_path)
            )
        except BaseException:
            self._stop_loop()
            raise
        self._where = unix_path if unix_path else f"{host}:{port}"

    def _run(self, coro):
        import asyncio

        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            self.timeout
        )

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    # ------------------------------------------------------------------
    def fetch(self, spec: QuerySpec):
        return self._run(self._client.execute(spec, members=True))

    def graphs(self) -> List[str]:
        lines = self._run(self._client.request("graphs"))
        names = []
        for line in lines:
            name, sep, _ = line.partition(":")
            if sep:
                names.append(name.strip())
        return names

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._run(self._client.close())
        finally:
            self._stop_loop()

    def describe(self) -> str:
        return f"remote: {self._where}"


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def open(
    edges: Optional[str] = None,
    weights: Optional[str] = None,
    *,
    name: Optional[str] = None,
    datasets: bool = True,
    registry: Optional[GraphRegistry] = None,
    cache_size: int = 256,
    max_cached_k: Optional[int] = None,
    metrics: Optional[ServiceMetrics] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[Any] = None,
) -> Repro:
    """An in-process :class:`Repro` facade.

    Parameters
    ----------
    edges / weights:
        Optional SNAP-style edge-list (and weight) file to register;
        it becomes the facade's *default graph* (``rp.graph()`` with no
        name).  Without it the stand-in datasets are the whole registry.
    name:
        Registration name for ``edges`` (default: the file's basename
        without extension).
    datasets:
        Preload the stand-in dataset loaders (lazy — nothing is built
        until first query).
    registry:
        Bring your own :class:`GraphRegistry` instead (e.g. one shared
        with a server); ``datasets`` is then ignored.
    cache_size / max_cached_k:
        Result-cache geometry; ``cache_size=0`` disables caching
        entirely (every query recomputes — benchmarking baseline).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; the facade's engine
        is the serving edge here, so its sampling mints ``query`` root
        traces, retained in ``tracer.store``.
    profiler:
        Optional :class:`~repro.obs.profiling.OnDemandProfiler`
        attached to the engine's execute path, so ``capture()`` windows
        see the facade's live queries.
    """
    if registry is None:
        registry = GraphRegistry(preload_datasets=datasets)
    default_graph: Optional[str] = None
    if edges is not None:
        if name is None:
            name = os.path.splitext(os.path.basename(edges))[0] or "graph"
        registry.register_edge_list(name, edges, weights, replace=True)
        default_graph = name
    elif weights is not None:
        raise ValueError("weights= requires edges=")
    cache = (
        ResultCache(cache_size, max_cached_k=max_cached_k)
        if cache_size
        else None
    )
    backend = _LocalBackend(
        registry,
        cache,
        metrics if metrics is not None else ServiceMetrics(),
        default_graph=default_graph,
        tracer=tracer,
    )
    if profiler is not None:
        backend.engine.profiler = profiler
    return Repro(backend)


def connect(
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    timeout: float = 60.0,
) -> Repro:
    """A :class:`Repro` facade over a running ``repro serve`` process.

    Mirrors :func:`open`: the returned object exposes the identical
    ``graph(...).topk(spec)`` surface, backed by the server's shared
    cache, batch coalescing, and shard pool instead of a private
    engine.
    """
    return Repro(
        _RemoteBackend(host, port=port, unix_path=unix_path, timeout=timeout)
    )
