"""Cluster tier — multi-process scale-out vs the threaded ShardPool.

The serving claims of the :mod:`repro.cluster` subsystem (ISSUE 5),
measured on a ~100k-vertex Chung-Lu power-law graph with planted dense
blocks (the same stand-in shape as ``bench_kernel_peel.py``):

* **scale-out** — a CPU-bound cold workload (16 distinct query
  families, each a whole-graph ``kernel=array`` peel) executed through
  ``--workers 4`` process workers achieves at least **1.8x** the
  throughput of the 4-thread ShardPool on the *same* workload: the
  threads serialise on the GIL, the processes do not.  The sweep runs
  workers = 1 / 2 / 4 so the report shows the scaling curve, not one
  point.
* **byte identity** — progressive ``extend_to`` continuations return
  byte-identical results (same JSON document, field for field) across
  the threaded in-process path, the pickle-per-worker fallback, and the
  shared-memory-attached execution.
* **progressive throughput** — reported (not gated): warm
  ``extend_to`` extensions across 16 families per backend.

Machines with a single usable core cannot exhibit process scale-out by
construction; the speedup gate is skipped (and recorded in the report)
when ``os.cpu_count() < 2`` — CI runners provide the cores that make
the gate meaningful.

Run standalone (asserts the gates and writes a JSON report for CI)::

    python benchmarks/bench_cluster_scaleout.py [--output report.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.server.shards import ShardPool
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.registry import GraphRegistry
from repro.workloads.generators import (
    build_weighted_graph,
    chung_lu,
    planted_dense_blocks,
)

N = 100_000
AVG_DEGREE = 8.0
SEED = 7
GRAPH = "big"
KERNEL = "array"  # the pure-CPython CPU-bound kernel: worst GIL case

#: Distinct cold families: every (gamma, delta) pair peels essentially
#: the whole graph (few or no communities survive these gammas) — heavy
#: CPU per query, tiny result payloads.
COLD_GAMMAS = (34, 35, 36, 37, 38, 39, 40, 41)
COLD_DELTAS = (2.0, 2.5)
COLD_K = 16

#: Progressive families: community-rich gammas whose cursors extend.
PROG_GAMMAS = (6, 7, 8, 9, 10, 11, 12, 13)
PROG_WARM_K = 8
PROG_EXTEND_K = 64

PROG_FAMILY_COUNT = len(PROG_GAMMAS) * len(COLD_DELTAS)

WORKER_COUNTS = (1, 2, 4)
THREAD_SHARDS = 4
SPEEDUP_FLOOR = 1.8


def build_graph():
    n, edges = chung_lu(N, AVG_DEGREE, seed=SEED)
    edges = planted_dense_blocks(
        n, edges, num_blocks=24, block_size=60, p_in=0.6, seed=SEED
    )
    graph = build_weighted_graph(n, edges, weights="degree", seed=SEED)
    graph.csr().lists()  # pre-flatten, as GraphRegistry does
    return graph


def fresh_stack(graph):
    registry = GraphRegistry(preload_datasets=False, prebuild_csr=False)
    registry.register(GRAPH, lambda: graph)
    registry.get(GRAPH)  # pin (the loader returns the shared build)
    cache = ResultCache(256)
    engine = QueryEngine(registry, cache=cache)
    return registry, cache, engine


def cold_specs() -> List[QuerySpec]:
    return [
        QuerySpec(graph=GRAPH, gamma=gamma, k=COLD_K, delta=delta, kernel=KERNEL)
        for gamma in COLD_GAMMAS
        for delta in COLD_DELTAS
    ]


def prog_specs(k: int) -> List[QuerySpec]:
    return [
        QuerySpec(graph=GRAPH, gamma=gamma, k=k, delta=delta, kernel=KERNEL)
        for gamma in PROG_GAMMAS
        for delta in COLD_DELTAS
    ]


async def run_concurrent(pool, engine, specs) -> float:
    """Submit every spec at once through the pool; seconds to drain."""
    started = time.perf_counter()
    await asyncio.gather(
        *(pool.execute_spec(engine, spec) for spec in specs)
    )
    return time.perf_counter() - started


def measure_threaded(graph) -> Dict[str, float]:
    registry, cache, engine = fresh_stack(graph)
    pool = ShardPool(THREAD_SHARDS, replication={GRAPH: THREAD_SHARDS})
    try:
        cold_seconds = asyncio.run(run_concurrent(pool, engine, cold_specs()))
        asyncio.run(run_concurrent(pool, engine, prog_specs(PROG_WARM_K)))
        prog_seconds = asyncio.run(
            run_concurrent(pool, engine, prog_specs(PROG_EXTEND_K))
        )
    finally:
        pool.shutdown()
    return {
        "backend": "thread",
        "shards": THREAD_SHARDS,
        "cold_seconds": cold_seconds,
        "cold_qps": len(cold_specs()) / cold_seconds,
        "progressive_seconds": prog_seconds,
        "progressive_qps": PROG_FAMILY_COUNT / prog_seconds,
    }


def measure_cluster(graph, workers: int, use_shared_memory=None) -> Dict[str, float]:
    registry, cache, engine = fresh_stack(graph)
    pool = ClusterPool(
        workers, registry, cache=cache, use_shared_memory=use_shared_memory
    )
    try:
        pool.warm(GRAPH)  # pay attach + list rebuild before the clock
        cold_seconds = asyncio.run(run_concurrent(pool, engine, cold_specs()))
        asyncio.run(run_concurrent(pool, engine, prog_specs(PROG_WARM_K)))
        prog_seconds = asyncio.run(
            run_concurrent(pool, engine, prog_specs(PROG_EXTEND_K))
        )
    finally:
        pool.shutdown()
    return {
        "backend": "process",
        "workers": workers,
        "shared_memory": pool.use_shared_memory,
        "cold_seconds": cold_seconds,
        "cold_qps": len(cold_specs()) / cold_seconds,
        "progressive_seconds": prog_seconds,
        "progressive_qps": PROG_FAMILY_COUNT / prog_seconds,
    }


def identity_report(graph) -> Dict[str, object]:
    """Cold + ``extend_to`` documents across the three execution paths."""
    spec_cold = QuerySpec(graph=GRAPH, gamma=10, k=4, kernel=KERNEL)
    spec_ext = QuerySpec(graph=GRAPH, gamma=10, k=12, kernel=KERNEL)

    def canonical(result) -> str:
        doc = result.to_dict()
        # Placement + timing provenance legitimately differ per path;
        # everything else must be byte-identical.
        doc.pop("worker", None)
        doc.pop("elapsed_ms", None)
        doc.pop("source", None)
        return json.dumps(doc, sort_keys=True)

    documents: Dict[str, Dict[str, str]] = {}
    registry, cache, engine = fresh_stack(graph)
    engine.execute(spec_cold)
    documents["threaded"] = {
        "cold": canonical(engine.execute(spec_cold)),
        "extended": canonical(engine.execute(spec_ext)),
    }
    for label, use_shm in (("shared-memory", True), ("pickled", False)):
        registry, cache, engine = fresh_stack(graph)
        pool = ClusterPool(1, registry, cache=cache, use_shared_memory=use_shm)
        try:
            pool.execute(engine, spec_cold)
            cold_doc = canonical(pool.execute(engine, spec_cold))
            ext = pool.execute(engine, spec_ext)
            assert ext.source == "extended", ext.source
            documents[label] = {"cold": cold_doc, "extended": canonical(ext)}
        finally:
            pool.shutdown()
    reference = documents["threaded"]
    identical = all(
        documents[label][phase] == reference[phase]
        for label in documents
        for phase in ("cold", "extended")
    )
    return {"identical": identical, "paths": sorted(documents)}


def acceptance(report: dict) -> List[str]:
    failures = []
    if not report["identity"]["identical"]:
        failures.append(
            "(a) identity: extend_to results differ across backends "
            f"({', '.join(report['identity']['paths'])})"
        )
    if report["skipped_low_cores"]:
        return failures  # 1 core cannot scale out; gate not applicable
    threaded_qps = report["threaded"]["cold_qps"]
    cluster4 = next(
        run for run in report["cluster"] if run["workers"] == max(WORKER_COUNTS)
    )
    speedup = cluster4["cold_qps"] / threaded_qps if threaded_qps else 0.0
    report["speedup_4_workers"] = speedup
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"(b) scale-out: {max(WORKER_COUNTS)} workers at "
            f"{speedup:.2f}x threaded < {SPEEDUP_FLOOR}x"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_cluster_scaleout.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    print(f"building {N:,}-vertex graph ({cores} cores visible)...", flush=True)
    graph = build_graph()

    print("identity: threaded vs pickled vs shared-memory...", flush=True)
    identity = identity_report(graph)
    print(f"  byte-identical: {identity['identical']}")

    print(f"threaded baseline ({THREAD_SHARDS} shards)...", flush=True)
    threaded = measure_threaded(graph)
    print(
        f"  cold {threaded['cold_qps']:.2f} q/s, "
        f"progressive {threaded['progressive_qps']:.2f} q/s"
    )

    cluster_runs = []
    for workers in WORKER_COUNTS:
        print(f"cluster backend ({workers} workers)...", flush=True)
        run = measure_cluster(graph, workers)
        cluster_runs.append(run)
        print(
            f"  cold {run['cold_qps']:.2f} q/s "
            f"({run['cold_qps'] / threaded['cold_qps']:.2f}x threaded), "
            f"progressive {run['progressive_qps']:.2f} q/s"
        )

    report = {
        "vertices": N,
        "edges": graph.num_edges,
        "kernel": KERNEL,
        "cold_families": len(cold_specs()),
        "cpu_count": cores,
        "skipped_low_cores": cores < 2,
        "identity": identity,
        "threaded": threaded,
        "cluster": cluster_runs,
    }
    failures = acceptance(report)
    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if report["skipped_low_cores"]:
        print(
            "NOTE: single-core machine — the >=1.8x scale-out gate is "
            "not applicable here and was skipped (identity still gated)."
        )
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    if not report["skipped_low_cores"]:
        print(
            f"acceptance (>= {SPEEDUP_FLOOR}x at {max(WORKER_COUNTS)} workers, "
            "byte-identical backends): PASS "
            f"({report.get('speedup_4_workers', 0.0):.2f}x)"
        )
    else:
        print("acceptance (byte-identical backends): PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
