"""Table 1 — dataset statistics of the synthetic stand-ins.

Regenerates the Table-1 columns (n, m, dmax, davg, γmax) for each
stand-in; the benchmarked operation is the γmax computation (a full core
decomposition), the costliest statistic.  The series printer equivalent:
``python -m repro.bench.experiments --eval table1``.
"""

from __future__ import annotations

import pytest

from repro.graph.metrics import graph_statistics
from repro.workloads.datasets import PAPER_STATS, load_dataset

SMALL = ("email", "youtube", "wiki")


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("name", SMALL)
def bench_statistics(benchmark, name):
    graph = load_dataset(name)
    stats = benchmark.pedantic(
        graph_statistics, args=(graph, name), rounds=2, iterations=1
    )
    paper_n, paper_m, _, _, paper_gamma = PAPER_STATS[name]
    benchmark.extra_info.update(
        n=stats.num_vertices,
        m=stats.num_edges,
        dmax=stats.max_degree,
        davg=round(stats.avg_degree, 2),
        gamma_max=stats.gamma_max,
        paper_n=paper_n,
        paper_m=paper_m,
        paper_gamma_max=paper_gamma,
    )
    assert stats.gamma_max >= 10  # all figures query gamma=10


@pytest.mark.benchmark(group="table1")
def bench_all_eight_standins_loadable(benchmark):
    """All 8 stand-ins build and expose Table-1 statistics."""

    def check():
        names = list(PAPER_STATS)
        sizes = [load_dataset(name).num_edges for name in names]
        return sizes

    sizes = benchmark.pedantic(check, rounds=1, iterations=1)
    assert len(sizes) == 8
    assert sizes[0] == min(sizes)  # email is the smallest, as in Table 1
