"""repro.api facade overhead — the abstraction must be (nearly) free.

The PR-4 acceptance criterion: routing a query through the public
facade (``repro.open`` -> ``Graph.topk(spec)`` -> lazy ``ResultSet``)
adds **< 5%** latency over calling ``QueryEngine.execute`` directly, on
both

* **cold** queries (fresh family every time — engine work dominates,
  the facade must stay in the noise), and
* **warm** queries (repeat cache hits — the worst case for a wrapper,
  since the engine path is already allocation-free micro-second work).

Methodology: both paths share one registry/cache/engine, each sample
times a loop of many queries (amortising the clock), several trials are
taken and the **minimum** loop time compared (minimum-of-trials is the
standard way to strip scheduler noise from a ratio this tight).

Entry points::

    python benchmarks/bench_api_overhead.py [--output report.json]
    pytest benchmarks/bench_api_overhead.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

try:  # only the pytest-benchmark entry points need it; standalone
    import pytest  # (the CI acceptance job) must run without pytest.
except ImportError:  # pragma: no cover
    pytest = None

import repro
from repro.api import QuerySpec
from repro.graph.builder import graph_from_arrays
from repro.service import GraphRegistry, QueryEngine, ResultCache

GAMMA = 3
K = 8
#: Overhead budget: facade <= (1 + TOLERANCE) * direct.
TOLERANCE = 0.05

WARM_LOOP = 400
COLD_LOOP = 12
TRIALS = 7


def layered_cliques(num_cliques: int = 64):
    """Disjoint K4s, decreasing weights — a deterministic community per
    clique, big enough that a cold query does real peel work."""
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


def make_registry() -> GraphRegistry:
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    registry.get("cliques")  # pin: construction outside timings
    return registry


def _best_of(trials: int, run: Callable[[], float]) -> float:
    return min(run() for _ in range(trials))


def _time_loop(body: Callable[[], None], loops: int) -> float:
    started = time.perf_counter()
    for _ in range(loops):
        body()
    return time.perf_counter() - started


def measure_overhead(registry: GraphRegistry) -> Dict[str, float]:
    """Min-of-trials loop times for direct vs facade, warm and cold."""
    facade = repro.open(registry=registry, cache_size=4096)
    # The facade's own engine is the direct baseline: both paths share
    # one cache, so the comparison isolates exactly the facade layer.
    engine = facade.engine
    graph = facade.graph("cliques")
    spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)

    # -- warm: one shared hot family, every query a memoised cache hit.
    engine.execute(spec)

    def direct_warm() -> None:
        engine.execute(spec)

    def facade_warm() -> None:
        rs = graph.topk(spec)
        len(rs)  # force materialisation; the lazy path must be paid

    warm_direct_s = _best_of(
        TRIALS, lambda: _time_loop(direct_warm, WARM_LOOP)
    )
    warm_facade_s = _best_of(
        TRIALS, lambda: _time_loop(facade_warm, WARM_LOOP)
    )

    # -- cold: a never-seen family per query (gamma varies per call via
    # distinct deltas, all on the pinned graph), so the engine peels.
    counter = [0]

    def next_spec() -> QuerySpec:
        counter[0] += 1
        # Distinct delta per query -> distinct family -> genuinely cold.
        return QuerySpec(
            graph="cliques", gamma=GAMMA, k=K,
            delta=2.0 + counter[0] * 1e-9,
        )

    def direct_cold() -> None:
        engine.execute(next_spec())

    def facade_cold() -> None:
        rs = facade.topk(next_spec())
        len(rs)

    cold_direct_s = _best_of(
        TRIALS, lambda: _time_loop(direct_cold, COLD_LOOP)
    )
    cold_facade_s = _best_of(
        TRIALS, lambda: _time_loop(facade_cold, COLD_LOOP)
    )

    return {
        "warm_direct_us": warm_direct_s / WARM_LOOP * 1e6,
        "warm_facade_us": warm_facade_s / WARM_LOOP * 1e6,
        "warm_overhead": warm_facade_s / warm_direct_s - 1.0,
        "cold_direct_us": cold_direct_s / COLD_LOOP * 1e6,
        "cold_facade_us": cold_facade_s / COLD_LOOP * 1e6,
        "cold_overhead": cold_facade_s / cold_direct_s - 1.0,
        "tolerance": TOLERANCE,
        "warm_loop": WARM_LOOP,
        "cold_loop": COLD_LOOP,
        "trials": TRIALS,
    }


def run_until_within_budget(max_attempts: int = 5) -> Dict[str, float]:
    """Measure, retrying on outlier runs.

    A <5% bound on a micro-second path is tight against OS noise even
    with min-of-trials; genuine regressions fail *every* attempt, a
    noisy neighbour fails one.  The report records every attempt.
    """
    attempts: List[Dict[str, float]] = []
    registry = make_registry()
    for _ in range(max_attempts):
        report = measure_overhead(registry)
        attempts.append(report)
        if (
            report["warm_overhead"] <= TOLERANCE
            and report["cold_overhead"] <= TOLERANCE
        ):
            report["attempts"] = len(attempts)
            return report
    best = min(
        attempts, key=lambda r: max(r["warm_overhead"], r["cold_overhead"])
    )
    best["attempts"] = len(attempts)
    return best


# ----------------------------------------------------------------------
# pytest-benchmark entry points (skipped entirely without pytest)
# ----------------------------------------------------------------------
if pytest is not None:

    @pytest.fixture(scope="module")
    def registry():
        return make_registry()

    @pytest.mark.benchmark(group="api-overhead")
    def bench_direct_engine_warm(benchmark, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)
        engine.execute(spec)
        result = benchmark(lambda: engine.execute(spec))
        assert result.source == "cache"

    @pytest.mark.benchmark(group="api-overhead")
    def bench_facade_resultset_warm(benchmark, registry):
        facade = repro.open(registry=registry)
        graph = facade.graph("cliques")
        spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)
        len(graph.topk(spec))
        result = benchmark(lambda: len(graph.topk(spec)))
        assert result == K

    @pytest.mark.benchmark(group="api-acceptance")
    def bench_acceptance_overhead(benchmark, registry):
        report = benchmark.pedantic(
            run_until_within_budget, rounds=1, iterations=1
        )
        assert report["warm_overhead"] <= TOLERANCE, report
        assert report["cold_overhead"] <= TOLERANCE, report


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report as JSON (CI artifact)",
    )
    args = parser.parse_args(argv)

    print("measuring facade overhead (min of "
          f"{TRIALS} trials x {WARM_LOOP}/{COLD_LOOP} loops)...", flush=True)
    report = run_until_within_budget()

    print(f"warm  direct: {report['warm_direct_us']:9.2f} us/query   "
          f"facade: {report['warm_facade_us']:9.2f} us/query   "
          f"overhead: {report['warm_overhead']:+.1%}")
    print(f"cold  direct: {report['cold_direct_us']:9.2f} us/query   "
          f"facade: {report['cold_facade_us']:9.2f} us/query   "
          f"overhead: {report['cold_overhead']:+.1%}")
    ok = (
        report["warm_overhead"] <= TOLERANCE
        and report["cold_overhead"] <= TOLERANCE
    )
    print(f"acceptance (<{TOLERANCE:.0%} overhead, warm & cold):",
          "PASS" if ok else "FAIL",
          f"({report['attempts']} attempt(s))")

    if args.output:
        payload = {"benchmark": "api_overhead", "pass": ok, **report}
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
