"""Figure 16 — OnlineAll-SE vs LocalSearch-SE total time (disk-resident).

Both algorithms run against the same file-backed, weight-ordered edge
store.  Paper shape: LocalSearch-SE wins decisively — it reads only the
weight prefix it needs, while OnlineAll-SE streams the entire edge file
before its global sweep.  Series printer: ``--eval fig16``.
"""

from __future__ import annotations

import pytest

from repro.baselines import local_search_se, online_all_se

from conftest import fresh_store

K_SWEEP = (10, 50, 100)


@pytest.mark.benchmark(group="fig16-localsearch-se")
@pytest.mark.parametrize("gamma", (10, 15))
@pytest.mark.parametrize("k", K_SWEEP)
def bench_local_search_se(benchmark, gamma, k, youtube, youtube_store_path):
    def run():
        store = fresh_store(youtube_store_path)
        return local_search_se(youtube, store, k, gamma)

    result = benchmark(run)
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig16-onlineall-se")
@pytest.mark.parametrize("gamma", (10, 15))
def bench_online_all_se(benchmark, gamma, youtube, youtube_store_path):
    def run():
        store = fresh_store(youtube_store_path)
        return online_all_se(youtube, store, 10, gamma)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.communities) == 10


@pytest.mark.benchmark(group="fig16-agreement")
def bench_se_agreement(benchmark, youtube, youtube_store_path):
    def run():
        a = local_search_se(
            youtube, fresh_store(youtube_store_path), 10, 10
        ).influences
        b = online_all_se(
            youtube, fresh_store(youtube_store_path), 10, 10
        ).influences
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
