"""Figure 15 — LocalSearch vs LocalSearch-P, total processing time.

Paper shape: nearly identical, with LocalSearch-P slightly ahead despite
its early reporting, because it shares peel work across rounds.
Series printer: ``--eval fig15``.
"""

from __future__ import annotations

import pytest

from repro.core.local_search import LocalSearch
from repro.core.progressive import LocalSearchP

K_SWEEP = (10, 50, 100)


@pytest.mark.benchmark(group="fig15-localsearch")
@pytest.mark.parametrize("gamma", (10, 50))
@pytest.mark.parametrize("k", K_SWEEP)
def bench_local_search(benchmark, gamma, k, arabic):
    searcher = LocalSearch(arabic, gamma=gamma)
    result = benchmark(lambda: searcher.search(k))
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig15-localsearch-p")
@pytest.mark.parametrize("gamma", (10, 50))
@pytest.mark.parametrize("k", K_SWEEP)
def bench_local_search_p(benchmark, gamma, k, arabic):
    result = benchmark(lambda: LocalSearchP(arabic, gamma=gamma).run(k=k))
    assert len(result.communities) == k
