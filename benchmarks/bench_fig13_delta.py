"""Figure 13 — the exponential growth ratio δ (k=10, γ=10).

Paper shape: running time is similar for nearby δ, generally increases
for large δ (prefix overshoot), and δ ≈ 2 performs best — matching the
2δ²/(δ−1) analysis of Section 3.3.  Series printer: ``--eval fig13``.
"""

from __future__ import annotations

import pytest

from repro.core.progressive import LocalSearchP

DELTAS = (1.5, 2.0, 4.0, 16.0, 64.0, 128.0)


@pytest.mark.benchmark(group="fig13-delta")
@pytest.mark.parametrize("delta", DELTAS)
@pytest.mark.parametrize("name", ("wiki", "arabic"))
def bench_delta(benchmark, delta, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(
        lambda: LocalSearchP(graph, gamma=10, delta=delta).run(k=10)
    )
    assert len(result.communities) == 10


@pytest.mark.benchmark(group="fig13-delta")
def bench_delta_answers_invariant(benchmark, wiki):
    """All δ values return the same communities (only speed differs)."""

    def run():
        return [
            tuple(LocalSearchP(wiki, gamma=10, delta=d).run(k=10).influences)
            for d in DELTAS
        ]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(set(answers)) == 1
