"""repro.live acceptance — warm serving under streaming edge mutations.

The claim of the :mod:`repro.live` tier (versioned CSR overlays +
scoped cache invalidation): a serving stack that *mutates in place*
keeps its result cache warm across graph-version flips, because a
cached family whose influence watermark clears the mutation's barrier
weight provably still holds byte-identical answers.  The strawman —
what every mutation costs without the tier — rebuilds the graph from
scratch and boots a cold cache on each batch.

The workload models a live deployment:

* a graph whose community structure lives in the high-weight **head**
  (planted dense blocks) while a churning low-weight **tail** absorbs
  the edge stream — mutations land where influential communities
  aren't, which is exactly the case scoped invalidation exists for;
* one ``delta_stream`` mutation batch per tick, scoped to the tail;
* per tick, a zipf-distributed working set of query families (the
  server's coalescing layer already folds same-tick duplicates, so
  each family runs once per tick).

Gates:

* **(a) byte identity** — every answer served by the live path (warm
  cache hits included) equals a scratch rebuild of the mutated model,
  field for field, every tick;
* **(b) warm hit rate** — the live path's cache hit rate is at least
  **10x** the full-rebuild strawman's (whose per-mutation cold cache
  pins it at ~zero);
* **(c) plumbing** — every tick applied exactly one mutation, scoped
  invalidation preserved families, and background compaction folded
  the delta chain at least once;
* **(d) cluster hygiene** — the same stream served through a 2-worker
  ClusterPool (workers catch up via delta batches over the pipe, no
  restart) still matches the scratch oracle and leaks no
  ``/dev/shm/repro-csr*`` segments after shutdown.  Runs under
  whatever ``REPRO_MP_START`` names (the CI fork/spawn matrix).

Run standalone (asserts the gates and writes a JSON report for CI)::

    python benchmarks/bench_live_mutations.py [--output report.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import random
import sys
import time
from bisect import bisect_right
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.graph.builder import graph_from_arrays
from repro.graph.delta import apply_ops_to_model
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.metrics import ServiceMetrics
from repro.service.registry import GraphRegistry
from repro.workloads.generators import delta_stream

SEED = 17
GRAPH = "live"

N = 12_000
#: Head: dense blocks among the highest-weight labels — the communities
#: every top-k answer is made of.
NUM_BLOCKS = 16
BLOCK = 32
P_IN = 0.75
#: Tail: the lowest-weight labels; the whole mutation stream lands here.
TAIL = 1_536

#: Family universe (cache keys): gamma x delta at one k.
GAMMAS = (8, 9, 10, 11, 12, 13, 14, 15)
DELTAS = (1.5, 2.0, 2.5)
K = 4

TICKS = 20
OPS_PER_TICK = 6
FAMILIES_PER_TICK = 6
ZIPF_S = 1.2

HIT_RATE_RATIO_FLOOR = 10.0
HIT_RATE_FLOOR = 0.6

CLUSTER_TICKS = 3
SHM_PATTERN = "/dev/shm/repro-csr*"


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_model(rng: random.Random) -> Tuple[List[Tuple[int, int]], List[float]]:
    """Edge list + label-descending weights: head blocks, sparse tail."""
    edges = set()
    for block in range(NUM_BLOCKS):
        base = block * BLOCK
        for i in range(BLOCK):
            for j in range(i + 1, BLOCK):
                if rng.random() < P_IN:
                    edges.add((base + i, base + j))
    # Sparse background so the graph is not just islands (far too thin
    # to grow a gamma-core anywhere near the queried gammas).
    for _ in range(N):
        u, v = rng.randrange(N), rng.randrange(N)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    # Extra churn material inside the tail: deletes need edges to eat.
    offset = N - TAIL
    for _ in range(2 * TAIL):
        u = offset + rng.randrange(TAIL)
        v = offset + rng.randrange(TAIL)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    weights = [float(N - i) for i in range(N)]
    return sorted(edges), weights


def tail_mutation_stream(rng: random.Random, edges, weights):
    """An infinite ``delta_stream`` whose ops touch only tail labels.

    The stream runs over the tail's sub-model (labels remapped to
    ``0..TAIL``) and each emitted op is shifted back to graph labels —
    every barrier stays far below the head communities' influence.
    """
    offset = N - TAIL
    sub_edges = [
        (u - offset, v - offset)
        for (u, v) in edges
        if u >= offset and v >= offset
    ]
    sub_weights = weights[offset:]
    stream = delta_stream(
        rng, TAIL, sub_edges, sub_weights, ops_per_batch=OPS_PER_TICK
    )
    for batch in stream:
        yield [
            ("reweight", op[1] + offset, op[2])
            if op[0] == "reweight"
            else (op[0], op[1] + offset, op[2] + offset)
            for op in batch.ops
        ]


def family_universe() -> List[QuerySpec]:
    return [
        QuerySpec(graph=GRAPH, gamma=gamma, k=K, delta=delta)
        for gamma in GAMMAS
        for delta in DELTAS
    ]


class ZipfPicker:
    """Zipf(``s``) draws over a (shuffled) family list, via inverse CDF."""

    def __init__(self, rng: random.Random, families: List[QuerySpec]) -> None:
        self.families = list(families)
        rng.shuffle(self.families)
        cum, total = [], 0.0
        for rank in range(1, len(self.families) + 1):
            total += 1.0 / rank ** ZIPF_S
            cum.append(total)
        self._cum, self._total = cum, total

    def tick(self, rng: random.Random) -> List[QuerySpec]:
        """This tick's working set: zipf draws deduped to a fixed size."""
        chosen: List[QuerySpec] = []
        seen = set()
        while len(chosen) < FAMILIES_PER_TICK:
            index = bisect_right(self._cum, rng.random() * self._total)
            if index not in seen:
                seen.add(index)
                chosen.append(self.families[index])
        return chosen


# ----------------------------------------------------------------------
# The two serving paths
# ----------------------------------------------------------------------


def live_stack(edges, weights):
    registry = GraphRegistry(preload_datasets=False, prebuild_csr=False)
    registry.register(GRAPH, lambda: graph_from_arrays(N, edges, weights=weights))
    registry.get(GRAPH)
    cache = ResultCache(256)
    metrics = ServiceMetrics()
    engine = QueryEngine(registry, cache=cache, metrics=metrics)
    return registry, cache, metrics, engine


def scratch_engine(model_edges, model_weights) -> QueryEngine:
    """The strawman's world after one mutation: full rebuild, cold cache."""
    edges = sorted(model_edges)
    weights = [model_weights[i] for i in range(N)]
    registry = GraphRegistry(preload_datasets=False, prebuild_csr=False)
    registry.register(GRAPH, lambda: graph_from_arrays(N, edges, weights=weights))
    return QueryEngine(registry, cache=ResultCache(256))


def canonical(result) -> str:
    doc = result.to_dict()
    # Provenance and cache-state metadata legitimately differ between
    # a warm live answer and a cold scratch rebuild: the graph version
    # counter (per-process), placement, timing, the serving source,
    # and the completeness flag (scoped migration deliberately forgets
    # completeness because the stream *below* the watermark may have
    # changed).  The answer itself — communities, influences, members,
    # algorithm, kernel, parameters — must be byte-identical.
    for key in ("graph_version", "worker", "elapsed_ms", "source", "complete"):
        doc.pop(key, None)
    return json.dumps(doc, sort_keys=True)


def run_streams(report: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    rng = random.Random(SEED)
    edges, weights = build_model(rng)
    report["vertices"] = N
    report["edges"] = len(edges)

    registry, cache, metrics, engine = live_stack(edges, weights)
    mutations = tail_mutation_stream(random.Random(SEED + 1), edges, weights)
    picker = ZipfPicker(random.Random(SEED + 2), family_universe())
    workload_rng = random.Random(SEED + 3)

    model_edges = set(edges)
    model_weights = {i: w for i, w in enumerate(weights)}

    live_queries = live_hits = straw_queries = straw_hits = 0
    mismatches = 0
    live_seconds = straw_seconds = 0.0
    for tick in range(TICKS):
        ops = next(mutations)
        families = picker.tick(workload_rng)

        started = time.perf_counter()
        registry.apply(GRAPH, ops)
        live_results = [engine.execute(spec) for spec in families]
        live_seconds += time.perf_counter() - started
        live_queries += len(live_results)
        live_hits += sum(1 for r in live_results if r.source == "cache")

        started = time.perf_counter()
        apply_ops_to_model(model_edges, model_weights, ops)
        oracle = scratch_engine(model_edges, model_weights)
        straw_results = [oracle.execute(spec) for spec in families]
        straw_seconds += time.perf_counter() - started
        straw_queries += len(straw_results)
        straw_hits += sum(1 for r in straw_results if r.source == "cache")

        mismatches += sum(
            1
            for live, scratch in zip(live_results, straw_results)
            if canonical(live) != canonical(scratch)
        )

    live_rate = live_hits / live_queries
    straw_rate = straw_hits / straw_queries
    ratio = live_rate / straw_rate if straw_rate else None
    snapshot = metrics.snapshot()
    live = snapshot.get("live") or {}
    report["stream"] = {
        "ticks": TICKS,
        "ops_per_tick": OPS_PER_TICK,
        "families_per_tick": FAMILIES_PER_TICK,
        "family_universe": len(family_universe()),
        "zipf_s": ZIPF_S,
        "queries": live_queries,
        "mismatches": mismatches,
        "live_hit_rate": live_rate,
        "strawman_hit_rate": straw_rate,
        "hit_rate_ratio": ratio,  # null = strawman never hit at all
        "live_seconds": live_seconds,
        "strawman_seconds": straw_seconds,
        "rebuild_speedup": straw_seconds / live_seconds if live_seconds else None,
        "metrics": live,
    }

    if mismatches:
        failures.append(
            f"(a) identity: {mismatches} live answers differ from the "
            "scratch-rebuild oracle"
        )
    if live_rate < HIT_RATE_FLOOR:
        failures.append(
            f"(b) warm hit rate {live_rate:.3f} < {HIT_RATE_FLOOR}"
        )
    if ratio is not None and ratio < HIT_RATE_RATIO_FLOOR:
        failures.append(
            f"(b) warm hit rate only {ratio:.1f}x the strawman "
            f"(< {HIT_RATE_RATIO_FLOOR}x)"
        )
    if live.get("mutations_applied") != TICKS:
        failures.append(
            f"(c) {live.get('mutations_applied')} mutations applied, "
            f"expected {TICKS}"
        )
    if not live.get("families_preserved"):
        failures.append("(c) scoped invalidation preserved no families")
    if not live.get("compactions"):
        failures.append("(c) background compaction never folded the chain")
    return failures


def run_cluster(report: Dict[str, object]) -> List[str]:
    if not ClusterPool.available():
        report["cluster"] = {"skipped": "multiprocessing unavailable"}
        return []
    failures: List[str] = []
    rng = random.Random(SEED)
    edges, weights = build_model(rng)
    mutations = tail_mutation_stream(random.Random(SEED + 4), edges, weights)
    picker = ZipfPicker(random.Random(SEED + 5), family_universe())
    workload_rng = random.Random(SEED + 6)
    model_edges = set(edges)
    model_weights = {i: w for i, w in enumerate(weights)}

    leaked_before = set(glob.glob(SHM_PATTERN))
    registry, cache, metrics, engine = live_stack(edges, weights)
    pool = ClusterPool(2, registry, cache=cache, metrics=metrics)
    mismatches = hits = queries = 0
    try:
        pool.warm(GRAPH)
        for _ in range(CLUSTER_TICKS):
            ops = next(mutations)
            registry.apply(GRAPH, ops)
            apply_ops_to_model(model_edges, model_weights, ops)
            oracle = scratch_engine(model_edges, model_weights)
            for spec in picker.tick(workload_rng):
                served = pool.execute(engine, spec)
                queries += 1
                hits += served.source == "cache"
                if canonical(served) != canonical(oracle.execute(spec)):
                    mismatches += 1
        attaches = dict(getattr(metrics, "segment_attaches", {}) or {})
    finally:
        pool.shutdown()
    leaked = sorted(set(glob.glob(SHM_PATTERN)) - leaked_before)

    report["cluster"] = {
        "workers": 2,
        "ticks": CLUSTER_TICKS,
        "queries": queries,
        "hits": hits,
        "mismatches": mismatches,
        "segment_attaches": attaches,
        "leaked_segments": leaked,
    }
    if mismatches:
        failures.append(
            f"(d) cluster: {mismatches} answers differ from the oracle"
        )
    if leaked:
        failures.append(f"(d) cluster: leaked segments {leaked}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_live_mutations.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    report: Dict[str, object] = {}
    print(
        f"live stream: {TICKS} ticks x {OPS_PER_TICK} ops, "
        f"{FAMILIES_PER_TICK}/{len(family_universe())} zipf families per tick...",
        flush=True,
    )
    failures = run_streams(report)
    stream = report["stream"]
    ratio = stream["hit_rate_ratio"]
    print(
        f"  hit rate {stream['live_hit_rate']:.3f} live vs "
        f"{stream['strawman_hit_rate']:.3f} strawman "
        f"({'inf' if ratio is None else f'{ratio:.1f}'}x), "
        f"{stream['mismatches']} identity mismatches, "
        f"wall {stream['live_seconds']:.2f}s vs "
        f"{stream['strawman_seconds']:.2f}s rebuild"
    )
    print("cluster tier: delta catch-up + segment hygiene...", flush=True)
    failures += run_cluster(report)
    cluster = report["cluster"]
    if "skipped" in cluster:
        print(f"  skipped: {cluster['skipped']}")
    else:
        print(
            f"  {cluster['queries']} queries ({cluster['hits']} warm), "
            f"{cluster['mismatches']} mismatches, attaches "
            f"{cluster['segment_attaches']}, leaks {cluster['leaked_segments']}"
        )

    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    print(
        f"acceptance (byte-identical, >= {HIT_RATE_RATIO_FLOOR:.0f}x warm "
        "hit rate, compaction, no segment leaks): PASS"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
