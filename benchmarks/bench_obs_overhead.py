"""repro.obs tracing overhead — observability must be (nearly) free.

The PR-6 acceptance criterion: an engine built with a tracer adds
**< 5%** latency over an untraced engine, on both

* **warm** queries (repeat cache hits — micro-second work, the worst
  case for any wrapper) at the *default* sample rate
  (:data:`~repro.obs.trace.DEFAULT_TRACE_SAMPLE`): the hot path is one
  contextvar read plus one counter tick on unsampled queries, and
* **cold** queries (fresh family per query — real peel work) at
  ``sample=1.0``: the full span lifecycle plus kernel phase timestamps
  must vanish into the engine's own milliseconds.

The fully-sampled warm ratio is also *reported* (ungated): a full span
lifecycle is ~5 us of real work against a ~15 us cache hit, which is
exactly why sampling — not span cheapness — is the hot-path story.

The PR-7 criterion rides along: a :class:`~repro.obs.history.MetricsHistory`
collector thread sampling the engine's live ``ServiceMetrics`` at the
default 1 s cadence adds **< 2%** latency on the same warm-sampled and
cold-traced workloads.  The collector reads ``snapshot()`` once per
interval on its own thread; the query path itself gains zero code, so
the only possible cost is GIL pressure — that is what the gate pins.

Methodology mirrors ``bench_api_overhead.py``: shared registry,
per-variant caches (identical hit behaviour), loop timings, and the
minimum over several trials to strip scheduler noise.

Entry points::

    python benchmarks/bench_obs_overhead.py [--output report.json]
    pytest benchmarks/bench_obs_overhead.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

try:  # only the pytest-benchmark entry points need it; standalone
    import pytest  # (the CI acceptance job) must run without pytest.
except ImportError:  # pragma: no cover
    pytest = None

from repro.api import QuerySpec
from repro.graph.builder import graph_from_arrays
from repro.obs.history import MetricsHistory
from repro.obs.trace import DEFAULT_TRACE_SAMPLE, Tracer
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
)

GAMMA = 3
K = 8
#: Cold queries ask for a deep answer: LocalSearch-P is progressive, so
#: a small k stops after a few communities no matter the graph size —
#: real cold work means actually peeling a real slice of the graph.
COLD_K = 128
#: Overhead budget: traced <= (1 + TOLERANCE) * untraced.
TOLERANCE = 0.05
#: History-collector budget: with-collector <= (1 + this) * without.
HISTORY_TOLERANCE = 0.02
#: The collector cadence under test — the `repro serve` default.
HISTORY_INTERVAL_S = 1.0

WARM_LOOP = 400
COLD_LOOP = 12
TRIALS = 7


def layered_cliques(num_cliques: int = 256):
    """Disjoint K4s — a deterministic community per clique, sized so a
    cold query does peel work on the order of a small real dataset (a
    trace records a fixed ~10 us of span/phase bookkeeping per query;
    the cold gate is about that cost vanishing into real kernel time,
    so the cold workload must not be microscopic)."""
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


def make_registry() -> GraphRegistry:
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    registry.get("cliques")  # pin: construction outside timings
    return registry


def _best_of(trials: int, run: Callable[[], float]) -> float:
    return min(run() for _ in range(trials))


def _time_loop(body: Callable[[], None], loops: int) -> float:
    started = time.perf_counter()
    for _ in range(loops):
        body()
    return time.perf_counter() - started


def _engine(registry: GraphRegistry, tracer: Optional[Tracer]) -> QueryEngine:
    # One cache per variant: every engine sees the identical hit/miss
    # sequence, so the ratio isolates exactly the tracing layer.
    return QueryEngine(registry, cache=ResultCache(4096), tracer=tracer)


def _warm_us(engine: QueryEngine) -> float:
    spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)
    engine.execute(spec)  # prime: every timed query is a memoised hit
    return _best_of(
        TRIALS, lambda: _time_loop(lambda: engine.execute(spec), WARM_LOOP)
    )


def _cold_us(engine: QueryEngine, counter: List[int]) -> float:
    def body() -> None:
        counter[0] += 1
        # Distinct delta per query -> distinct family -> genuinely cold.
        engine.execute(
            QuerySpec(
                graph="cliques", gamma=GAMMA, k=COLD_K,
                delta=2.0 + counter[0] * 1e-9,
            )
        )

    return _best_of(TRIALS, lambda: _time_loop(body, COLD_LOOP))


def measure_overhead(registry: GraphRegistry) -> Dict[str, float]:
    """Min-of-trials loop times: untraced vs sampled vs fully traced."""
    baseline = _engine(registry, None)
    sampled = _engine(registry, Tracer(sample=DEFAULT_TRACE_SAMPLE))
    full = _engine(registry, Tracer(sample=1.0))

    warm_base_s = _warm_us(baseline)
    warm_sampled_s = _warm_us(sampled)
    warm_full_s = _warm_us(full)

    counter = [0]
    cold_base_s = _cold_us(baseline, counter)
    cold_full_s = _cold_us(full, counter)

    return {
        "warm_baseline_us": warm_base_s / WARM_LOOP * 1e6,
        "warm_sampled_us": warm_sampled_s / WARM_LOOP * 1e6,
        "warm_full_us": warm_full_s / WARM_LOOP * 1e6,
        "warm_overhead": warm_sampled_s / warm_base_s - 1.0,
        "warm_full_overhead": warm_full_s / warm_base_s - 1.0,  # reported
        "cold_baseline_us": cold_base_s / COLD_LOOP * 1e6,
        "cold_full_us": cold_full_s / COLD_LOOP * 1e6,
        "cold_overhead": cold_full_s / cold_base_s - 1.0,
        "sample": DEFAULT_TRACE_SAMPLE,
        "tolerance": TOLERANCE,
        "warm_loop": WARM_LOOP,
        "cold_loop": COLD_LOOP,
        "trials": TRIALS,
    }


def measure_history_overhead(registry: GraphRegistry) -> Dict[str, float]:
    """Engine + live metrics, with vs without a running collector.

    Both variants meter into a :class:`ServiceMetrics`; the *history*
    variant additionally runs a :class:`MetricsHistory` thread sampling
    that metrics object at the default serve cadence while the timed
    loops execute.  The ratio therefore isolates exactly the collector
    thread's cost to the query path.
    """

    def timed_pair(sample: float, timer: Callable[[QueryEngine], float]):
        base = QueryEngine(
            registry,
            cache=ResultCache(4096),
            metrics=ServiceMetrics(),
            tracer=Tracer(sample=sample),
        )
        base_s = timer(base)
        live_metrics = ServiceMetrics()
        live = QueryEngine(
            registry,
            cache=ResultCache(4096),
            metrics=live_metrics,
            tracer=Tracer(sample=sample),
        )
        history = MetricsHistory(
            live_metrics, interval_s=HISTORY_INTERVAL_S
        )
        history.start()
        try:
            live_s = timer(live)
        finally:
            history.stop()
        return base_s, live_s

    warm_base_s, warm_hist_s = timed_pair(DEFAULT_TRACE_SAMPLE, _warm_us)
    counter = [0]
    cold_base_s, cold_hist_s = timed_pair(
        1.0, lambda engine: _cold_us(engine, counter)
    )
    return {
        "history_warm_baseline_us": warm_base_s / WARM_LOOP * 1e6,
        "history_warm_us": warm_hist_s / WARM_LOOP * 1e6,
        "history_warm_overhead": warm_hist_s / warm_base_s - 1.0,
        "history_cold_baseline_us": cold_base_s / COLD_LOOP * 1e6,
        "history_cold_us": cold_hist_s / COLD_LOOP * 1e6,
        "history_cold_overhead": cold_hist_s / cold_base_s - 1.0,
        "history_interval_s": HISTORY_INTERVAL_S,
        "history_tolerance": HISTORY_TOLERANCE,
    }


def run_history_until_within_budget(
    max_attempts: int = 5, registry: Optional[GraphRegistry] = None
) -> Dict[str, float]:
    """Same outlier-retry shape as :func:`run_until_within_budget` —
    a <2% bound on micro-second loops is even tighter against OS noise
    than the tracing gate's 5%."""
    attempts: List[Dict[str, float]] = []
    if registry is None:
        registry = make_registry()
    for _ in range(max_attempts):
        report = measure_history_overhead(registry)
        attempts.append(report)
        if (
            report["history_warm_overhead"] <= HISTORY_TOLERANCE
            and report["history_cold_overhead"] <= HISTORY_TOLERANCE
        ):
            report["history_attempts"] = len(attempts)
            return report
    best = min(
        attempts,
        key=lambda r: max(
            r["history_warm_overhead"], r["history_cold_overhead"]
        ),
    )
    best["history_attempts"] = len(attempts)
    return best


def run_until_within_budget(max_attempts: int = 5) -> Dict[str, float]:
    """Measure, retrying on outlier runs (same rationale as the api
    bench: a <5% bound on micro-second loops is tight against OS noise;
    genuine regressions fail every attempt, a noisy neighbour one)."""
    attempts: List[Dict[str, float]] = []
    registry = make_registry()
    for _ in range(max_attempts):
        report = measure_overhead(registry)
        attempts.append(report)
        if (
            report["warm_overhead"] <= TOLERANCE
            and report["cold_overhead"] <= TOLERANCE
        ):
            report["attempts"] = len(attempts)
            return report
    best = min(
        attempts, key=lambda r: max(r["warm_overhead"], r["cold_overhead"])
    )
    best["attempts"] = len(attempts)
    return best


# ----------------------------------------------------------------------
# pytest-benchmark entry points (skipped entirely without pytest)
# ----------------------------------------------------------------------
if pytest is not None:

    @pytest.fixture(scope="module")
    def registry():
        return make_registry()

    @pytest.mark.benchmark(group="obs-overhead")
    def bench_engine_untraced_warm(benchmark, registry):
        engine = _engine(registry, None)
        spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)
        engine.execute(spec)
        result = benchmark(lambda: engine.execute(spec))
        assert result.source == "cache"

    @pytest.mark.benchmark(group="obs-overhead")
    def bench_engine_sampled_warm(benchmark, registry):
        engine = _engine(registry, Tracer(sample=DEFAULT_TRACE_SAMPLE))
        spec = QuerySpec(graph="cliques", gamma=GAMMA, k=K)
        engine.execute(spec)
        result = benchmark(lambda: engine.execute(spec))
        assert result.source == "cache"

    @pytest.mark.benchmark(group="obs-acceptance")
    def bench_acceptance_overhead(benchmark, registry):
        report = benchmark.pedantic(
            run_until_within_budget, rounds=1, iterations=1
        )
        assert report["warm_overhead"] <= TOLERANCE, report
        assert report["cold_overhead"] <= TOLERANCE, report

    @pytest.mark.benchmark(group="obs-acceptance")
    def bench_acceptance_history_overhead(benchmark, registry):
        report = benchmark.pedantic(
            run_history_until_within_budget,
            kwargs={"registry": registry},
            rounds=1,
            iterations=1,
        )
        assert report["history_warm_overhead"] <= HISTORY_TOLERANCE, report
        assert report["history_cold_overhead"] <= HISTORY_TOLERANCE, report


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report as JSON (CI artifact)",
    )
    args = parser.parse_args(argv)

    print("measuring tracing overhead (min of "
          f"{TRIALS} trials x {WARM_LOOP}/{COLD_LOOP} loops)...", flush=True)
    report = run_until_within_budget()

    print(f"warm  untraced: {report['warm_baseline_us']:9.2f} us/query   "
          f"sampled@{report['sample']:.2f}: {report['warm_sampled_us']:9.2f} "
          f"us/query   overhead: {report['warm_overhead']:+.1%}")
    print(f"warm  full-sample (reported, ungated): "
          f"{report['warm_full_us']:9.2f} us/query   "
          f"overhead: {report['warm_full_overhead']:+.1%}")
    print(f"cold  untraced: {report['cold_baseline_us']:9.2f} us/query   "
          f"traced@1.0: {report['cold_full_us']:9.2f} us/query   "
          f"overhead: {report['cold_overhead']:+.1%}")
    ok = (
        report["warm_overhead"] <= TOLERANCE
        and report["cold_overhead"] <= TOLERANCE
    )
    print(f"acceptance (<{TOLERANCE:.0%} overhead, warm sampled & cold "
          "full):", "PASS" if ok else "FAIL",
          f"({report['attempts']} attempt(s))")

    print("measuring history-collector overhead "
          f"(@{HISTORY_INTERVAL_S:g}s cadence)...", flush=True)
    history_report = run_history_until_within_budget()
    report.update(history_report)
    print(f"warm  no collector: {report['history_warm_baseline_us']:9.2f} "
          f"us/query   with collector: {report['history_warm_us']:9.2f} "
          f"us/query   overhead: {report['history_warm_overhead']:+.1%}")
    print(f"cold  no collector: {report['history_cold_baseline_us']:9.2f} "
          f"us/query   with collector: {report['history_cold_us']:9.2f} "
          f"us/query   overhead: {report['history_cold_overhead']:+.1%}")
    history_ok = (
        report["history_warm_overhead"] <= HISTORY_TOLERANCE
        and report["history_cold_overhead"] <= HISTORY_TOLERANCE
    )
    print(f"acceptance (<{HISTORY_TOLERANCE:.0%} collector overhead, warm "
          "& cold):", "PASS" if history_ok else "FAIL",
          f"({report['history_attempts']} attempt(s))")
    ok = ok and history_ok

    if args.output:
        payload = {"benchmark": "obs_overhead", "pass": ok, **report}
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
