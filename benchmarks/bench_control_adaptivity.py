"""Control plane — adaptive serving vs every static setting it replaces.

The claim of the :mod:`repro.control` subsystem (ISSUE 10): a workload
whose hot set *moves* cannot be served well by any fixed configuration,
and the adaptive controller — starting from a deliberately bad initial
configuration — beats each of them on **both** p95 latency and
throughput.

The workload is zipf-skewed over (graphs x families): two graphs, each
with a pool of distinct cold query families (``kernel=array``
whole-graph peels) **chosen so they all hash-home onto one worker** —
the pathological placement collision that replication exists to fix.
Mid-run the zipf ranking flips: the hot graph becomes the cold one and
vice versa.  Five arms serve the identical query sequence through a
full :class:`ReproServer` over TCP with ``--workers`` process workers:

* ``default``       — batch window 0, no replication: every phase
  concentrates on a single worker.
* ``window-25ms``   — a fixed 25ms collection window: pure added
  latency for this all-distinct-family workload.
* ``replicate-a``   — graph A pinned wide: right for phase 1, wrong
  after the flip.
* ``replicate-b``   — the mirror image.
* ``adaptive``      — starts from the *worst* static settings (25ms
  window, no replication) and must discover the rest: narrow the
  window, grow the hot graph's fan-out, shrink it after the flip.

Machines with a single usable core cannot exhibit spread-vs-concentrate
margins by construction; the gates are skipped (and recorded) when
``os.cpu_count() < 2`` — CI runners provide the cores.

Run standalone (asserts the gates and writes a JSON report for CI)::

    python benchmarks/bench_control_adaptivity.py [--output report.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.control import (
    AdaptiveController,
    BatchWindowPolicy,
    PlacementPolicy,
    ReplicaPolicy,
)
from repro.server import ReproClient, ReproServer
from repro.workloads.generators import (
    build_weighted_graph,
    chung_lu,
    planted_dense_blocks,
)

N = 16_000
AVG_DEGREE = 8.0
SEED = 7
GRAPHS = ("a", "b")
KERNEL = "array"
WORKERS = 2

#: Queries per phase (phase 1: graph a hot; phase 2: graph b hot).
#: Sized so each phase spans many control intervals — the adaptation
#: lag must be a small fraction of the phase, not the whole of it.
PHASE_QUERIES = 400
CLIENTS = 8
#: Zipf exponent over the 2-graph ranking: ~89% / 11%.
ZIPF_S = 3.0

#: Candidate (gamma, delta) grid mined for hash-colliding families —
#: wide enough that no family ever repeats (a repeat becomes a parent
#: cache hit, which costs no worker CPU and so hides the placement
#: margins the gates measure).
FAMILY_GAMMAS = tuple(range(28, 44))
FAMILY_DELTAS = tuple(2.0 + 0.05 * i for i in range(60))
FAMILIES_PER_GRAPH = 450


def build_graph(seed: int):
    n, edges = chung_lu(N, AVG_DEGREE, seed=seed)
    edges = planted_dense_blocks(
        n, edges, num_blocks=8, block_size=40, p_in=0.6, seed=seed
    )
    graph = build_weighted_graph(n, edges, weights="degree", seed=seed)
    graph.csr().lists()
    return graph


def colliding_families(graph: str, worker: int) -> List[QuerySpec]:
    """Cold families of ``graph`` whose home hashes onto ``worker``.

    Uses the pool's own placement hash so the collision is exact: with
    one copy, every one of these families' cursors lands on the same
    worker process, and only replication (or re-placement) can spread
    them.
    """
    import zlib

    specs = []
    for gamma in FAMILY_GAMMAS:
        for delta in FAMILY_DELTAS:
            spec = QuerySpec(
                graph=graph, gamma=gamma, k=8, delta=delta, kernel=KERNEL
            )
            home = (
                zlib.crc32(ClusterPool._family_bytes(spec.cache_key()))
                % WORKERS
            )
            if home == worker:
                specs.append(spec)
            if len(specs) >= FAMILIES_PER_GRAPH:
                return specs
    return specs


def zipf_pick(rng, ranked):
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(ranked))]
    total = sum(weights)
    point = rng.random() * total
    for item, weight in zip(ranked, weights):
        point -= weight
        if point <= 0:
            return item
    return ranked[-1]


def build_workload() -> List[List[str]]:
    """The full query-line sequence, one list per phase.

    Deterministic (seeded RNG), identical for every arm.  Families
    never repeat — each query is a cold peel, so per-query cost is the
    worker CPU and placement is what differentiates the arms.
    """
    import random

    rng = random.Random(SEED)
    pools = {
        "a": colliding_families("a", worker=0),
        "b": colliding_families("b", worker=1),
    }
    cursors = {name: 0 for name in GRAPHS}
    phases: List[List[str]] = []
    for ranked in (("a", "b"), ("b", "a")):
        lines = []
        for _ in range(PHASE_QUERIES):
            graph = zipf_pick(rng, ranked)
            pool = pools[graph]
            if cursors[graph] >= len(pool):
                raise RuntimeError(
                    f"family pool for {graph!r} exhausted — widen the "
                    "candidate grid so no query repeats"
                )
            spec = pool[cursors[graph]]
            cursors[graph] += 1
            lines.append(
                f"query {spec.graph} k={spec.k} gamma={spec.gamma} "
                f"delta={spec.delta:g} kernel={spec.kernel}"
            )
        phases.append(lines)
    return phases


async def drain_phase(host, port, lines) -> List[float]:
    """Serve one phase's lines through CLIENTS concurrent connections;
    returns per-query latencies (seconds)."""
    queue: asyncio.Queue = asyncio.Queue()
    for line in lines:
        queue.put_nowait(line)
    latencies: List[float] = []

    async def worker():
        client = await ReproClient.connect(host=host, port=port)
        try:
            while True:
                try:
                    line = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                reply = await client.request(line)
                latencies.append(time.perf_counter() - started)
                if reply and reply[0].startswith("error:"):
                    raise RuntimeError(f"arm query failed: {reply[0]}")
        finally:
            await client.close()

    await asyncio.gather(*(worker() for _ in range(CLIENTS)))
    return latencies


def p95(latencies: List[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def fast_controller() -> AdaptiveController:
    """The default policy set at benchmark cadence (seconds, not tens)."""
    return AdaptiveController(
        interval_s=0.15,
        window_s=1.5,
        dwell_s=0.3,
        policies=[
            BatchWindowPolicy(),
            ReplicaPolicy(min_window_queries=6),
            PlacementPolicy(max_moves=4),
        ],
    )


def measure_arm(
    name: str,
    phases: List[List[str]],
    graphs,
    *,
    batch_window_ms: float = 0.0,
    replication: Optional[Dict[str, int]] = None,
    adaptive: bool = False,
) -> Dict[str, object]:
    async def run():
        server = ReproServer(
            preload_datasets=False,
            workers=WORKERS,
            shards=WORKERS,
            batch_window_ms=batch_window_ms,
            replication=replication or {},
            controller=fast_controller() if adaptive else None,
            history_interval=0.1 if adaptive else 1.0,
        )
        for graph_name, graph in graphs.items():
            server.registry.register(graph_name, lambda g=graph: g)
        await server.start(tcp=("127.0.0.1", 0))
        try:
            host, port = server.tcp_address
            for graph_name in GRAPHS:
                server.shards.warm(graph_name)
            started = time.perf_counter()
            latencies = []
            for phase in phases:
                latencies.extend(await drain_phase(host, port, phase))
            elapsed = time.perf_counter() - started
            decisions = (
                len(server.controller.audit())
                if server.controller is not None
                else 0
            )
            final_replication = (
                dict(server.shards.replication_map())
                if hasattr(server.shards, "replication_map")
                else {}
            )
            final_window_ms = server.scheduler.window_s * 1000.0
        finally:
            await server.stop()
        return latencies, elapsed, decisions, final_replication, final_window_ms

    latencies, elapsed, decisions, final_replication, final_window = (
        asyncio.run(run())
    )
    total = len(latencies)
    return {
        "arm": name,
        "queries": total,
        "seconds": elapsed,
        "qps": total / elapsed,
        "p95_ms": p95(latencies) * 1000.0,
        "mean_ms": sum(latencies) / total * 1000.0,
        "decisions": decisions,
        "final_replication": final_replication,
        "final_window_ms": final_window,
    }


def acceptance(report: dict) -> List[str]:
    if report["skipped_low_cores"]:
        return []  # one core cannot spread load; gates not applicable
    failures = []
    arms = {run["arm"]: run for run in report["arms"]}
    adaptive = arms["adaptive"]
    for name, run in arms.items():
        if name == "adaptive":
            continue
        if adaptive["p95_ms"] > run["p95_ms"]:
            failures.append(
                f"(a) p95: adaptive {adaptive['p95_ms']:.1f}ms worse "
                f"than static {name} {run['p95_ms']:.1f}ms"
            )
        if adaptive["qps"] < run["qps"]:
            failures.append(
                f"(b) throughput: adaptive {adaptive['qps']:.2f} q/s "
                f"below static {name} {run['qps']:.2f} q/s"
            )
    if adaptive["decisions"] == 0:
        failures.append("(c) the controller made no decisions at all")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_control_adaptivity.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    print(
        f"building 2x {N:,}-vertex graphs ({cores} cores visible)...",
        flush=True,
    )
    graphs = {"a": build_graph(1), "b": build_graph(2)}
    phases = build_workload()
    print(
        f"workload: {sum(len(p) for p in phases)} queries over "
        f"{len(phases)} phases (hot set flips at the boundary)",
        flush=True,
    )

    arms = []
    for name, kwargs in (
        ("default", {}),
        ("window-25ms", {"batch_window_ms": 25.0}),
        ("replicate-a", {"replication": {"a": WORKERS}}),
        ("replicate-b", {"replication": {"b": WORKERS}}),
        (
            "adaptive",
            {"batch_window_ms": 25.0, "adaptive": True},
        ),
    ):
        print(f"arm {name}...", flush=True)
        run = measure_arm(name, phases, graphs, **kwargs)
        arms.append(run)
        extra = (
            f" decisions={run['decisions']} "
            f"window->{run['final_window_ms']:.0f}ms "
            f"replicas->{run['final_replication']}"
            if name == "adaptive"
            else ""
        )
        print(
            f"  {run['qps']:.2f} q/s, p95 {run['p95_ms']:.1f}ms{extra}",
            flush=True,
        )

    report = {
        "vertices": N,
        "kernel": KERNEL,
        "workers": WORKERS,
        "clients": CLIENTS,
        "phase_queries": PHASE_QUERIES,
        "zipf_s": ZIPF_S,
        "cpu_count": cores,
        "skipped_low_cores": cores < 2,
        "mp_start": os.environ.get("REPRO_MP_START") or "default",
        "arms": arms,
    }
    failures = acceptance(report)
    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if report["skipped_low_cores"]:
        print(
            "NOTE: single-core machine — the adaptive-beats-static gates "
            "are not applicable here and were skipped."
        )
        return 0
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    print(
        "acceptance (adaptive >= every static arm on p95 AND "
        "throughput): PASS"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
