"""Figure 18 — non-containment queries: Forward vs LocalSearch-P.

Paper shape: LocalSearch-P clearly outperforms the non-containment
variant of Forward; NC queries cost somewhat more than containment
queries (the target subgraph is never smaller, Section 5.1).
Series printer: ``--eval fig18``.
"""

from __future__ import annotations

import pytest

from repro.baselines import forward_noncontainment
from repro.core.progressive import LocalSearchP

K_SWEEP = (10, 50, 100)
GAMMA = 10


@pytest.mark.benchmark(group="fig18-localsearch-p-nc")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", ("arabic", "uk"))
def bench_local_search_nc(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(
        lambda: LocalSearchP(graph, gamma=GAMMA, noncontainment=True)
        .run(k=k)
    )
    assert result.communities


@pytest.mark.benchmark(group="fig18-forward-nc")
@pytest.mark.parametrize("name", ("arabic", "uk"))
def bench_forward_nc(benchmark, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark.pedantic(
        forward_noncontainment, args=(graph, 10, GAMMA),
        rounds=1, iterations=1,
    )
    assert result.communities


@pytest.mark.benchmark(group="fig18-agreement")
def bench_nc_agreement(benchmark, arabic):
    def run():
        a = [
            c.influence
            for c in LocalSearchP(arabic, gamma=GAMMA, noncontainment=True)
            .run(k=10).communities
        ]
        b = forward_noncontainment(arabic, 10, GAMMA).influences
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
