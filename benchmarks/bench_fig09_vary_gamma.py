"""Figure 9 — OnlineAll/Forward vs LocalSearch-P (k=10, vary γ).

Paper shape: global algorithms flat in γ; LocalSearch-P grows with γ
(larger γ → smaller influence values → deeper prefixes) yet stays well
below Forward.  Series printer: ``--eval fig9``.
"""

from __future__ import annotations

import pytest

from repro.baselines import forward
from repro.core.progressive import LocalSearchP

GAMMA_SWEEP = (5, 10, 20, 50)
K = 10


@pytest.mark.benchmark(group="fig9-localsearch-p")
@pytest.mark.parametrize("gamma", GAMMA_SWEEP)
@pytest.mark.parametrize("name", ("wiki", "arabic"))
def bench_local_search_p(benchmark, gamma, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: LocalSearchP(graph, gamma=gamma).run(k=K))
    assert len(result.communities) == K


@pytest.mark.benchmark(group="fig9-forward")
@pytest.mark.parametrize("gamma", (5, 50))
@pytest.mark.parametrize("name", ("wiki", "arabic"))
def bench_forward(benchmark, gamma, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark.pedantic(
        forward, args=(graph, K, gamma), rounds=2, iterations=1
    )
    assert len(result.communities) == K
