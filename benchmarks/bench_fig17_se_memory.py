"""Figure 17 — semi-external memory usage (size of the visited graph).

Paper shape: OnlineAll-SE's resident set is (capped at) the whole graph;
LocalSearch-SE holds only its final weight prefix — a small fraction.
The measured resident-edge counts are attached as ``extra_info``.
Series printer: ``--eval fig17``.
"""

from __future__ import annotations

import pytest

from repro.baselines import local_search_se, online_all_se

from conftest import fresh_store

K_SWEEP = (10, 100)


@pytest.mark.benchmark(group="fig17-memory")
@pytest.mark.parametrize("k", K_SWEEP)
def bench_localsearch_se_resident(benchmark, k, youtube, youtube_store_path):
    def run():
        return local_search_se(
            youtube, fresh_store(youtube_store_path), k, 10
        )

    result = benchmark(run)
    fraction = result.visited_edges / youtube.num_edges
    benchmark.extra_info.update(
        resident_edges=result.visited_edges,
        total_edges=youtube.num_edges,
        fraction=round(fraction, 6),
    )
    assert fraction < 0.5  # locality: a small part of the file


@pytest.mark.benchmark(group="fig17-memory")
def bench_onlineall_se_resident(benchmark, youtube, youtube_store_path):
    def run():
        return online_all_se(
            youtube, fresh_store(youtube_store_path), 10, 10
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        resident_edges=result.visited_edges,
        total_edges=youtube.num_edges,
    )
    assert result.visited_edges == youtube.num_edges


@pytest.mark.benchmark(group="fig17-memory")
def bench_memory_gap(benchmark, youtube, youtube_store_path):
    """The resident-set gap between the two algorithms."""

    def run():
        ls = local_search_se(youtube, fresh_store(youtube_store_path), 10, 10)
        oa = online_all_se(youtube, fresh_store(youtube_store_path), 10, 10)
        return ls.visited_edges, oa.visited_edges

    ls_edges, oa_edges = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(gap=oa_edges / max(ls_edges, 1))
    assert oa_edges > 10 * ls_edges
