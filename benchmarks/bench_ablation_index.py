"""Ablation — index-based (IndexAll/ICP) vs index-free online search.

The paper's Introduction motivates index-free search: IndexAll answers
queries fast but must materialise all communities for all γ up front and
is locked to one weight vector.  This benchmark quantifies the trade-off
on the email stand-in.  Series printer: ``--eval index``.
"""

from __future__ import annotations

import pytest

from repro.baselines import ICPIndex
from repro.core.progressive import LocalSearchP


@pytest.mark.benchmark(group="ablation-index")
def bench_index_build(benchmark, email):
    """The up-front cost the online approach avoids."""
    index = benchmark.pedantic(
        lambda: ICPIndex(email).build(), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        gamma_max=index.gamma_max, entries=index.index_entries()
    )
    assert index.is_built


@pytest.mark.benchmark(group="ablation-index")
def bench_index_query(benchmark, email):
    index = ICPIndex(email).build(gammas=[10])
    communities = benchmark(lambda: index.query(10, 10))
    assert len(communities) == 10


@pytest.mark.benchmark(group="ablation-index")
def bench_online_query(benchmark, email):
    result = benchmark(lambda: LocalSearchP(email, gamma=10).run(k=10))
    assert len(result.communities) == 10


@pytest.mark.benchmark(group="ablation-index")
def bench_index_and_online_agree(benchmark, email):
    def run():
        index = ICPIndex(email).build(gammas=[10])
        a = [c.influence for c in index.query(10, 10)]
        b = LocalSearchP(email, gamma=10).run(k=10).influences
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
