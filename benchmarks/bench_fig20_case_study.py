"""Figures 20/21 — the DBLP case study queries.

Benchmarks the two case-study queries on the synthetic co-author network
and asserts the paper's qualitative relations: the 6-truss community is a
small dense refinement with lower influence than the 5-community, and the
plain 5-core community containing the 5-community is ~2 orders larger.
Series printer: ``--eval case``.
"""

from __future__ import annotations

import pytest

from repro.core.progressive import LocalSearchP
from repro.core.truss_search import top_k_truss_communities
from repro.graph.connectivity import component_of
from repro.graph.core_decomposition import gamma_core
from repro.graph.subgraph import PrefixView


@pytest.mark.benchmark(group="fig20-case-study")
def bench_top1_core_community(benchmark, dblp):
    result = benchmark(lambda: LocalSearchP(dblp, gamma=5).run(k=1))
    community = result.communities[0]
    benchmark.extra_info.update(
        size=community.num_vertices,
        keynode=str(community.keynode_label),
        influence_rank=community.keynode + 1,
    )
    assert community.num_vertices >= 8


@pytest.mark.benchmark(group="fig20-case-study")
def bench_top1_truss_community(benchmark, dblp):
    result = benchmark(lambda: top_k_truss_communities(dblp, 1, 6))
    community = result.communities[0]
    benchmark.extra_info.update(
        size=community.num_vertices,
        keynode=str(community.keynode_label),
        influence_rank=community.keynode + 1,
    )
    assert community.num_vertices == 6


@pytest.mark.benchmark(group="fig21-core-blowup")
def bench_five_core_community(benchmark, dblp):
    """Figure 21: the plain 5-core community around the top keynode."""
    top = LocalSearchP(dblp, gamma=5).run(k=1).communities[0]

    def blob():
        view = PrefixView.whole(dblp)
        alive, _ = gamma_core(view, 5)
        return component_of(view, top.keynode, alive)

    members = benchmark.pedantic(blob, rounds=1, iterations=1)
    benchmark.extra_info.update(size=len(members))
    # Paper: 1,148 of 1,743; ours: >1,000 of 1,743.
    assert len(members) > 1000
    assert len(members) > 20 * top.num_vertices
