"""Kernel layer — cold + progressive peel speedups on a 100k-vertex graph.

The performance claims of the flat-array CSR kernel layer (ISSUE 3),
measured on a ~100k-vertex Chung-Lu power-law graph with planted dense
blocks (the stand-in shape for the paper's heavy-tailed web/social
graphs) at the service-default γ:

* **cold peel** — one full ``ConstructCVS`` over the whole graph;
* **progressive peel** — the exact LocalSearch-P round sequence
  (doubling prefixes, ``stop_rank`` chaining, one shared
  :class:`~repro.core.fastpeel.PeelScratch`), i.e. the serving tier's
  hot path.

Acceptance gates (asserted; JSON report uploaded by CI):

* the **default kernel** (``auto``: numpy when available) is at least
  **3x** faster than the python kernel on both scenarios;
* the numpy kernel, when available, is at least as fast as the stdlib
  ``array`` kernel (modulo a small timing tolerance);
* the pure-stdlib ``array`` kernel beats the python kernel by at least
  **1.3x** on both scenarios — the floor a numpy-less deployment keeps
  (measured ~1.6-2.1x; the conservative floor absorbs CI noise);
* all kernels return identical key/community counts (the full
  byte-identity contract lives in ``tests/test_fastpeel.py``).

Run standalone (asserts the gates and writes a JSON report for CI)::

    python benchmarks/bench_kernel_peel.py [--output report.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.count import construct_cvs
from repro.core.fastpeel import PeelScratch, numpy_available, resolve_kernel
from repro.graph.subgraph import PrefixView
from repro.workloads.generators import (
    build_weighted_graph,
    chung_lu,
    planted_dense_blocks,
)

N = 100_000
AVG_DEGREE = 8.0
SEED = 7
GAMMA = 10
DELTA = 2.0
REPS = 3

#: Acceptance floors (speedup over the python kernel).
DEFAULT_KERNEL_FLOOR = 3.0
ARRAY_FLOOR = 1.3
#: numpy must not lose to array by more than this timing tolerance.
NUMPY_VS_ARRAY_TOLERANCE = 1.05


def build_graph():
    n, edges = chung_lu(N, AVG_DEGREE, seed=SEED)
    edges = planted_dense_blocks(
        n, edges, num_blocks=24, block_size=60, p_in=0.6, seed=SEED
    )
    graph = build_weighted_graph(n, edges, weights="degree", seed=SEED)
    graph.csr().lists()  # pre-flatten, as GraphRegistry does
    if numpy_available():
        graph.csr().numpy_views()
    return graph


def time_cold(graph, kernel: str) -> Dict[str, float]:
    times, communities = [], 0
    for _ in range(REPS):
        gc.collect()
        started = time.perf_counter()
        record = construct_cvs(PrefixView.whole(graph), GAMMA, kernel=kernel)
        times.append(time.perf_counter() - started)
        communities = record.num_communities
    return {"seconds": min(times), "communities": communities}


def time_progressive(graph, kernel: str) -> Dict[str, float]:
    """The LocalSearch-P peel round sequence, timed end to end."""
    n = graph.num_vertices
    times, keys_total, rounds = [], 0, 0
    for _ in range(REPS):
        gc.collect()
        started = time.perf_counter()
        scratch = PeelScratch()
        keys_total = rounds = 0
        p_prev, p = 0, GAMMA + 1
        view = None
        while True:
            # Chain views exactly as LocalSearchP.stream does, so the
            # python baseline keeps its production down-cut seeding.
            view = PrefixView(graph, p) if view is None else view.extend(p)
            record = construct_cvs(
                view, GAMMA, stop_rank=p_prev, kernel=kernel, scratch=scratch
            )
            keys_total += record.num_communities
            rounds += 1
            if view.is_whole_graph:
                break
            p_prev = p
            target = int(math.ceil(DELTA * view.size))
            p = max(graph.grow_prefix(p, target), min(p_prev + 1, n))
        times.append(time.perf_counter() - started)
    return {"seconds": min(times), "communities": keys_total, "rounds": rounds}


def kernel_report() -> dict:
    graph = build_graph()
    kernels = ["python", "array"] + (["numpy"] if numpy_available() else [])
    default_kernel = resolve_kernel()

    scenarios: Dict[str, Dict[str, Dict[str, float]]] = {
        "cold": {}, "progressive": {},
    }
    for kernel in kernels:
        scenarios["cold"][kernel] = time_cold(graph, kernel)
        scenarios["progressive"][kernel] = time_progressive(graph, kernel)

    report: dict = {
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "generator": "chung_lu+planted_dense_blocks",
            "csr_bytes": graph.csr().nbytes,
        },
        "gamma": GAMMA,
        "delta": DELTA,
        "reps": REPS,
        "numpy_available": numpy_available(),
        "default_kernel": default_kernel,
        "scenarios": scenarios,
        "speedups": {},
    }
    for name, rows in scenarios.items():
        python_s = rows["python"]["seconds"]
        report["speedups"][name] = {
            kernel: python_s / rows[kernel]["seconds"]
            for kernel in kernels
            if kernel != "python"
        }
    return report


def acceptance(report: dict) -> List[str]:
    """Return the list of failed criteria (empty = pass)."""
    failures = []
    scenarios = report["scenarios"]
    default_kernel = report["default_kernel"]
    for name, rows in scenarios.items():
        counts = {row["communities"] for row in rows.values()}
        if len(counts) != 1:
            failures.append(
                f"(0) kernels disagree on {name} community counts: {counts}"
            )
    for name in scenarios:
        speedups = report["speedups"][name]
        if speedups.get("array", 0.0) < ARRAY_FLOOR:
            failures.append(
                f"(a) stdlib floor: array kernel {speedups.get('array', 0):.2f}x "
                f"< {ARRAY_FLOOR}x on {name} peel"
            )
        default_speedup = speedups.get(default_kernel)
        if default_speedup is None:
            # default resolved to array (no numpy): the array gate above
            # already covers it, but the 3x headline then cannot apply.
            continue
        if default_kernel != "array" and default_speedup < DEFAULT_KERNEL_FLOOR:
            failures.append(
                f"(b) default kernel ({default_kernel}) "
                f"{default_speedup:.2f}x < {DEFAULT_KERNEL_FLOOR}x on "
                f"{name} peel"
            )
    if report["numpy_available"]:
        for name, rows in scenarios.items():
            numpy_s = rows["numpy"]["seconds"]
            array_s = rows["array"]["seconds"]
            if numpy_s > array_s * NUMPY_VS_ARRAY_TOLERANCE:
                failures.append(
                    f"(c) numpy ({numpy_s * 1000:.1f} ms) slower than array "
                    f"({array_s * 1000:.1f} ms) on {name} peel"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_kernel_peel.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    print(
        f"building {N:,}-vertex power-law graph "
        f"(numpy={'yes' if numpy_available() else 'no'})...",
        flush=True,
    )
    report = kernel_report()
    graph = report["graph"]
    print(
        f"graph: {graph['vertices']:,} vertices, {graph['edges']:,} edges, "
        f"CSR {graph['csr_bytes'] / 1e6:.1f} MB; gamma={GAMMA}"
    )
    for name, rows in report["scenarios"].items():
        for kernel, row in rows.items():
            speedup = report["speedups"][name].get(kernel)
            suffix = f"  ({speedup:.2f}x)" if speedup is not None else ""
            print(
                f"{name:>12} peel  {kernel:>7}: "
                f"{row['seconds'] * 1000:8.1f} ms{suffix}"
            )

    failures = acceptance(report)
    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    print(
        f"acceptance (default kernel >= {DEFAULT_KERNEL_FLOOR}x, "
        f"array >= {ARRAY_FLOOR}x, numpy >= array, identical counts): PASS"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
