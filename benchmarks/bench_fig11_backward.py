"""Figure 11 — Backward vs LocalSearch-P (vary k, γ ∈ {10, 50}).

Paper shape: both grow with k; Backward's quadratic re-peeling loses
everywhere and the gap widens with γ (at γ=50 Backward even falls behind
the global Forward).  Series printer: ``--eval fig11``.
"""

from __future__ import annotations

import pytest

from repro.baselines import backward
from repro.core.progressive import LocalSearchP

K_SWEEP = (10, 50, 100)


@pytest.mark.benchmark(group="fig11-backward")
@pytest.mark.parametrize("gamma", (10, 50))
@pytest.mark.parametrize("k", K_SWEEP)
def bench_backward(benchmark, gamma, k, arabic):
    result = benchmark.pedantic(
        backward, args=(arabic, k, gamma), rounds=2, iterations=1
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig11-localsearch-p")
@pytest.mark.parametrize("gamma", (10, 50))
@pytest.mark.parametrize("k", K_SWEEP)
def bench_local_search_p(benchmark, gamma, k, arabic):
    result = benchmark(lambda: LocalSearchP(arabic, gamma=gamma).run(k=k))
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig11-agreement")
def bench_agreement(benchmark, arabic):
    def run():
        a = backward(arabic, 20, 10).influences
        b = LocalSearchP(arabic, gamma=10).run(k=20).influences
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
