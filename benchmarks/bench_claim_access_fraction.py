"""Section 3.1 claim — the accessed subgraph is a tiny fraction of G.

The paper: "size(G>=tau*)/size(G) is smaller than 0.073% across all the
graphs tested in our experiments for k = 10 and gamma = 10."  The
stand-ins are ~4 orders of magnitude smaller than the paper's graphs, so
the same absolute prefixes are relatively larger; the claim scales to
"well under a few percent".  Series printer: ``--eval access``.
"""

from __future__ import annotations

import pytest

from repro.core.progressive import LocalSearchP


@pytest.mark.benchmark(group="claim-access-fraction")
@pytest.mark.parametrize("name", ("email", "wiki", "arabic", "twitter"))
def bench_access_fraction(benchmark, name, request):
    graph = request.getfixturevalue(name)

    def run():
        searcher = LocalSearchP(graph, gamma=10)
        searcher.run(k=10)
        return searcher.stats

    stats = benchmark(run)
    benchmark.extra_info.update(
        accessed=stats.accessed_size,
        graph_size=stats.graph_size,
        fraction=round(stats.accessed_fraction, 6),
    )
    assert stats.accessed_fraction < 0.10
