"""Figure 10 — Forward vs LocalSearch-P at large k and γ.

The paper sweeps k, γ ∈ {250, 500, 1000, 2000} on Arabic/Twitter (γmax
2,488-3,247); the stand-ins (γmax 80-97) use proportionally scaled
parameters.  Paper shape: LocalSearch-P cost grows with both parameters
but stays below Forward throughout.  Series printer: ``--eval fig10``.
"""

from __future__ import annotations

import pytest

from repro.baselines import forward
from repro.core.progressive import LocalSearchP

LARGE_K = (25, 100, 200)
LARGE_GAMMA = (20, 40, 80)


@pytest.mark.benchmark(group="fig10-vary-k")
@pytest.mark.parametrize("k", LARGE_K)
@pytest.mark.parametrize("name", ("arabic", "twitter"))
def bench_local_search_large_k(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: LocalSearchP(graph, gamma=40).run(k=k))
    assert result.communities


@pytest.mark.benchmark(group="fig10-vary-gamma")
@pytest.mark.parametrize("gamma", LARGE_GAMMA)
@pytest.mark.parametrize("name", ("arabic", "twitter"))
def bench_local_search_large_gamma(benchmark, gamma, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: LocalSearchP(graph, gamma=gamma).run(k=100))
    assert result.communities


@pytest.mark.benchmark(group="fig10-forward")
@pytest.mark.parametrize("name", ("arabic", "twitter"))
def bench_forward_large(benchmark, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark.pedantic(
        forward, args=(graph, 200, 40), rounds=1, iterations=1
    )
    assert result.communities
