"""Ablation — exponential vs fixed-increment growth (Remark, §3.3).

The paper's Remark: growing the prefix by a constant amount per round
makes the total work quadratic in the accessed subgraph (h rounds of size
h·m sum to h²·m), validating the exponential choice.  Measured as both
wall time and the summed peel sizes (``stats.total_work``).
Series printer: ``--eval growth``.
"""

from __future__ import annotations

import pytest

from repro.core.local_search import LocalSearch

K_SWEEP = (10, 100)


@pytest.mark.benchmark(group="ablation-growth")
@pytest.mark.parametrize("k", K_SWEEP)
def bench_exponential_growth(benchmark, k, arabic):
    searcher = LocalSearch(arabic, gamma=10, growth="exponential")
    result = benchmark(lambda: searcher.search(k))
    benchmark.extra_info.update(
        rounds=result.stats.rounds, total_work=result.stats.total_work
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="ablation-growth")
@pytest.mark.parametrize("k", K_SWEEP)
def bench_linear_growth(benchmark, k, arabic):
    searcher = LocalSearch(
        arabic, gamma=10, growth="linear", linear_increment=64
    )
    result = benchmark(lambda: searcher.search(k))
    benchmark.extra_info.update(
        rounds=result.stats.rounds, total_work=result.stats.total_work
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="ablation-growth")
def bench_quadratic_work_gap(benchmark, arabic):
    """Linear growth performs far more total peel work when the target
    prefix is deep (k=200, gamma=50 needs multiple growth rounds)."""

    def run():
        exp = LocalSearch(arabic, gamma=50).search(200).stats
        lin = LocalSearch(
            arabic, gamma=50, growth="linear", linear_increment=64
        ).search(200).stats
        return exp.total_work, lin.total_work, exp.accessed_size

    exp_work, lin_work, accessed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        exponential_work=exp_work, linear_work=lin_work
    )
    assert lin_work > 3 * exp_work
    # Exponential growth's total work stays within a small constant of
    # the final prefix (the geometric-series bound of Lemma 3.7).
    assert exp_work <= 4 * accessed
