"""Figure 19 — GlobalSearch-Truss vs LocalSearch-Truss (γ=10, vary k).

Paper shape: LocalSearch-Truss wins by orders of magnitude, showing the
local-search framework generalises beyond the k-core measure; truss
queries cost more than core queries overall (triangle bookkeeping,
larger target subgraphs).  Series printer: ``--eval fig19``.
"""

from __future__ import annotations

import pytest

from repro.core.truss_search import (
    global_search_truss,
    top_k_truss_communities,
)

K_SWEEP = (10, 50, 100)
GAMMA = 10


@pytest.mark.benchmark(group="fig19-localsearch-truss")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", ("wiki", "livejournal"))
def bench_local_search_truss(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: top_k_truss_communities(graph, k, GAMMA))
    assert result.communities


@pytest.mark.benchmark(group="fig19-globalsearch-truss")
@pytest.mark.parametrize("name", ("wiki", "livejournal"))
def bench_global_search_truss(benchmark, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark.pedantic(
        global_search_truss, args=(graph, 10, GAMMA), rounds=1, iterations=1
    )
    assert result.communities


@pytest.mark.benchmark(group="fig19-agreement")
def bench_truss_agreement(benchmark, wiki):
    def run():
        a = top_k_truss_communities(wiki, 10, GAMMA).influences
        b = global_search_truss(wiki, 10, GAMMA).influences
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
