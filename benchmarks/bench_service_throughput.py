"""Service layer — cold vs warm vs prefix-reuse latency and throughput.

The serving claim of the new :mod:`repro.service` subsystem (ISSUE 1):

* a **warm** repeat of a query (same graph/gamma/algorithm, ``k' <= k``)
  is served from the result cache at least **10x** faster than the cold
  computation;
* **prefix reuse** (``k' < k``) is just as fast — the cached progressive
  sequence is sliced, never recomputed;
* **extension** (``k' > k``) resumes the cached cursor instead of
  restarting, so it only pays for the *new* suffix;
* a mixed-(gamma, k) workload sustains high queries/sec against a
  long-lived registry without ever rebuilding the graph.

Two entry points:

* ``python benchmarks/bench_service_throughput.py`` — standalone report
  asserting the 10x acceptance criterion and printing the numbers;
* ``pytest benchmarks/bench_service_throughput.py --benchmark-only`` —
  pytest-benchmark timings alongside the other figure benchmarks.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.harness import measure_ms
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
    TopKQuery,
)

GAMMA = 10
K = 32
DATASET = "wiki"


def make_registry() -> GraphRegistry:
    registry = GraphRegistry()
    registry.get(DATASET)  # pin: construction paid once, outside timings
    return registry


def cold_engine(registry: GraphRegistry) -> QueryEngine:
    """An engine whose every query recomputes (the baseline)."""
    return QueryEngine(registry, cache=None)


def warm_engine(registry: GraphRegistry) -> QueryEngine:
    engine = QueryEngine(
        registry, cache=ResultCache(), metrics=ServiceMetrics()
    )
    engine.execute(TopKQuery(graph=DATASET, gamma=GAMMA, k=K))  # fill
    return engine


def mixed_workload():
    return [
        TopKQuery(graph=DATASET, gamma=gamma, k=k)
        for gamma in (5, 10, 20)
        for k in (4, 8, 16, 8, 4)
    ]


def speedup_report(registry: GraphRegistry) -> dict:
    """Measure cold / warm / prefix / extension latency and mixed qps."""
    engine = warm_engine(registry)
    query = TopKQuery(graph=DATASET, gamma=GAMMA, k=K)
    prefix = TopKQuery(graph=DATASET, gamma=GAMMA, k=K // 4)

    cold_ms = measure_ms(
        lambda: cold_engine(registry).execute(query), repeat=3
    )
    warm_ms = measure_ms(lambda: engine.execute(query), repeat=10, warmup=2)
    prefix_ms = measure_ms(
        lambda: engine.execute(prefix), repeat=10, warmup=2
    )

    def extend():
        fresh = QueryEngine(registry, cache=ResultCache())
        fresh.execute(TopKQuery(graph=DATASET, gamma=GAMMA, k=K))
        result = fresh.execute(
            TopKQuery(graph=DATASET, gamma=GAMMA, k=2 * K)
        )
        assert result.source == "extended"

    extension_ms = measure_ms(extend, repeat=3)

    metrics = ServiceMetrics()
    mixed = QueryEngine(registry, cache=ResultCache(), metrics=metrics)
    workload = mixed_workload() * 3
    builds_before = registry.builds
    mixed_ms = measure_ms(
        lambda: [mixed.execute(q) for q in workload], repeat=1
    )
    assert registry.builds == builds_before, "graph was rebuilt mid-workload"

    return {
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "prefix_ms": prefix_ms,
        "extension_ms": extension_ms,
        "warm_speedup": cold_ms / warm_ms if warm_ms else float("inf"),
        "prefix_speedup": cold_ms / prefix_ms if prefix_ms else float("inf"),
        "mixed_queries": len(workload),
        "mixed_qps": len(workload) / (mixed_ms / 1000.0),
        "mixed_hit_rate": metrics.cache_hit_rate,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def registry(wiki):
    registry = GraphRegistry()
    registry.get(DATASET)
    return registry


@pytest.mark.benchmark(group="service-latency")
def bench_cold_query(benchmark, registry):
    engine = cold_engine(registry)
    result = benchmark(
        lambda: engine.execute(TopKQuery(graph=DATASET, gamma=GAMMA, k=K))
    )
    assert result.source == "cold"
    assert len(result) == K


@pytest.mark.benchmark(group="service-latency")
def bench_warm_repeat_query(benchmark, registry):
    engine = warm_engine(registry)
    result = benchmark(
        lambda: engine.execute(TopKQuery(graph=DATASET, gamma=GAMMA, k=K))
    )
    assert result.source == "cache"


@pytest.mark.benchmark(group="service-latency")
def bench_prefix_reuse_query(benchmark, registry):
    engine = warm_engine(registry)
    result = benchmark(
        lambda: engine.execute(
            TopKQuery(graph=DATASET, gamma=GAMMA, k=K // 4)
        )
    )
    assert result.source == "cache"
    assert len(result) == K // 4


@pytest.mark.benchmark(group="service-latency")
def bench_extension_resumes(benchmark, registry):
    """k' > k: pays only for the suffix, not a restart."""

    def extend():
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(TopKQuery(graph=DATASET, gamma=GAMMA, k=K))
        return engine.execute(
            TopKQuery(graph=DATASET, gamma=GAMMA, k=2 * K)
        )

    result = benchmark(extend)
    assert result.source == "extended"
    assert len(result) == 2 * K


@pytest.mark.benchmark(group="service-throughput")
def bench_mixed_workload_qps(benchmark, registry):
    engine = QueryEngine(
        registry, cache=ResultCache(), metrics=ServiceMetrics()
    )
    workload = mixed_workload()

    def serve_all():
        return [engine.execute(q) for q in workload]

    results = benchmark(serve_all)
    assert len(results) == len(workload)


@pytest.mark.benchmark(group="service-acceptance")
def bench_acceptance_10x(benchmark, registry):
    """The acceptance criterion, asserted (not just reported)."""
    report = benchmark.pedantic(
        lambda: speedup_report(registry), rounds=1, iterations=1
    )
    assert report["warm_speedup"] >= 10.0, report
    assert report["prefix_speedup"] >= 10.0, report


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    print(f"building registry (dataset {DATASET!r})...", flush=True)
    registry = make_registry()
    report = speedup_report(registry)
    print(f"cold query (k={K}, gamma={GAMMA}):   {report['cold_ms']:10.3f} ms")
    print(f"warm repeat (cache hit):        {report['warm_ms']:10.3f} ms "
          f"({report['warm_speedup']:,.0f}x)")
    print(f"prefix reuse (k'={K // 4}):         {report['prefix_ms']:10.3f} ms "
          f"({report['prefix_speedup']:,.0f}x)")
    print(f"extension (k'={2 * K}, resumed):    {report['extension_ms']:10.3f} ms")
    print(f"mixed workload:                 {report['mixed_queries']} queries, "
          f"{report['mixed_qps']:,.0f} q/s, "
          f"hit rate {report['mixed_hit_rate']:.2f}")
    ok = report["warm_speedup"] >= 10.0 and report["prefix_speedup"] >= 10.0
    print("acceptance (>=10x warm & prefix):", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
