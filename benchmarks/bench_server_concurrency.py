"""Server tier — concurrent TCP throughput, coalescing, and warm restarts.

The serving claims of the :mod:`repro.server` subsystem (ISSUE 2):

* **concurrency** — 32 concurrent TCP clients hammering one hot graph
  achieve at least **5x** the queries/sec of serial one-connection
  execution against the *same* server.  The server runs its
  throughput-tuned configuration (a small batch-collection window, the
  classic dynamic-batching trade: a lone serial client pays the window
  per query, concurrent clients share it per *batch* — so this gate
  measures the throughput config's concurrency payoff, not raw
  event-loop speed; for transparency the report also includes a serial
  baseline against a window-free server, where on a single CPU the
  amortization gain is necessarily smaller);
* **coalescing** — the batch scheduler performs *strictly fewer* engine
  passes (= cursor advances) than queries served: concurrent queries of
  one ``(graph, gamma, algorithm, delta)`` family ride a shared pass and
  are sliced to their own ``k``;
* **warm start** — a kill/restart cycle restores the result cache from
  the shutdown snapshot: the first post-restart query is already a cache
  hit (warm hit rate > 0 with zero cold computations).

Run standalone (asserts all three and writes a JSON report for CI)::

    python benchmarks/bench_server_concurrency.py [--output report.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.server import ReproClient, ReproServer

DATASET = "wiki"
GAMMA = 10
KS = (4, 8, 16, 32)

CLIENTS = 32
QUERIES_PER_CLIENT = 8
SERIAL_QUERIES = 64

SHARDS = 2
BATCH_WINDOW_MS = 2.0
SPEEDUP_FLOOR = 5.0


async def _run_client(host: str, port: int, queries: int) -> None:
    """One client: connect, issue ``queries`` hot-graph queries, quit."""
    client = await ReproClient.connect(host, port=port)
    try:
        for i in range(queries):
            lines = await client.query(
                DATASET, k=KS[i % len(KS)], gamma=GAMMA
            )
            assert lines and not lines[0].startswith("error"), lines
    finally:
        await client.close()


async def concurrency_report(warmstart_path: str) -> dict:
    """Run all three phases against in-process servers over real TCP."""
    server = ReproServer(
        shards=SHARDS,
        batch_window_ms=BATCH_WINDOW_MS,
        warmstart_path=warmstart_path,
    )
    await server.start(tcp=("127.0.0.1", 0))
    assert server.tcp_address is not None
    host, port = server.tcp_address

    # Warm the graph + cursor once so both phases serve a hot graph.
    await _run_client(host, port, len(KS))

    # Phase 1: serial — one connection, one query in flight at a time.
    started = time.perf_counter()
    await _run_client(host, port, SERIAL_QUERIES)
    serial_seconds = time.perf_counter() - started
    serial_qps = SERIAL_QUERIES / serial_seconds

    # Phase 2: concurrent — CLIENTS connections hammering the same graph.
    batches_before = server.scheduler.stats.batches
    queries_before = server.scheduler.stats.queries
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _run_client(host, port, QUERIES_PER_CLIENT)
            for _ in range(CLIENTS)
        )
    )
    concurrent_seconds = time.perf_counter() - started
    total = CLIENTS * QUERIES_PER_CLIENT
    concurrent_qps = total / concurrent_seconds
    advances = server.scheduler.stats.batches - batches_before
    served = server.scheduler.stats.queries - queries_before
    max_width = server.scheduler.stats.max_width

    # Phase 3: kill/restart — stop() snapshots the cache; a fresh server
    # (fresh registry, fresh cache) restores it and serves warm.
    await server.stop()
    restarted = ReproServer(
        shards=1,
        batch_window_ms=0.0,
        warmstart_path=warmstart_path,
    )
    await restarted.start(tcp=("127.0.0.1", 0))
    assert restarted.tcp_address is not None
    host2, port2 = restarted.tcp_address
    await _run_client(host2, port2, 1)
    snap = restarted.metrics.snapshot()
    warm_hit_rate = snap["cache_hit_rate"]
    cold_after_restart = snap["by_source"].get("cold", 0)

    # Transparency: the serial baseline without the batching window
    # (the restarted server runs window=0), for the report only.
    started = time.perf_counter()
    await _run_client(host2, port2, SERIAL_QUERIES)
    serial_qps_no_window = SERIAL_QUERIES / (time.perf_counter() - started)
    await restarted.stop()

    return {
        "dataset": DATASET,
        "gamma": GAMMA,
        "clients": CLIENTS,
        "serial_qps": serial_qps,
        "serial_qps_no_window": serial_qps_no_window,
        "concurrent_qps": concurrent_qps,
        "speedup": concurrent_qps / serial_qps if serial_qps else 0.0,
        "batch_window_ms": BATCH_WINDOW_MS,
        "concurrent_queries_served": served,
        "concurrent_cursor_advances": advances,
        "max_batch_width": max_width,
        "snapshot_entries_saved": server.saved_entries,
        "snapshot_entries_restored": restarted.restored_entries,
        "warm_hit_rate_after_restart": warm_hit_rate,
        "cold_queries_after_restart": cold_after_restart,
    }


def acceptance(report: dict) -> List[str]:
    """Return the list of failed criteria (empty = pass)."""
    failures = []
    if report["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"(a) concurrency: speedup {report['speedup']:.2f}x "
            f"< {SPEEDUP_FLOOR}x"
        )
    if report["concurrent_qps"] < 0.75 * report["serial_qps_no_window"]:
        # Sanity bound: a degenerate server (window tax with zero real
        # concurrency benefit) would serve concurrent traffic far below
        # the window-free serial rate; batching must at least recoup its
        # own window under load.
        failures.append(
            f"(a') degenerate batching: concurrent "
            f"{report['concurrent_qps']:,.0f} q/s < 0.75x window-free "
            f"serial {report['serial_qps_no_window']:,.0f} q/s"
        )
    if not report["concurrent_cursor_advances"] < report[
        "concurrent_queries_served"
    ]:
        failures.append(
            f"(b) coalescing: {report['concurrent_cursor_advances']} engine "
            f"passes for {report['concurrent_queries_served']} queries"
        )
    if not (
        report["snapshot_entries_restored"] > 0
        and report["warm_hit_rate_after_restart"] > 0.0
        and report["cold_queries_after_restart"] == 0
    ):
        failures.append(
            f"(c) warm start: restored="
            f"{report['snapshot_entries_restored']}, hit rate="
            f"{report['warm_hit_rate_after_restart']:.3f}, cold="
            f"{report['cold_queries_after_restart']}"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_server_concurrency.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    print(f"building server (dataset {DATASET!r})...", flush=True)
    with tempfile.TemporaryDirectory() as tmp:
        report = asyncio.run(
            concurrency_report(str(Path(tmp) / "warmstart.json"))
        )

    print(f"serial (1 connection):     {report['serial_qps']:10,.0f} q/s")
    print(
        f"serial (no batch window):  "
        f"{report['serial_qps_no_window']:10,.0f} q/s  [reported only]"
    )
    print(
        f"concurrent ({CLIENTS} clients):  "
        f"{report['concurrent_qps']:10,.0f} q/s "
        f"({report['speedup']:.1f}x)"
    )
    print(
        f"coalescing:                {report['concurrent_cursor_advances']} "
        f"engine passes for {report['concurrent_queries_served']} queries "
        f"(max batch width {report['max_batch_width']})"
    )
    print(
        f"warm restart:              "
        f"{report['snapshot_entries_restored']} entries restored, "
        f"hit rate {report['warm_hit_rate_after_restart']:.2f}, "
        f"{report['cold_queries_after_restart']} cold queries"
    )

    failures = acceptance(report)
    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    print("acceptance (>=5x concurrent, coalesced, warm restart): PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
