"""Kernel layer — cold + progressive EnumIC speedups on a 100k-vertex graph.

The performance claims of the flat-array enumeration kernel (the
EnumIC side of the kernel layer, :mod:`repro.core.fastenum`), measured
on a 100k-vertex Chung-Lu power-law graph overlaid with 1,100 planted
clique blocks, queried at γ just below the clique degree.  That is the
paper's deep-core regime (γmax runs into the thousands on its web
graphs): each keynode deletion cascades an entire core, so the answer
is large (>= 1000 communities) *and* the per-community group work is
substantial — the regime where enumeration cost actually shows up next
to the peel.  Two scenarios:

* **cold enumeration** — one full ``EnumIC`` pass over the whole
  graph's ``cvs`` (every community built, ``k = all``);
* **progressive enumeration** — the exact LocalSearch-P round sequence
  (doubling prefixes, per-round records, one shared EnumIC-P state),
  timing only the enumeration half of each round.

Every kernel enumerates its *natural* record: the python oracle walks a
python-peeled record (materialised list-of-lists adjacency), the flat
kernels walk a fast-peeled record (shared
:class:`~repro.graph.csr.PrefixAdjacency` buffers).  The peels
themselves run outside the timed windows.

Acceptance gates (asserted; JSON report uploaded by CI):

* the **default kernel** (``auto``: numpy when available) is at least
  **3x** faster than the python oracle on both scenarios;
* the pure-stdlib ``array`` kernel beats the oracle by at least
  **1.3x** on both scenarios — the floor a numpy-less deployment keeps;
* the answer is genuinely large (>= 1000 communities), so the gates
  measure steady-state enumeration, not per-call overhead;
* all kernels build **byte-identical community forests** (keynode,
  influence, own vertices, children — checked here on the full cold
  forest; the exhaustive differential sweep lives in
  ``tests/test_fastenum.py``).

Run standalone (asserts the gates and writes a JSON report for CI)::

    python benchmarks/bench_enum_kernel.py [--output report.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.count import construct_cvs
from repro.core.enumerate import (
    EnumerationState,
    enumerate_progressive,
    enumerate_top_k,
)
from repro.core.fastenum import EnumScratch
from repro.core.fastpeel import PeelScratch, numpy_available, resolve_kernel
from repro.graph.subgraph import PrefixView
from repro.workloads.generators import (
    build_weighted_graph,
    chung_lu,
    planted_dense_blocks,
)

N = 100_000
AVG_DEGREE = 8.0
SEED = 7
#: Clique blocks, not the peel bench's loose ER blocks: at γ one below
#: the clique degree every keynode deletion cascades its whole core, so
#: the groups are large enough to exercise the vectorised star path
#: (tiny-group graphs measure Community-object overhead, not kernels).
NUM_BLOCKS = 1050
BLOCK_SIZE = 80
GAMMA = BLOCK_SIZE - 1
DELTA = 2.0
REPS = 5

#: Acceptance floors (speedup over the python oracle).
DEFAULT_KERNEL_FLOOR = 3.0
ARRAY_FLOOR = 1.3
#: The large-answer regime the gates are defined over (k >= 1000).
MIN_COMMUNITIES = 1000


def build_graph():
    n, edges = chung_lu(N, AVG_DEGREE, seed=SEED)
    edges = planted_dense_blocks(
        n, edges, num_blocks=NUM_BLOCKS, block_size=BLOCK_SIZE, p_in=1.0,
        seed=SEED,
    )
    graph = build_weighted_graph(n, edges, weights="degree", seed=SEED)
    graph.csr().lists()  # pre-flatten, as GraphRegistry does
    if numpy_available():
        graph.csr().numpy_views()
    return graph


def forest_fingerprint(communities):
    """Byte-identity digest of a community forest, in reported order."""
    return [
        (
            c.keynode,
            c.influence,
            list(c.own_vertices),
            [child.keynode for child in c.children],
        )
        for c in communities
    ]


def cold_record(graph, kernel: str):
    """The record ``kernel`` naturally enumerates (peel untimed)."""
    peel_kernel = "python" if kernel == "python" else kernel
    return construct_cvs(PrefixView.whole(graph), GAMMA, kernel=peel_kernel)


def time_cold(graph, kernel: str, record) -> Dict[str, object]:
    times, communities = [], []
    scratch = EnumScratch() if kernel != "python" else None
    for _ in range(REPS):
        gc.collect()
        started = time.perf_counter()
        communities = enumerate_top_k(
            graph, record, kernel=kernel, scratch=scratch
        )
        times.append(time.perf_counter() - started)
    return {"seconds": min(times), "communities": communities}


def progressive_records(graph, kernel: str):
    """The LocalSearch-P round-record sequence for ``kernel`` (untimed)."""
    peel_kernel = "python" if kernel == "python" else kernel
    scratch = PeelScratch() if peel_kernel != "python" else None
    n = graph.num_vertices
    records = []
    p_prev, p = 0, GAMMA + 1
    view = None
    while True:
        view = PrefixView(graph, p) if view is None else view.extend(p)
        records.append(
            construct_cvs(
                view, GAMMA, stop_rank=p_prev, kernel=peel_kernel,
                scratch=scratch,
            )
        )
        if view.is_whole_graph:
            break
        p_prev = p
        target = int(math.ceil(DELTA * view.size))
        p = max(graph.grow_prefix(p, target), min(p_prev + 1, n))
    return records


def time_progressive(graph, kernel: str, records) -> Dict[str, float]:
    """EnumIC-P over the precomputed round records, enumeration only."""
    times, total = [], 0
    for _ in range(REPS):
        gc.collect()
        state = EnumerationState() if kernel == "python" else None
        scratch = EnumScratch() if kernel != "python" else None
        total = 0
        started = time.perf_counter()
        for record in records:
            for _community in enumerate_progressive(
                graph, record, state, kernel=kernel, scratch=scratch
            ):
                total += 1
        times.append(time.perf_counter() - started)
    return {
        "seconds": min(times), "communities": total, "rounds": len(records)
    }


def kernel_report() -> dict:
    graph = build_graph()
    kernels = ["python", "array"] + (["numpy"] if numpy_available() else [])
    default_kernel = resolve_kernel()

    scenarios: Dict[str, Dict[str, Dict[str, object]]] = {
        "cold": {}, "progressive": {},
    }
    fingerprints = {}
    fast_record = cold_record(graph, "array") if len(kernels) > 1 else None
    for kernel in kernels:
        record = (
            cold_record(graph, "python") if kernel == "python" else fast_record
        )
        row = time_cold(graph, kernel, record)
        fingerprints[kernel] = forest_fingerprint(row.pop("communities"))
        row["communities"] = len(fingerprints[kernel])
        scenarios["cold"][kernel] = row
    fast_records = progressive_records(graph, "array")
    for kernel in kernels:
        records = (
            progressive_records(graph, "python")
            if kernel == "python"
            else fast_records
        )
        scenarios["progressive"][kernel] = time_progressive(
            graph, kernel, records
        )

    report: dict = {
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "generator": "chung_lu+planted_dense_blocks",
            "csr_bytes": graph.csr().nbytes,
        },
        "gamma": GAMMA,
        "delta": DELTA,
        "reps": REPS,
        "numpy_available": numpy_available(),
        "default_kernel": default_kernel,
        "scenarios": scenarios,
        "speedups": {},
        "forests_identical": all(
            fingerprints[kernel] == fingerprints["python"]
            for kernel in kernels
        ),
    }
    for name, rows in scenarios.items():
        python_s = rows["python"]["seconds"]
        report["speedups"][name] = {
            kernel: python_s / rows[kernel]["seconds"]
            for kernel in kernels
            if kernel != "python"
        }
    return report


def acceptance(report: dict) -> List[str]:
    """Return the list of failed criteria (empty = pass)."""
    failures = []
    scenarios = report["scenarios"]
    default_kernel = report["default_kernel"]
    if not report["forests_identical"]:
        failures.append("(0) kernels built different community forests")
    for name, rows in scenarios.items():
        counts = {row["communities"] for row in rows.values()}
        if len(counts) != 1:
            failures.append(
                f"(0) kernels disagree on {name} community counts: {counts}"
            )
        if min(counts) < MIN_COMMUNITIES:
            failures.append(
                f"(0) answer too small on {name}: {min(counts)} "
                f"communities < {MIN_COMMUNITIES} (not the large-answer "
                "regime the gates are defined over)"
            )
    for name in scenarios:
        speedups = report["speedups"][name]
        if speedups.get("array", 0.0) < ARRAY_FLOOR:
            failures.append(
                f"(a) stdlib floor: array kernel {speedups.get('array', 0):.2f}x "
                f"< {ARRAY_FLOOR}x on {name} enumeration"
            )
        default_speedup = speedups.get(default_kernel)
        if default_speedup is None:
            # default resolved to array (no numpy): the array gate above
            # already covers it, but the 3x headline then cannot apply.
            continue
        if default_kernel != "array" and default_speedup < DEFAULT_KERNEL_FLOOR:
            failures.append(
                f"(b) default kernel ({default_kernel}) "
                f"{default_speedup:.2f}x < {DEFAULT_KERNEL_FLOOR}x on "
                f"{name} enumeration"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="bench_enum_kernel.json",
        help="where to write the JSON report (CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    print(
        f"building {N:,}-vertex power-law graph "
        f"(numpy={'yes' if numpy_available() else 'no'})...",
        flush=True,
    )
    report = kernel_report()
    graph = report["graph"]
    print(
        f"graph: {graph['vertices']:,} vertices, {graph['edges']:,} edges, "
        f"CSR {graph['csr_bytes'] / 1e6:.1f} MB; gamma={GAMMA}"
    )
    for name, rows in report["scenarios"].items():
        for kernel, row in rows.items():
            speedup = report["speedups"][name].get(kernel)
            suffix = f"  ({speedup:.2f}x)" if speedup is not None else ""
            print(
                f"{name:>12} enum  {kernel:>7}: "
                f"{row['seconds'] * 1000:8.1f} ms  "
                f"[{row['communities']:,} communities]{suffix}"
            )

    failures = acceptance(report)
    report["acceptance_pass"] = not failures
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print("FAIL", failure)
        return 1
    print(
        f"acceptance (default kernel >= {DEFAULT_KERNEL_FLOOR}x, "
        f"array >= {ARRAY_FLOOR}x, identical forests, "
        f">= {MIN_COMMUNITIES} communities): PASS"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
