"""Figure 12 — LocalSearch-OA vs LocalSearch-P (γ=10, vary k).

Both variants walk the same doubling prefixes; the only difference is the
counting subroutine (OnlineAll's sweep with per-keynode component BFS vs
CountIC's linear peel).  Paper shape: LocalSearch-P wins, justifying
CountIC.  Series printer: ``--eval fig12``.
"""

from __future__ import annotations

import pytest

from repro.core.local_search import LocalSearch
from repro.core.progressive import LocalSearchP

K_SWEEP = (10, 50, 100)


@pytest.mark.benchmark(group="fig12-localsearch-oa")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", ("wiki", "livejournal"))
def bench_local_search_oa(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    searcher = LocalSearch(graph, gamma=10, counting="onlineall")
    result = benchmark.pedantic(
        searcher.search, args=(k,), rounds=2, iterations=1
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig12-localsearch-p")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", ("wiki", "livejournal"))
def bench_local_search_p(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: LocalSearchP(graph, gamma=10).run(k=k))
    assert len(result.communities) == k
