"""Figure 8 — OnlineAll vs Forward vs LocalSearch-P (γ=10, vary k).

Paper shape: OnlineAll and Forward are flat in k (global algorithms);
LocalSearch-P grows mildly with k and wins by orders of magnitude (up to
5 on Orkut).  OnlineAll is benchmarked only on the smallest stand-in (the
paper itself omits it on its three largest graphs).
Series printer: ``python -m repro.bench.experiments --eval fig8``.
"""

from __future__ import annotations

import pytest

from repro.baselines import forward, online_all
from repro.core.progressive import LocalSearchP

K_SWEEP = (5, 10, 50, 100)
GAMMA = 10


@pytest.mark.benchmark(group="fig8-localsearch-p")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", ("email", "youtube", "wiki", "arabic"))
def bench_local_search_p(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark(lambda: LocalSearchP(graph, gamma=GAMMA).run(k=k))
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig8-forward")
@pytest.mark.parametrize("k", (10, 100))
@pytest.mark.parametrize("name", ("email", "youtube", "wiki", "arabic"))
def bench_forward(benchmark, k, name, request):
    graph = request.getfixturevalue(name)
    result = benchmark.pedantic(
        forward, args=(graph, k, GAMMA), rounds=2, iterations=1
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig8-onlineall")
@pytest.mark.parametrize("k", (10, 100))
def bench_online_all_email(benchmark, k, email):
    result = benchmark.pedantic(
        online_all, args=(email, k, GAMMA), rounds=1, iterations=1
    )
    assert len(result.communities) == k


@pytest.mark.benchmark(group="fig8-agreement")
def bench_agreement_check(benchmark, email):
    """The three algorithms return identical answers (k=10)."""

    def run():
        a = LocalSearchP(email, gamma=GAMMA).run(k=10).influences
        b = forward(email, 10, GAMMA).influences
        c = online_all(email, 10, GAMMA).influences
        return a, b, c

    a, b, c = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b == c
